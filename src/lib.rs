//! # davide
//!
//! An energy-aware petaflops-class HPC cluster stack in Rust: a
//! reproduction of the D.A.V.I.D.E. supercomputer design (Abu Ahmad et
//! al., *Design of an Energy Aware peta-flops Class High Performance
//! Cluster Based on Power Architecture*, 2017).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — hardware models (POWER8+, P100, NVLink/EDR, OpenRack
//!   PSUs, hybrid liquid cooling), the 45-node pilot cluster, DVFS power
//!   capping, and the simulation substrate (units, RNG, events, traces);
//! * [`mqtt`] — the in-process MQTT 3.1.1-style broker used as the
//!   energy gateway's M2M transport;
//! * [`telemetry`] — the energy & power gateway: sensors, the BBB's
//!   800 kS/s→50 kS/s ADC/decimation chain, PTP/NTP clock discipline,
//!   and the HDEEM/PowerInsight/ArduPower/IPMI baselines;
//! * [`apps`] — proxy kernels and workload models for Quantum ESPRESSO,
//!   NEMO, SPECFEM3D and BQCD;
//! * [`predictor`] — submission-time job power predictors (ridge, k-NN,
//!   regression tree) with cross-validation;
//! * [`sched`] — the SLURM-like power-aware batch layer: FCFS / EASY
//!   backfill / proactive power-capped dispatch, reactive throttling,
//!   energy accounting.
//!
//! ## Quickstart
//!
//! ```
//! use davide::core::{Cluster, NodeLoad};
//!
//! let cluster = Cluster::davide();
//! assert_eq!(cluster.node_count(), 45);
//! // ~1 PFlops under 100 kW — the paper's headline envelope.
//! assert!(cluster.peak().pflops() > 0.9);
//! assert!(cluster.facility_power(NodeLoad::FULL).kw() < 100.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/experiments.rs` for the harness regenerating
//! every quantitative claim of the paper (EXPERIMENTS.md).

pub use davide_apps as apps;
pub use davide_core as core;
pub use davide_mqtt as mqtt;
pub use davide_predictor as predictor;
pub use davide_sched as sched;
pub use davide_telemetry as telemetry;
