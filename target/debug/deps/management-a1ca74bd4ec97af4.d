/root/repo/target/debug/deps/management-a1ca74bd4ec97af4.d: crates/bench/benches/management.rs Cargo.toml

/root/repo/target/debug/deps/libmanagement-a1ca74bd4ec97af4.rmeta: crates/bench/benches/management.rs Cargo.toml

crates/bench/benches/management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
