/root/repo/target/debug/deps/davide_mqtt-61f5212ecc78bb79.d: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs

/root/repo/target/debug/deps/libdavide_mqtt-61f5212ecc78bb79.rlib: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs

/root/repo/target/debug/deps/libdavide_mqtt-61f5212ecc78bb79.rmeta: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs

crates/mqtt/src/lib.rs:
crates/mqtt/src/bridge.rs:
crates/mqtt/src/broker.rs:
crates/mqtt/src/client.rs:
crates/mqtt/src/codec.rs:
crates/mqtt/src/framed.rs:
crates/mqtt/src/session.rs:
crates/mqtt/src/topic.rs:
