/root/repo/target/debug/deps/pipeline-13d569104b99713a.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-13d569104b99713a.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
