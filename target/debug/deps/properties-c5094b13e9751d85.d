/root/repo/target/debug/deps/properties-c5094b13e9751d85.d: tests/properties.rs

/root/repo/target/debug/deps/properties-c5094b13e9751d85: tests/properties.rs

tests/properties.rs:
