/root/repo/target/debug/deps/davide-0ff5444c3fe1c06b.d: src/lib.rs

/root/repo/target/debug/deps/libdavide-0ff5444c3fe1c06b.rlib: src/lib.rs

/root/repo/target/debug/deps/libdavide-0ff5444c3fe1c06b.rmeta: src/lib.rs

src/lib.rs:
