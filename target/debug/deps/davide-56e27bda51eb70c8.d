/root/repo/target/debug/deps/davide-56e27bda51eb70c8.d: src/lib.rs

/root/repo/target/debug/deps/libdavide-56e27bda51eb70c8.rlib: src/lib.rs

/root/repo/target/debug/deps/libdavide-56e27bda51eb70c8.rmeta: src/lib.rs

src/lib.rs:
