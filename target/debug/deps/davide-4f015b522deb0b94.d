/root/repo/target/debug/deps/davide-4f015b522deb0b94.d: src/lib.rs

/root/repo/target/debug/deps/davide-4f015b522deb0b94: src/lib.rs

src/lib.rs:
