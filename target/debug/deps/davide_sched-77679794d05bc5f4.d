/root/repo/target/debug/deps/davide_sched-77679794d05bc5f4.d: crates/sched/src/lib.rs crates/sched/src/accounting.rs crates/sched/src/cap.rs crates/sched/src/controlplane.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/partition.rs crates/sched/src/placement.rs crates/sched/src/policy.rs crates/sched/src/power_predictor.rs crates/sched/src/simulator.rs crates/sched/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libdavide_sched-77679794d05bc5f4.rmeta: crates/sched/src/lib.rs crates/sched/src/accounting.rs crates/sched/src/cap.rs crates/sched/src/controlplane.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/partition.rs crates/sched/src/placement.rs crates/sched/src/policy.rs crates/sched/src/power_predictor.rs crates/sched/src/simulator.rs crates/sched/src/workload.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/accounting.rs:
crates/sched/src/cap.rs:
crates/sched/src/controlplane.rs:
crates/sched/src/job.rs:
crates/sched/src/metrics.rs:
crates/sched/src/partition.rs:
crates/sched/src/placement.rs:
crates/sched/src/policy.rs:
crates/sched/src/power_predictor.rs:
crates/sched/src/simulator.rs:
crates/sched/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
