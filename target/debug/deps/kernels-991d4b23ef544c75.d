/root/repo/target/debug/deps/kernels-991d4b23ef544c75.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-991d4b23ef544c75.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
