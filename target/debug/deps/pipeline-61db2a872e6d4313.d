/root/repo/target/debug/deps/pipeline-61db2a872e6d4313.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-61db2a872e6d4313: tests/pipeline.rs

tests/pipeline.rs:
