/root/repo/target/debug/deps/experiments-ce942992f7a59e15.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-ce942992f7a59e15.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
