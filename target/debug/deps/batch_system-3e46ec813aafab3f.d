/root/repo/target/debug/deps/batch_system-3e46ec813aafab3f.d: tests/batch_system.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_system-3e46ec813aafab3f.rmeta: tests/batch_system.rs Cargo.toml

tests/batch_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
