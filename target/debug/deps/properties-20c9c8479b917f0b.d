/root/repo/target/debug/deps/properties-20c9c8479b917f0b.d: tests/properties.rs

/root/repo/target/debug/deps/properties-20c9c8479b917f0b: tests/properties.rs

tests/properties.rs:
