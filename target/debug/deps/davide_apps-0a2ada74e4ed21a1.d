/root/repo/target/debug/deps/davide_apps-0a2ada74e4ed21a1.d: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/collectives.rs crates/apps/src/complex.rs crates/apps/src/distributed.rs crates/apps/src/fft.rs crates/apps/src/gemm.rs crates/apps/src/lattice.rs crates/apps/src/lu.rs crates/apps/src/roofline.rs crates/apps/src/sem.rs crates/apps/src/stencil.rs crates/apps/src/workload.rs

/root/repo/target/debug/deps/libdavide_apps-0a2ada74e4ed21a1.rlib: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/collectives.rs crates/apps/src/complex.rs crates/apps/src/distributed.rs crates/apps/src/fft.rs crates/apps/src/gemm.rs crates/apps/src/lattice.rs crates/apps/src/lu.rs crates/apps/src/roofline.rs crates/apps/src/sem.rs crates/apps/src/stencil.rs crates/apps/src/workload.rs

/root/repo/target/debug/deps/libdavide_apps-0a2ada74e4ed21a1.rmeta: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/collectives.rs crates/apps/src/complex.rs crates/apps/src/distributed.rs crates/apps/src/fft.rs crates/apps/src/gemm.rs crates/apps/src/lattice.rs crates/apps/src/lu.rs crates/apps/src/roofline.rs crates/apps/src/sem.rs crates/apps/src/stencil.rs crates/apps/src/workload.rs

crates/apps/src/lib.rs:
crates/apps/src/cg.rs:
crates/apps/src/collectives.rs:
crates/apps/src/complex.rs:
crates/apps/src/distributed.rs:
crates/apps/src/fft.rs:
crates/apps/src/gemm.rs:
crates/apps/src/lattice.rs:
crates/apps/src/lu.rs:
crates/apps/src/roofline.rs:
crates/apps/src/sem.rs:
crates/apps/src/stencil.rs:
crates/apps/src/workload.rs:
