/root/repo/target/debug/deps/davide_bench-b23372c25d52cf0f.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/debug/deps/libdavide_bench-b23372c25d52cf0f.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/debug/deps/libdavide_bench-b23372c25d52cf0f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/applications.rs:
crates/bench/src/experiments/management.rs:
crates/bench/src/experiments/monitoring.rs:
crates/bench/src/experiments/system.rs:
