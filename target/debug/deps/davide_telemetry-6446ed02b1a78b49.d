/root/repo/target/debug/deps/davide_telemetry-6446ed02b1a78b49.d: crates/telemetry/src/lib.rs crates/telemetry/src/adc.rs crates/telemetry/src/calibration.rs crates/telemetry/src/clock.rs crates/telemetry/src/decimation.rs crates/telemetry/src/energy.rs crates/telemetry/src/events.rs crates/telemetry/src/gateway.rs crates/telemetry/src/hazards.rs crates/telemetry/src/ingest.rs crates/telemetry/src/monitor.rs crates/telemetry/src/profiler.rs crates/telemetry/src/sensors.rs crates/telemetry/src/spectral.rs crates/telemetry/src/tsdb.rs crates/telemetry/src/waveform.rs Cargo.toml

/root/repo/target/debug/deps/libdavide_telemetry-6446ed02b1a78b49.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/adc.rs crates/telemetry/src/calibration.rs crates/telemetry/src/clock.rs crates/telemetry/src/decimation.rs crates/telemetry/src/energy.rs crates/telemetry/src/events.rs crates/telemetry/src/gateway.rs crates/telemetry/src/hazards.rs crates/telemetry/src/ingest.rs crates/telemetry/src/monitor.rs crates/telemetry/src/profiler.rs crates/telemetry/src/sensors.rs crates/telemetry/src/spectral.rs crates/telemetry/src/tsdb.rs crates/telemetry/src/waveform.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/adc.rs:
crates/telemetry/src/calibration.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/decimation.rs:
crates/telemetry/src/energy.rs:
crates/telemetry/src/events.rs:
crates/telemetry/src/gateway.rs:
crates/telemetry/src/hazards.rs:
crates/telemetry/src/ingest.rs:
crates/telemetry/src/monitor.rs:
crates/telemetry/src/profiler.rs:
crates/telemetry/src/sensors.rs:
crates/telemetry/src/spectral.rs:
crates/telemetry/src/tsdb.rs:
crates/telemetry/src/waveform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
