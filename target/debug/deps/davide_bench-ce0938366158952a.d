/root/repo/target/debug/deps/davide_bench-ce0938366158952a.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/controlplane.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/debug/deps/davide_bench-ce0938366158952a: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/controlplane.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/applications.rs:
crates/bench/src/experiments/controlplane.rs:
crates/bench/src/experiments/ingest.rs:
crates/bench/src/experiments/management.rs:
crates/bench/src/experiments/monitoring.rs:
crates/bench/src/experiments/system.rs:
