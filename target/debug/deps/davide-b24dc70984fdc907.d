/root/repo/target/debug/deps/davide-b24dc70984fdc907.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdavide-b24dc70984fdc907.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
