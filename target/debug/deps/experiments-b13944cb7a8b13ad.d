/root/repo/target/debug/deps/experiments-b13944cb7a8b13ad.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-b13944cb7a8b13ad: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
