/root/repo/target/debug/deps/davide_bench-e700c0007dfc2c1d.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/debug/deps/davide_bench-e700c0007dfc2c1d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/applications.rs:
crates/bench/src/experiments/ingest.rs:
crates/bench/src/experiments/management.rs:
crates/bench/src/experiments/monitoring.rs:
crates/bench/src/experiments/system.rs:
