/root/repo/target/debug/deps/davide_sched-8765b2f1f843e5b2.d: crates/sched/src/lib.rs crates/sched/src/accounting.rs crates/sched/src/cap.rs crates/sched/src/controlplane.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/partition.rs crates/sched/src/placement.rs crates/sched/src/policy.rs crates/sched/src/power_predictor.rs crates/sched/src/simulator.rs crates/sched/src/workload.rs

/root/repo/target/debug/deps/libdavide_sched-8765b2f1f843e5b2.rlib: crates/sched/src/lib.rs crates/sched/src/accounting.rs crates/sched/src/cap.rs crates/sched/src/controlplane.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/partition.rs crates/sched/src/placement.rs crates/sched/src/policy.rs crates/sched/src/power_predictor.rs crates/sched/src/simulator.rs crates/sched/src/workload.rs

/root/repo/target/debug/deps/libdavide_sched-8765b2f1f843e5b2.rmeta: crates/sched/src/lib.rs crates/sched/src/accounting.rs crates/sched/src/cap.rs crates/sched/src/controlplane.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/partition.rs crates/sched/src/placement.rs crates/sched/src/policy.rs crates/sched/src/power_predictor.rs crates/sched/src/simulator.rs crates/sched/src/workload.rs

crates/sched/src/lib.rs:
crates/sched/src/accounting.rs:
crates/sched/src/cap.rs:
crates/sched/src/controlplane.rs:
crates/sched/src/job.rs:
crates/sched/src/metrics.rs:
crates/sched/src/partition.rs:
crates/sched/src/placement.rs:
crates/sched/src/policy.rs:
crates/sched/src/power_predictor.rs:
crates/sched/src/simulator.rs:
crates/sched/src/workload.rs:
