/root/repo/target/debug/deps/experiments-1a265c9bc7942a7b.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-1a265c9bc7942a7b: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
