/root/repo/target/debug/deps/power_management-a96028b492b075e6.d: tests/power_management.rs

/root/repo/target/debug/deps/power_management-a96028b492b075e6: tests/power_management.rs

tests/power_management.rs:
