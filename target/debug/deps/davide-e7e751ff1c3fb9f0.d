/root/repo/target/debug/deps/davide-e7e751ff1c3fb9f0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdavide-e7e751ff1c3fb9f0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
