/root/repo/target/debug/deps/experiments-86280c1005776773.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-86280c1005776773: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
