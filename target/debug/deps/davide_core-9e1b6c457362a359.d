/root/repo/target/debug/deps/davide_core-9e1b6c457362a359.d: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/burnin.rs crates/core/src/capping.rs crates/core/src/cluster.rs crates/core/src/cooling.rs crates/core/src/cpu.rs crates/core/src/dvfs.rs crates/core/src/efficiency.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/gpu.rs crates/core/src/interconnect.rs crates/core/src/memory.rs crates/core/src/node.rs crates/core/src/power.rs crates/core/src/psu.rs crates/core/src/rack.rs crates/core/src/rng.rs crates/core/src/time.rs crates/core/src/units.rs

/root/repo/target/debug/deps/libdavide_core-9e1b6c457362a359.rlib: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/burnin.rs crates/core/src/capping.rs crates/core/src/cluster.rs crates/core/src/cooling.rs crates/core/src/cpu.rs crates/core/src/dvfs.rs crates/core/src/efficiency.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/gpu.rs crates/core/src/interconnect.rs crates/core/src/memory.rs crates/core/src/node.rs crates/core/src/power.rs crates/core/src/psu.rs crates/core/src/rack.rs crates/core/src/rng.rs crates/core/src/time.rs crates/core/src/units.rs

/root/repo/target/debug/deps/libdavide_core-9e1b6c457362a359.rmeta: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/burnin.rs crates/core/src/capping.rs crates/core/src/cluster.rs crates/core/src/cooling.rs crates/core/src/cpu.rs crates/core/src/dvfs.rs crates/core/src/efficiency.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/gpu.rs crates/core/src/interconnect.rs crates/core/src/memory.rs crates/core/src/node.rs crates/core/src/power.rs crates/core/src/psu.rs crates/core/src/rack.rs crates/core/src/rng.rs crates/core/src/time.rs crates/core/src/units.rs

crates/core/src/lib.rs:
crates/core/src/budget.rs:
crates/core/src/burnin.rs:
crates/core/src/capping.rs:
crates/core/src/cluster.rs:
crates/core/src/cooling.rs:
crates/core/src/cpu.rs:
crates/core/src/dvfs.rs:
crates/core/src/efficiency.rs:
crates/core/src/error.rs:
crates/core/src/event.rs:
crates/core/src/gpu.rs:
crates/core/src/interconnect.rs:
crates/core/src/memory.rs:
crates/core/src/node.rs:
crates/core/src/power.rs:
crates/core/src/psu.rs:
crates/core/src/rack.rs:
crates/core/src/rng.rs:
crates/core/src/time.rs:
crates/core/src/units.rs:
