/root/repo/target/debug/deps/ingest-61333f6db2ff9442.d: crates/bench/benches/ingest.rs Cargo.toml

/root/repo/target/debug/deps/libingest-61333f6db2ff9442.rmeta: crates/bench/benches/ingest.rs Cargo.toml

crates/bench/benches/ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
