/root/repo/target/debug/deps/power_management-e87d793712a6bd19.d: tests/power_management.rs

/root/repo/target/debug/deps/power_management-e87d793712a6bd19: tests/power_management.rs

tests/power_management.rs:
