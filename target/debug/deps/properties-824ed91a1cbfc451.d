/root/repo/target/debug/deps/properties-824ed91a1cbfc451.d: tests/properties.rs

/root/repo/target/debug/deps/properties-824ed91a1cbfc451: tests/properties.rs

tests/properties.rs:
