/root/repo/target/debug/deps/properties-cc95eebf8d5a46ee.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cc95eebf8d5a46ee.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
