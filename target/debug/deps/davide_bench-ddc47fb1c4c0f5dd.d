/root/repo/target/debug/deps/davide_bench-ddc47fb1c4c0f5dd.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/debug/deps/libdavide_bench-ddc47fb1c4c0f5dd.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/debug/deps/libdavide_bench-ddc47fb1c4c0f5dd.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/applications.rs:
crates/bench/src/experiments/ingest.rs:
crates/bench/src/experiments/management.rs:
crates/bench/src/experiments/monitoring.rs:
crates/bench/src/experiments/system.rs:
