/root/repo/target/debug/deps/davide-a9624c835ed92fac.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdavide-a9624c835ed92fac.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
