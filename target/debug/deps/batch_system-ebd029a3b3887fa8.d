/root/repo/target/debug/deps/batch_system-ebd029a3b3887fa8.d: tests/batch_system.rs

/root/repo/target/debug/deps/batch_system-ebd029a3b3887fa8: tests/batch_system.rs

tests/batch_system.rs:
