/root/repo/target/debug/deps/batch_system-b13851ec69223584.d: tests/batch_system.rs

/root/repo/target/debug/deps/batch_system-b13851ec69223584: tests/batch_system.rs

tests/batch_system.rs:
