/root/repo/target/debug/deps/pipeline-cbadf5302321c81a.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-cbadf5302321c81a: tests/pipeline.rs

tests/pipeline.rs:
