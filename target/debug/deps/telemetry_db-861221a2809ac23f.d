/root/repo/target/debug/deps/telemetry_db-861221a2809ac23f.d: tests/telemetry_db.rs

/root/repo/target/debug/deps/telemetry_db-861221a2809ac23f: tests/telemetry_db.rs

tests/telemetry_db.rs:
