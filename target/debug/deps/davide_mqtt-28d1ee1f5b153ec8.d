/root/repo/target/debug/deps/davide_mqtt-28d1ee1f5b153ec8.d: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs Cargo.toml

/root/repo/target/debug/deps/libdavide_mqtt-28d1ee1f5b153ec8.rmeta: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs Cargo.toml

crates/mqtt/src/lib.rs:
crates/mqtt/src/bridge.rs:
crates/mqtt/src/broker.rs:
crates/mqtt/src/client.rs:
crates/mqtt/src/codec.rs:
crates/mqtt/src/framed.rs:
crates/mqtt/src/session.rs:
crates/mqtt/src/topic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
