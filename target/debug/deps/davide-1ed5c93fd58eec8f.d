/root/repo/target/debug/deps/davide-1ed5c93fd58eec8f.d: src/lib.rs

/root/repo/target/debug/deps/davide-1ed5c93fd58eec8f: src/lib.rs

src/lib.rs:
