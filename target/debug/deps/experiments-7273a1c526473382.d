/root/repo/target/debug/deps/experiments-7273a1c526473382.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-7273a1c526473382: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
