/root/repo/target/debug/deps/davide_core-815907a0bb4c5aaa.d: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/burnin.rs crates/core/src/capping.rs crates/core/src/cluster.rs crates/core/src/cooling.rs crates/core/src/cpu.rs crates/core/src/dvfs.rs crates/core/src/efficiency.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/gpu.rs crates/core/src/interconnect.rs crates/core/src/memory.rs crates/core/src/node.rs crates/core/src/power.rs crates/core/src/psu.rs crates/core/src/rack.rs crates/core/src/rng.rs crates/core/src/time.rs crates/core/src/units.rs Cargo.toml

/root/repo/target/debug/deps/libdavide_core-815907a0bb4c5aaa.rmeta: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/burnin.rs crates/core/src/capping.rs crates/core/src/cluster.rs crates/core/src/cooling.rs crates/core/src/cpu.rs crates/core/src/dvfs.rs crates/core/src/efficiency.rs crates/core/src/error.rs crates/core/src/event.rs crates/core/src/gpu.rs crates/core/src/interconnect.rs crates/core/src/memory.rs crates/core/src/node.rs crates/core/src/power.rs crates/core/src/psu.rs crates/core/src/rack.rs crates/core/src/rng.rs crates/core/src/time.rs crates/core/src/units.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/budget.rs:
crates/core/src/burnin.rs:
crates/core/src/capping.rs:
crates/core/src/cluster.rs:
crates/core/src/cooling.rs:
crates/core/src/cpu.rs:
crates/core/src/dvfs.rs:
crates/core/src/efficiency.rs:
crates/core/src/error.rs:
crates/core/src/event.rs:
crates/core/src/gpu.rs:
crates/core/src/interconnect.rs:
crates/core/src/memory.rs:
crates/core/src/node.rs:
crates/core/src/power.rs:
crates/core/src/psu.rs:
crates/core/src/rack.rs:
crates/core/src/rng.rs:
crates/core/src/time.rs:
crates/core/src/units.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
