/root/repo/target/debug/deps/mqtt-badceed088899dae.d: crates/bench/benches/mqtt.rs Cargo.toml

/root/repo/target/debug/deps/libmqtt-badceed088899dae.rmeta: crates/bench/benches/mqtt.rs Cargo.toml

crates/bench/benches/mqtt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
