/root/repo/target/debug/deps/power_management-432a1cfce6596065.d: tests/power_management.rs Cargo.toml

/root/repo/target/debug/deps/libpower_management-432a1cfce6596065.rmeta: tests/power_management.rs Cargo.toml

tests/power_management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
