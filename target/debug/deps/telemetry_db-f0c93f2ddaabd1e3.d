/root/repo/target/debug/deps/telemetry_db-f0c93f2ddaabd1e3.d: tests/telemetry_db.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_db-f0c93f2ddaabd1e3.rmeta: tests/telemetry_db.rs Cargo.toml

tests/telemetry_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
