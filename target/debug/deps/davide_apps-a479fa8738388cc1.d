/root/repo/target/debug/deps/davide_apps-a479fa8738388cc1.d: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/collectives.rs crates/apps/src/complex.rs crates/apps/src/distributed.rs crates/apps/src/fft.rs crates/apps/src/gemm.rs crates/apps/src/lattice.rs crates/apps/src/lu.rs crates/apps/src/roofline.rs crates/apps/src/sem.rs crates/apps/src/stencil.rs crates/apps/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libdavide_apps-a479fa8738388cc1.rmeta: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/collectives.rs crates/apps/src/complex.rs crates/apps/src/distributed.rs crates/apps/src/fft.rs crates/apps/src/gemm.rs crates/apps/src/lattice.rs crates/apps/src/lu.rs crates/apps/src/roofline.rs crates/apps/src/sem.rs crates/apps/src/stencil.rs crates/apps/src/workload.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/cg.rs:
crates/apps/src/collectives.rs:
crates/apps/src/complex.rs:
crates/apps/src/distributed.rs:
crates/apps/src/fft.rs:
crates/apps/src/gemm.rs:
crates/apps/src/lattice.rs:
crates/apps/src/lu.rs:
crates/apps/src/roofline.rs:
crates/apps/src/sem.rs:
crates/apps/src/stencil.rs:
crates/apps/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
