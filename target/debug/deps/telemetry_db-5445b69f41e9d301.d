/root/repo/target/debug/deps/telemetry_db-5445b69f41e9d301.d: tests/telemetry_db.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_db-5445b69f41e9d301.rmeta: tests/telemetry_db.rs Cargo.toml

tests/telemetry_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
