/root/repo/target/debug/deps/davide_bench-ab31359cd4a03959.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/controlplane.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/debug/deps/libdavide_bench-ab31359cd4a03959.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/controlplane.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/debug/deps/libdavide_bench-ab31359cd4a03959.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/controlplane.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/applications.rs:
crates/bench/src/experiments/controlplane.rs:
crates/bench/src/experiments/ingest.rs:
crates/bench/src/experiments/management.rs:
crates/bench/src/experiments/monitoring.rs:
crates/bench/src/experiments/system.rs:
