/root/repo/target/debug/deps/power_management-0cda64f0b4e78f51.d: tests/power_management.rs

/root/repo/target/debug/deps/power_management-0cda64f0b4e78f51: tests/power_management.rs

tests/power_management.rs:
