/root/repo/target/debug/deps/telemetry_db-b92e5f26e89d97d4.d: tests/telemetry_db.rs

/root/repo/target/debug/deps/telemetry_db-b92e5f26e89d97d4: tests/telemetry_db.rs

tests/telemetry_db.rs:
