/root/repo/target/debug/deps/telemetry_db-49a0dd26a6b56a79.d: tests/telemetry_db.rs

/root/repo/target/debug/deps/telemetry_db-49a0dd26a6b56a79: tests/telemetry_db.rs

tests/telemetry_db.rs:
