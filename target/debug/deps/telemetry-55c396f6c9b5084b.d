/root/repo/target/debug/deps/telemetry-55c396f6c9b5084b.d: crates/bench/benches/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry-55c396f6c9b5084b.rmeta: crates/bench/benches/telemetry.rs Cargo.toml

crates/bench/benches/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
