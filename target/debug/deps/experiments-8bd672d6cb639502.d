/root/repo/target/debug/deps/experiments-8bd672d6cb639502.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-8bd672d6cb639502.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
