/root/repo/target/debug/deps/pipeline-5e1f845b6c7bd9a0.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-5e1f845b6c7bd9a0: tests/pipeline.rs

tests/pipeline.rs:
