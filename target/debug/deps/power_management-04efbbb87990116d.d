/root/repo/target/debug/deps/power_management-04efbbb87990116d.d: tests/power_management.rs Cargo.toml

/root/repo/target/debug/deps/libpower_management-04efbbb87990116d.rmeta: tests/power_management.rs Cargo.toml

tests/power_management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
