/root/repo/target/debug/deps/davide_predictor-4f7185abfe517f58.d: crates/predictor/src/lib.rs crates/predictor/src/eval.rs crates/predictor/src/features.rs crates/predictor/src/forest.rs crates/predictor/src/knn.rs crates/predictor/src/linalg.rs crates/predictor/src/linreg.rs crates/predictor/src/model.rs crates/predictor/src/online.rs crates/predictor/src/tree.rs

/root/repo/target/debug/deps/libdavide_predictor-4f7185abfe517f58.rlib: crates/predictor/src/lib.rs crates/predictor/src/eval.rs crates/predictor/src/features.rs crates/predictor/src/forest.rs crates/predictor/src/knn.rs crates/predictor/src/linalg.rs crates/predictor/src/linreg.rs crates/predictor/src/model.rs crates/predictor/src/online.rs crates/predictor/src/tree.rs

/root/repo/target/debug/deps/libdavide_predictor-4f7185abfe517f58.rmeta: crates/predictor/src/lib.rs crates/predictor/src/eval.rs crates/predictor/src/features.rs crates/predictor/src/forest.rs crates/predictor/src/knn.rs crates/predictor/src/linalg.rs crates/predictor/src/linreg.rs crates/predictor/src/model.rs crates/predictor/src/online.rs crates/predictor/src/tree.rs

crates/predictor/src/lib.rs:
crates/predictor/src/eval.rs:
crates/predictor/src/features.rs:
crates/predictor/src/forest.rs:
crates/predictor/src/knn.rs:
crates/predictor/src/linalg.rs:
crates/predictor/src/linreg.rs:
crates/predictor/src/model.rs:
crates/predictor/src/online.rs:
crates/predictor/src/tree.rs:
