/root/repo/target/debug/deps/properties-78e4ffbf878308cb.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-78e4ffbf878308cb.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
