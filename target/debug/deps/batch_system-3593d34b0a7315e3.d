/root/repo/target/debug/deps/batch_system-3593d34b0a7315e3.d: tests/batch_system.rs

/root/repo/target/debug/deps/batch_system-3593d34b0a7315e3: tests/batch_system.rs

tests/batch_system.rs:
