/root/repo/target/debug/deps/davide_mqtt-468fdb6105ed540d.d: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs

/root/repo/target/debug/deps/davide_mqtt-468fdb6105ed540d: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs

crates/mqtt/src/lib.rs:
crates/mqtt/src/bridge.rs:
crates/mqtt/src/broker.rs:
crates/mqtt/src/client.rs:
crates/mqtt/src/codec.rs:
crates/mqtt/src/framed.rs:
crates/mqtt/src/session.rs:
crates/mqtt/src/topic.rs:
