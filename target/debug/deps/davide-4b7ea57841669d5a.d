/root/repo/target/debug/deps/davide-4b7ea57841669d5a.d: src/lib.rs

/root/repo/target/debug/deps/davide-4b7ea57841669d5a: src/lib.rs

src/lib.rs:
