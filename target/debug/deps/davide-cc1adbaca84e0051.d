/root/repo/target/debug/deps/davide-cc1adbaca84e0051.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdavide-cc1adbaca84e0051.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
