/root/repo/target/debug/deps/davide-296656dbfcce7856.d: src/lib.rs

/root/repo/target/debug/deps/libdavide-296656dbfcce7856.rlib: src/lib.rs

/root/repo/target/debug/deps/libdavide-296656dbfcce7856.rmeta: src/lib.rs

src/lib.rs:
