/root/repo/target/debug/deps/batch_system-ad11b353ccd5c47c.d: tests/batch_system.rs Cargo.toml

/root/repo/target/debug/deps/libbatch_system-ad11b353ccd5c47c.rmeta: tests/batch_system.rs Cargo.toml

tests/batch_system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
