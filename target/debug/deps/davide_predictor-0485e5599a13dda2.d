/root/repo/target/debug/deps/davide_predictor-0485e5599a13dda2.d: crates/predictor/src/lib.rs crates/predictor/src/eval.rs crates/predictor/src/features.rs crates/predictor/src/forest.rs crates/predictor/src/knn.rs crates/predictor/src/linalg.rs crates/predictor/src/linreg.rs crates/predictor/src/model.rs crates/predictor/src/online.rs crates/predictor/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libdavide_predictor-0485e5599a13dda2.rmeta: crates/predictor/src/lib.rs crates/predictor/src/eval.rs crates/predictor/src/features.rs crates/predictor/src/forest.rs crates/predictor/src/knn.rs crates/predictor/src/linalg.rs crates/predictor/src/linreg.rs crates/predictor/src/model.rs crates/predictor/src/online.rs crates/predictor/src/tree.rs Cargo.toml

crates/predictor/src/lib.rs:
crates/predictor/src/eval.rs:
crates/predictor/src/features.rs:
crates/predictor/src/forest.rs:
crates/predictor/src/knn.rs:
crates/predictor/src/linalg.rs:
crates/predictor/src/linreg.rs:
crates/predictor/src/model.rs:
crates/predictor/src/online.rs:
crates/predictor/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
