/root/repo/target/debug/deps/davide_bench-03bb637a2b5897fa.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs Cargo.toml

/root/repo/target/debug/deps/libdavide_bench-03bb637a2b5897fa.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/applications.rs:
crates/bench/src/experiments/ingest.rs:
crates/bench/src/experiments/management.rs:
crates/bench/src/experiments/monitoring.rs:
crates/bench/src/experiments/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
