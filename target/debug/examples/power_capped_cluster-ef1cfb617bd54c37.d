/root/repo/target/debug/examples/power_capped_cluster-ef1cfb617bd54c37.d: examples/power_capped_cluster.rs

/root/repo/target/debug/examples/power_capped_cluster-ef1cfb617bd54c37: examples/power_capped_cluster.rs

examples/power_capped_cluster.rs:
