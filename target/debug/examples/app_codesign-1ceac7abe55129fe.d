/root/repo/target/debug/examples/app_codesign-1ceac7abe55129fe.d: examples/app_codesign.rs

/root/repo/target/debug/examples/app_codesign-1ceac7abe55129fe: examples/app_codesign.rs

examples/app_codesign.rs:
