/root/repo/target/debug/examples/power_monitoring-4a3bb0a8d8c9ddc1.d: examples/power_monitoring.rs

/root/repo/target/debug/examples/power_monitoring-4a3bb0a8d8c9ddc1: examples/power_monitoring.rs

examples/power_monitoring.rs:
