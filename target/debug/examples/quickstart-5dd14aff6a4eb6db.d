/root/repo/target/debug/examples/quickstart-5dd14aff6a4eb6db.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5dd14aff6a4eb6db: examples/quickstart.rs

examples/quickstart.rs:
