/root/repo/target/debug/examples/app_codesign-65f8f54831a346cf.d: examples/app_codesign.rs

/root/repo/target/debug/examples/app_codesign-65f8f54831a346cf: examples/app_codesign.rs

examples/app_codesign.rs:
