/root/repo/target/debug/examples/site_operations-59f4c093bec689bf.d: examples/site_operations.rs

/root/repo/target/debug/examples/site_operations-59f4c093bec689bf: examples/site_operations.rs

examples/site_operations.rs:
