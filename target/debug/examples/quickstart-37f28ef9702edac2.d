/root/repo/target/debug/examples/quickstart-37f28ef9702edac2.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-37f28ef9702edac2.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
