/root/repo/target/debug/examples/quickstart-dd06749ba39e95c0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-dd06749ba39e95c0: examples/quickstart.rs

examples/quickstart.rs:
