/root/repo/target/debug/examples/power_capped_cluster-3aa1504de208eeca.d: examples/power_capped_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libpower_capped_cluster-3aa1504de208eeca.rmeta: examples/power_capped_cluster.rs Cargo.toml

examples/power_capped_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
