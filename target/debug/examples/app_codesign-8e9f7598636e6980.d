/root/repo/target/debug/examples/app_codesign-8e9f7598636e6980.d: examples/app_codesign.rs

/root/repo/target/debug/examples/app_codesign-8e9f7598636e6980: examples/app_codesign.rs

examples/app_codesign.rs:
