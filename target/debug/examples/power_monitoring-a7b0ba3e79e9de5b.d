/root/repo/target/debug/examples/power_monitoring-a7b0ba3e79e9de5b.d: examples/power_monitoring.rs

/root/repo/target/debug/examples/power_monitoring-a7b0ba3e79e9de5b: examples/power_monitoring.rs

examples/power_monitoring.rs:
