/root/repo/target/debug/examples/quickstart-10dc0f947f8a3dd9.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-10dc0f947f8a3dd9.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
