/root/repo/target/debug/examples/power_monitoring-9910399d209f9766.d: examples/power_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libpower_monitoring-9910399d209f9766.rmeta: examples/power_monitoring.rs Cargo.toml

examples/power_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
