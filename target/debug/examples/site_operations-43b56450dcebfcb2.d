/root/repo/target/debug/examples/site_operations-43b56450dcebfcb2.d: examples/site_operations.rs

/root/repo/target/debug/examples/site_operations-43b56450dcebfcb2: examples/site_operations.rs

examples/site_operations.rs:
