/root/repo/target/debug/examples/power_monitoring-7da9534b9de27318.d: examples/power_monitoring.rs

/root/repo/target/debug/examples/power_monitoring-7da9534b9de27318: examples/power_monitoring.rs

examples/power_monitoring.rs:
