/root/repo/target/debug/examples/app_codesign-c15a6b50462f170e.d: examples/app_codesign.rs Cargo.toml

/root/repo/target/debug/examples/libapp_codesign-c15a6b50462f170e.rmeta: examples/app_codesign.rs Cargo.toml

examples/app_codesign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
