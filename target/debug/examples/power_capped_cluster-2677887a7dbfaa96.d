/root/repo/target/debug/examples/power_capped_cluster-2677887a7dbfaa96.d: examples/power_capped_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libpower_capped_cluster-2677887a7dbfaa96.rmeta: examples/power_capped_cluster.rs Cargo.toml

examples/power_capped_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
