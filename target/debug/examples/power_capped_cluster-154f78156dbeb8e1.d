/root/repo/target/debug/examples/power_capped_cluster-154f78156dbeb8e1.d: examples/power_capped_cluster.rs

/root/repo/target/debug/examples/power_capped_cluster-154f78156dbeb8e1: examples/power_capped_cluster.rs

examples/power_capped_cluster.rs:
