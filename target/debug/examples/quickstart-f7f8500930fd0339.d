/root/repo/target/debug/examples/quickstart-f7f8500930fd0339.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f7f8500930fd0339: examples/quickstart.rs

examples/quickstart.rs:
