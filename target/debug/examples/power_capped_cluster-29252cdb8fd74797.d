/root/repo/target/debug/examples/power_capped_cluster-29252cdb8fd74797.d: examples/power_capped_cluster.rs

/root/repo/target/debug/examples/power_capped_cluster-29252cdb8fd74797: examples/power_capped_cluster.rs

examples/power_capped_cluster.rs:
