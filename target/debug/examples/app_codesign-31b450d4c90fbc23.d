/root/repo/target/debug/examples/app_codesign-31b450d4c90fbc23.d: examples/app_codesign.rs Cargo.toml

/root/repo/target/debug/examples/libapp_codesign-31b450d4c90fbc23.rmeta: examples/app_codesign.rs Cargo.toml

examples/app_codesign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
