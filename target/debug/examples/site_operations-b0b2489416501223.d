/root/repo/target/debug/examples/site_operations-b0b2489416501223.d: examples/site_operations.rs Cargo.toml

/root/repo/target/debug/examples/libsite_operations-b0b2489416501223.rmeta: examples/site_operations.rs Cargo.toml

examples/site_operations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
