/root/repo/target/debug/examples/power_monitoring-ac9d61ceea3e4052.d: examples/power_monitoring.rs Cargo.toml

/root/repo/target/debug/examples/libpower_monitoring-ac9d61ceea3e4052.rmeta: examples/power_monitoring.rs Cargo.toml

examples/power_monitoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
