/root/repo/target/debug/examples/site_operations-05776e9d6cec50b3.d: examples/site_operations.rs Cargo.toml

/root/repo/target/debug/examples/libsite_operations-05776e9d6cec50b3.rmeta: examples/site_operations.rs Cargo.toml

examples/site_operations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
