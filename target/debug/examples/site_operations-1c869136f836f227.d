/root/repo/target/debug/examples/site_operations-1c869136f836f227.d: examples/site_operations.rs

/root/repo/target/debug/examples/site_operations-1c869136f836f227: examples/site_operations.rs

examples/site_operations.rs:
