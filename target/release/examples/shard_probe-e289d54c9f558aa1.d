/root/repo/target/release/examples/shard_probe-e289d54c9f558aa1.d: crates/bench/examples/shard_probe.rs

/root/repo/target/release/examples/shard_probe-e289d54c9f558aa1: crates/bench/examples/shard_probe.rs

crates/bench/examples/shard_probe.rs:
