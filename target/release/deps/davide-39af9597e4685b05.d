/root/repo/target/release/deps/davide-39af9597e4685b05.d: src/lib.rs

/root/repo/target/release/deps/libdavide-39af9597e4685b05.rlib: src/lib.rs

/root/repo/target/release/deps/libdavide-39af9597e4685b05.rmeta: src/lib.rs

src/lib.rs:
