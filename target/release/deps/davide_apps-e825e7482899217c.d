/root/repo/target/release/deps/davide_apps-e825e7482899217c.d: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/collectives.rs crates/apps/src/complex.rs crates/apps/src/distributed.rs crates/apps/src/fft.rs crates/apps/src/gemm.rs crates/apps/src/lattice.rs crates/apps/src/lu.rs crates/apps/src/roofline.rs crates/apps/src/sem.rs crates/apps/src/stencil.rs crates/apps/src/workload.rs

/root/repo/target/release/deps/libdavide_apps-e825e7482899217c.rlib: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/collectives.rs crates/apps/src/complex.rs crates/apps/src/distributed.rs crates/apps/src/fft.rs crates/apps/src/gemm.rs crates/apps/src/lattice.rs crates/apps/src/lu.rs crates/apps/src/roofline.rs crates/apps/src/sem.rs crates/apps/src/stencil.rs crates/apps/src/workload.rs

/root/repo/target/release/deps/libdavide_apps-e825e7482899217c.rmeta: crates/apps/src/lib.rs crates/apps/src/cg.rs crates/apps/src/collectives.rs crates/apps/src/complex.rs crates/apps/src/distributed.rs crates/apps/src/fft.rs crates/apps/src/gemm.rs crates/apps/src/lattice.rs crates/apps/src/lu.rs crates/apps/src/roofline.rs crates/apps/src/sem.rs crates/apps/src/stencil.rs crates/apps/src/workload.rs

crates/apps/src/lib.rs:
crates/apps/src/cg.rs:
crates/apps/src/collectives.rs:
crates/apps/src/complex.rs:
crates/apps/src/distributed.rs:
crates/apps/src/fft.rs:
crates/apps/src/gemm.rs:
crates/apps/src/lattice.rs:
crates/apps/src/lu.rs:
crates/apps/src/roofline.rs:
crates/apps/src/sem.rs:
crates/apps/src/stencil.rs:
crates/apps/src/workload.rs:
