/root/repo/target/release/deps/davide_predictor-89fff383f50b1198.d: crates/predictor/src/lib.rs crates/predictor/src/eval.rs crates/predictor/src/features.rs crates/predictor/src/forest.rs crates/predictor/src/knn.rs crates/predictor/src/linalg.rs crates/predictor/src/linreg.rs crates/predictor/src/model.rs crates/predictor/src/online.rs crates/predictor/src/tree.rs

/root/repo/target/release/deps/libdavide_predictor-89fff383f50b1198.rlib: crates/predictor/src/lib.rs crates/predictor/src/eval.rs crates/predictor/src/features.rs crates/predictor/src/forest.rs crates/predictor/src/knn.rs crates/predictor/src/linalg.rs crates/predictor/src/linreg.rs crates/predictor/src/model.rs crates/predictor/src/online.rs crates/predictor/src/tree.rs

/root/repo/target/release/deps/libdavide_predictor-89fff383f50b1198.rmeta: crates/predictor/src/lib.rs crates/predictor/src/eval.rs crates/predictor/src/features.rs crates/predictor/src/forest.rs crates/predictor/src/knn.rs crates/predictor/src/linalg.rs crates/predictor/src/linreg.rs crates/predictor/src/model.rs crates/predictor/src/online.rs crates/predictor/src/tree.rs

crates/predictor/src/lib.rs:
crates/predictor/src/eval.rs:
crates/predictor/src/features.rs:
crates/predictor/src/forest.rs:
crates/predictor/src/knn.rs:
crates/predictor/src/linalg.rs:
crates/predictor/src/linreg.rs:
crates/predictor/src/model.rs:
crates/predictor/src/online.rs:
crates/predictor/src/tree.rs:
