/root/repo/target/release/deps/ingest-d21775b1ed305590.d: crates/bench/benches/ingest.rs

/root/repo/target/release/deps/ingest-d21775b1ed305590: crates/bench/benches/ingest.rs

crates/bench/benches/ingest.rs:
