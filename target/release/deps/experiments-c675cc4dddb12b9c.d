/root/repo/target/release/deps/experiments-c675cc4dddb12b9c.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-c675cc4dddb12b9c: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
