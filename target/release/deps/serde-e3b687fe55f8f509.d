/root/repo/target/release/deps/serde-e3b687fe55f8f509.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e3b687fe55f8f509.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e3b687fe55f8f509.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
