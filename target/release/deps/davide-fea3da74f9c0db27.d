/root/repo/target/release/deps/davide-fea3da74f9c0db27.d: src/lib.rs

/root/repo/target/release/deps/libdavide-fea3da74f9c0db27.rlib: src/lib.rs

/root/repo/target/release/deps/libdavide-fea3da74f9c0db27.rmeta: src/lib.rs

src/lib.rs:
