/root/repo/target/release/deps/davide_bench-63d1503c32727cfc.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/controlplane.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/release/deps/libdavide_bench-63d1503c32727cfc.rlib: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/controlplane.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

/root/repo/target/release/deps/libdavide_bench-63d1503c32727cfc.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/applications.rs crates/bench/src/experiments/controlplane.rs crates/bench/src/experiments/ingest.rs crates/bench/src/experiments/management.rs crates/bench/src/experiments/monitoring.rs crates/bench/src/experiments/system.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/applications.rs:
crates/bench/src/experiments/controlplane.rs:
crates/bench/src/experiments/ingest.rs:
crates/bench/src/experiments/management.rs:
crates/bench/src/experiments/monitoring.rs:
crates/bench/src/experiments/system.rs:
