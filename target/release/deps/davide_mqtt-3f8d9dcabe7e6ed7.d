/root/repo/target/release/deps/davide_mqtt-3f8d9dcabe7e6ed7.d: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs

/root/repo/target/release/deps/libdavide_mqtt-3f8d9dcabe7e6ed7.rlib: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs

/root/repo/target/release/deps/libdavide_mqtt-3f8d9dcabe7e6ed7.rmeta: crates/mqtt/src/lib.rs crates/mqtt/src/bridge.rs crates/mqtt/src/broker.rs crates/mqtt/src/client.rs crates/mqtt/src/codec.rs crates/mqtt/src/framed.rs crates/mqtt/src/session.rs crates/mqtt/src/topic.rs

crates/mqtt/src/lib.rs:
crates/mqtt/src/bridge.rs:
crates/mqtt/src/broker.rs:
crates/mqtt/src/client.rs:
crates/mqtt/src/codec.rs:
crates/mqtt/src/framed.rs:
crates/mqtt/src/session.rs:
crates/mqtt/src/topic.rs:
