/root/repo/target/release/deps/davide_telemetry-926333f58ab44765.d: crates/telemetry/src/lib.rs crates/telemetry/src/adc.rs crates/telemetry/src/calibration.rs crates/telemetry/src/clock.rs crates/telemetry/src/decimation.rs crates/telemetry/src/energy.rs crates/telemetry/src/events.rs crates/telemetry/src/gateway.rs crates/telemetry/src/hazards.rs crates/telemetry/src/ingest.rs crates/telemetry/src/monitor.rs crates/telemetry/src/profiler.rs crates/telemetry/src/sensors.rs crates/telemetry/src/spectral.rs crates/telemetry/src/tsdb.rs crates/telemetry/src/waveform.rs

/root/repo/target/release/deps/libdavide_telemetry-926333f58ab44765.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/adc.rs crates/telemetry/src/calibration.rs crates/telemetry/src/clock.rs crates/telemetry/src/decimation.rs crates/telemetry/src/energy.rs crates/telemetry/src/events.rs crates/telemetry/src/gateway.rs crates/telemetry/src/hazards.rs crates/telemetry/src/ingest.rs crates/telemetry/src/monitor.rs crates/telemetry/src/profiler.rs crates/telemetry/src/sensors.rs crates/telemetry/src/spectral.rs crates/telemetry/src/tsdb.rs crates/telemetry/src/waveform.rs

/root/repo/target/release/deps/libdavide_telemetry-926333f58ab44765.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/adc.rs crates/telemetry/src/calibration.rs crates/telemetry/src/clock.rs crates/telemetry/src/decimation.rs crates/telemetry/src/energy.rs crates/telemetry/src/events.rs crates/telemetry/src/gateway.rs crates/telemetry/src/hazards.rs crates/telemetry/src/ingest.rs crates/telemetry/src/monitor.rs crates/telemetry/src/profiler.rs crates/telemetry/src/sensors.rs crates/telemetry/src/spectral.rs crates/telemetry/src/tsdb.rs crates/telemetry/src/waveform.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/adc.rs:
crates/telemetry/src/calibration.rs:
crates/telemetry/src/clock.rs:
crates/telemetry/src/decimation.rs:
crates/telemetry/src/energy.rs:
crates/telemetry/src/events.rs:
crates/telemetry/src/gateway.rs:
crates/telemetry/src/hazards.rs:
crates/telemetry/src/ingest.rs:
crates/telemetry/src/monitor.rs:
crates/telemetry/src/profiler.rs:
crates/telemetry/src/sensors.rs:
crates/telemetry/src/spectral.rs:
crates/telemetry/src/tsdb.rs:
crates/telemetry/src/waveform.rs:
