/root/repo/target/release/deps/davide-9af5685e5e669c92.d: src/lib.rs

/root/repo/target/release/deps/libdavide-9af5685e5e669c92.rlib: src/lib.rs

/root/repo/target/release/deps/libdavide-9af5685e5e669c92.rmeta: src/lib.rs

src/lib.rs:
