/root/repo/target/release/deps/serde_json-256a8c82cdfdbf91.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-256a8c82cdfdbf91.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-256a8c82cdfdbf91.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
