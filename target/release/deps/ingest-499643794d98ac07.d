/root/repo/target/release/deps/ingest-499643794d98ac07.d: crates/bench/benches/ingest.rs

/root/repo/target/release/deps/ingest-499643794d98ac07: crates/bench/benches/ingest.rs

crates/bench/benches/ingest.rs:
