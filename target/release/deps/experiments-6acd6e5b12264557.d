/root/repo/target/release/deps/experiments-6acd6e5b12264557.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-6acd6e5b12264557: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
