//! Offline vendored no-op derives for `Serialize`/`Deserialize`.
//!
//! The workspace derives serde traits on its model types for downstream
//! consumers, but nothing in-tree serialises them (serde_json is an
//! unused transitive dependency). With no crates.io access the real
//! derive cannot be built, so these derives accept the same syntax —
//! including `#[serde(...)]` attributes — and expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
