//! Offline vendored `rayon` shim.
//!
//! The build environment has no crates.io access, so this crate provides
//! the `par_iter`/`par_iter_mut`/`par_chunks`/`par_chunks_mut`/
//! `into_par_iter` entry points the workspace uses and maps each to the
//! equivalent **sequential** standard-library iterator. Call sites keep
//! rayon's API shape (swap this crate for the real one to get
//! parallelism back); all numerical results are identical because every
//! kernel written against rayon is order-independent per element.

/// Sequential stand-ins for `rayon::prelude`.
pub mod prelude {
    /// Parallel-iterator entry points on slices (sequential here).
    pub trait ParallelSlice<T> {
        /// Per-element shared iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Non-overlapping chunks of length `n` (last may be shorter).
        fn par_chunks(&self, n: usize) -> std::slice::Chunks<'_, T>;
    }

    /// Mutable parallel-iterator entry points on slices (sequential here).
    pub trait ParallelSliceMut<T> {
        /// Per-element exclusive iterator.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Non-overlapping mutable chunks of length `n`.
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T>;
    }

    /// Owning conversion into a (sequential) "parallel" iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Convert into the iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, n: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(n)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, n: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(n)
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<std::vec::IntoIter<T>>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter(self.into_iter())
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParIter<std::ops::Range<usize>>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter(self)
        }
    }

    impl IntoParallelIterator for std::ops::Range<u32> {
        type Item = u32;
        type Iter = ParIter<std::ops::Range<u32>>;
        fn into_par_iter(self) -> Self::Iter {
            ParIter(self)
        }
    }

    /// Owning "parallel" iterator. Delegates the standard [`Iterator`]
    /// surface, and adds rayon's two-closure `fold`/`reduce` shape as
    /// inherent methods (inherent methods win over the `Iterator`
    /// methods of the same name, exactly the precedence we need).
    pub struct ParIter<I>(I);

    impl<I: Iterator> Iterator for ParIter<I> {
        type Item = I::Item;
        fn next(&mut self) -> Option<I::Item> {
            self.0.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.0.size_hint()
        }
    }

    impl<I: Iterator> ParIter<I> {
        /// rayon-style fold: one accumulator per "thread" (one, here).
        pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
        where
            ID: Fn() -> T,
            F: FnMut(T, I::Item) -> T,
        {
            let acc = Iterator::fold(self.0, identity(), fold_op);
            ParIter(std::iter::once(acc))
        }

        /// rayon-style reduce with an identity maker.
        pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
        where
            ID: Fn() -> I::Item,
            F: FnMut(I::Item, I::Item) -> I::Item,
        {
            Iterator::fold(self.0, identity(), op)
        }
    }
}

/// Run two closures (sequentially here; rayon runs them in parallel).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_entry_points_match_std() {
        let xs = [1.0f64, 2.0, 3.0, 4.0];
        let dot: f64 = xs.par_iter().zip(xs.par_iter()).map(|(a, b)| a * b).sum();
        assert_eq!(dot, 30.0);
        let mut ys = [0u32; 6];
        ys.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for v in c {
                *v = i as u32;
            }
        });
        assert_eq!(ys, [0, 0, 1, 1, 2, 2]);
        let squares: Vec<usize> = (0..4usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9]);
    }

    #[test]
    fn rayon_shape_fold_reduce() {
        let total: Vec<f64> = (0..10usize)
            .into_par_iter()
            .fold(
                || vec![0.0; 2],
                |mut acc, i| {
                    acc[i % 2] += i as f64;
                    acc
                },
            )
            .reduce(
                || vec![0.0; 2],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        assert_eq!(total, vec![20.0, 25.0]);
    }
}
