//! Offline vendored subset of `crossbeam`.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` with the
//! `Sender`/`Receiver` methods this workspace uses, implemented over
//! `std::sync::mpsc`. Like upstream (and unlike bare `mpsc`), the
//! channel is MPMC: `Receiver` clones share one queue — each message
//! is delivered to exactly one of the cloned receivers — which is what
//! the HTTP front-end's worker pool relies on.

pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Sending half of a channel.
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "Sender {{ queued: {} }}",
                self.queued.load(Ordering::Relaxed)
            )
        }
    }

    /// Receiving half of a channel. Clones share the queue (MPMC):
    /// each message reaches exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
        queued: Arc<AtomicUsize>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
                queued: Arc::clone(&self.queued),
            }
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(
                f,
                "Receiver {{ queued: {} }}",
                self.queued.load(Ordering::Relaxed)
            )
        }
    }

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::send`]: all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timed out with no message.
        Timeout,
        /// All senders are gone.
        Disconnected,
    }

    /// A bounded FIFO channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        let queued = Arc::new(AtomicUsize::new(0));
        (
            Sender {
                inner: tx,
                queued: Arc::clone(&queued),
            },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
                queued,
            },
        )
    }

    impl<T> Sender<T> {
        /// Blocking send; waits for space, fails only on disconnect.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match self.inner.send(msg) {
                Ok(()) => {
                    self.queued.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                Err(mpsc::SendError(m)) => Err(SendError(m)),
            }
        }

        /// Non-blocking send; fails when full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match self.inner.try_send(msg) {
                Ok(()) => {
                    self.queued.fetch_add(1, Ordering::Relaxed);
                    Ok(())
                }
                Err(mpsc::TrySendError::Full(m)) => Err(TrySendError::Full(m)),
                Err(mpsc::TrySendError::Disconnected(m)) => Err(TrySendError::Disconnected(m)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.queued.load(Ordering::Relaxed)
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        fn took_one(&self) {
            // Saturating decrement: a race with a concurrent try_send is
            // benign because len() is advisory (queue-depth diagnostics).
            let _ = self
                .queued
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match self.inner.lock().expect("channel poisoned").try_recv() {
                Ok(m) => {
                    self.took_one();
                    Ok(m)
                }
                Err(mpsc::TryRecvError::Empty) => Err(TryRecvError::Empty),
                Err(mpsc::TryRecvError::Disconnected) => Err(TryRecvError::Disconnected),
            }
        }

        /// Blocking receive until a message or disconnect.
        ///
        /// With cloned receivers the queue lock is held while waiting;
        /// worker pools should prefer [`Receiver::recv_timeout`] so
        /// siblings get their turn at the queue.
        pub fn recv(&self) -> Result<T, RecvError> {
            let m = self
                .inner
                .lock()
                .expect("channel poisoned")
                .recv()
                .map_err(|_| RecvError)?;
            self.took_one();
            Ok(m)
        }

        /// Blocking receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let got = self
                .inner
                .lock()
                .expect("channel poisoned")
                .recv_timeout(timeout);
            match got {
                Ok(m) => {
                    self.took_one();
                    Ok(m)
                }
                Err(mpsc::RecvTimeoutError::Timeout) => Err(RecvTimeoutError::Timeout),
                Err(mpsc::RecvTimeoutError::Disconnected) => Err(RecvTimeoutError::Disconnected),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_backpressure() {
            let (tx, rx) = bounded(2);
            assert!(tx.try_send(1).is_ok());
            assert!(tx.try_send(2).is_ok());
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            assert!(tx.try_send(3).is_ok());
            drop(tx);
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = bounded(8);
            let rx2 = rx.clone();
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            let mut got = vec![
                rx.recv().unwrap(),
                rx2.recv().unwrap(),
                rx.try_recv().unwrap(),
                rx2.try_recv().unwrap(),
            ];
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            drop(rx);
            drop(rx2);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn timeout_empty() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
