//! Offline vendored `criterion` mini-harness.
//!
//! Implements the API surface the workspace's benches use —
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical engine. Supports the standard bench-binary flags:
//! `--test` runs every benchmark exactly once (CI smoke mode), `--bench`
//! is accepted and ignored, and positional arguments filter benchmark
//! names by substring.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark identifier (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    /// Target wall-clock time per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            test_mode: false,
            filters: Vec::new(),
            measure_for: Duration::from_millis(250),
        }
    }
}

impl Criterion {
    /// Apply standard bench-binary command-line arguments.
    pub fn configure_from_args(mut self) -> Criterion {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "-n" | "--noplot" => {}
                a if a.starts_with("--") => {} // unknown flags: ignore
                filter => self.filters.push(filter.to_string()),
            }
        }
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the mini-harness sizes runs by
    /// wall-clock time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d.min(Duration::from_secs(2));
        self
    }

    /// Run a named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, &mut f);
    }

    /// Run a parameterised benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
    }

    /// Close the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            measure_for: self.criterion.measure_for,
            ns_per_iter: 0.0,
            iters_done: 0,
        };
        f(&mut b);
        if b.iters_done == 0 {
            println!("{full:<56} (no measurement: Bencher::iter never called)");
            return;
        }
        let per_iter = fmt_time(b.ns_per_iter);
        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                format!("  thrpt: {}/s", fmt_count(n as f64 * 1e9 / b.ns_per_iter))
            }
            Some(Throughput::Bytes(n)) if b.ns_per_iter > 0.0 => {
                format!("  thrpt: {}B/s", fmt_count(n as f64 * 1e9 / b.ns_per_iter))
            }
            _ => String::new(),
        };
        println!(
            "{full:<56} time: {per_iter:>12}/iter{thrpt}  ({} iters)",
            b.iters_done
        );
    }
}

/// Handle passed to the measured closure.
pub struct Bencher {
    test_mode: bool,
    measure_for: Duration,
    ns_per_iter: f64,
    iters_done: u64,
}

impl Bencher {
    /// Measure `f`, called repeatedly until the time budget is spent
    /// (once in `--test` mode). The closure's return value is passed
    /// through `black_box` so the optimiser cannot delete the work.
    pub fn iter<R, F>(&mut self, mut f: F)
    where
        F: FnMut() -> R,
    {
        if self.test_mode {
            black_box(f());
            self.iters_done = 1;
            self.ns_per_iter = 0.0;
            return;
        }
        // Warm-up and single-shot calibration.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let budget = self.measure_for;
        if once >= budget {
            self.iters_done = 1;
            self.ns_per_iter = once.as_nanos() as f64;
            return;
        }
        let target = (budget.as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        let total = t1.elapsed();
        self.iters_done = target;
        self.ns_per_iter = total.as_nanos() as f64 / target as f64;
    }
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.0} ")
    }
}

/// Declare a benchmark group runner (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main` (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
