//! Offline vendored serde facade.
//!
//! Supplies the `Serialize`/`Deserialize` trait names (as markers) and,
//! under the `derive` feature, re-exports the no-op derive macros so
//! `#[derive(Serialize, Deserialize)]` compiles without crates.io
//! access. No serialisation is performed anywhere in this workspace.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
