//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `bytes` 1.x API it actually uses:
//! [`Bytes`] (cheaply cloneable, sliceable immutable buffer),
//! [`BytesMut`] (growable buffer), and the [`Buf`]/[`BufMut`] cursor
//! traits. Semantics match the upstream crate for this subset; only
//! performance corners differ (`from_static` copies instead of
//! borrowing, which is irrelevant for the in-process broker).

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Wrap a static byte slice (copies; upstream borrows).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(bytes)
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Length of the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Split off and return the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from_vec(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer with cursor-style writes.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor: `advance`/`split_to` move this instead of shifting
    /// the underlying vector on every call.
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Pre-sized buffer.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Split off and return the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = BytesMut {
            buf: self.buf[self.read..self.read + at].to_vec(),
            read: 0,
        };
        self.read += at;
        self.compact();
        head
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from_vec(self.buf)
    }

    fn compact(&mut self) {
        // Keep the vector bounded: drop consumed bytes once they dominate.
        if self.read > 4096 && self.read * 2 > self.buf.len() {
            self.buf.drain(..self.read);
            self.read = 0;
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> BytesMut {
        BytesMut {
            buf: v.to_vec(),
            read: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.read..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let r = self.read;
        &mut self.buf[r..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::copy_from_slice(self), f)
    }
}

macro_rules! get_impl {
    ($self:ident, $ty:ty, $conv:ident) => {{
        const N: usize = std::mem::size_of::<$ty>();
        let mut raw = [0u8; N];
        raw.copy_from_slice(&$self.chunk()[..N]);
        $self.advance(N);
        <$ty>::$conv(raw)
    }};
}

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read a `u8`.
    fn get_u8(&mut self) -> u8 {
        get_impl!(self, u8, from_be_bytes)
    }
    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        get_impl!(self, u16, from_be_bytes)
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        get_impl!(self, u32, from_le_bytes)
    }
    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        get_impl!(self, f32, from_le_bytes)
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        get_impl!(self, f64, from_le_bytes)
    }
    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.read += cnt;
        self.compact();
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Write a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Write a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Write a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Write a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_and_be() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x1234);
        b.put_u32_le(0xDEADBEEF);
        b.put_f32_le(1.5);
        b.put_f64_le(-2.25);
        let mut r = b.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEADBEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_and_clone_views() {
        let mut b = Bytes::copy_from_slice(b"hello world");
        let head = b.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&b[..], b" world");
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    fn bytesmut_cursor_reads() {
        let mut m = BytesMut::from(&b"\x01\x00\x02xy"[..]);
        assert_eq!(m.get_u8(), 1);
        assert_eq!(m.get_u16(), 2);
        let tail = m.split_to(2);
        assert_eq!(&tail[..], b"xy");
        assert!(m.is_empty());
    }

    #[test]
    fn slice_buf_peek() {
        let data = [1u8, 2, 3, 4];
        let mut peek = &data[..];
        assert_eq!(peek.get_u8(), 1);
        assert_eq!(peek.remaining(), 3);
        peek.advance(1);
        assert_eq!(peek.chunk(), &[3, 4]);
    }
}
