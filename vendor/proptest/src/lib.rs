//! Offline vendored property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`, range and regex-charclass
//! strategies, `collection::vec`, `any::<T>()` and `prop_map`.
//!
//! Generation is deterministic: each test derives its RNG seed from the
//! test name, so failures reproduce on every run. Shrinking is not
//! implemented — failures report the case index and message only.

use std::fmt;

/// Number of generated cases per property.
pub const CASES: u64 = 64;

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic split-mix / xorshift generator for case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary value.
    pub fn seed_from(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*};
    }
    int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// String strategies from a character-class pattern like
    /// `"[a-z0-9]{1,6}"`. Supports one or more literal chars or
    /// `[set]{m,n}` groups (ranges inside the set); anything fancier
    /// panics so unsupported regexes fail loudly, not silently.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            let chars: Vec<char> = self.chars().collect();
            let mut i = 0;
            while i < chars.len() {
                if chars[i] == '[' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unclosed [ in pattern")
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (a, b) = (chars[j] as u32, chars[j + 2] as u32);
                            set.extend((a..=b).filter_map(char::from_u32));
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty character class");
                    let (lo, hi, next) = if close + 1 < chars.len() && chars[close + 1] == '{' {
                        let end = chars[close..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unclosed {{ in pattern")
                            + close;
                        let spec: String = chars[close + 2..end].iter().collect();
                        let (lo, hi) = match spec.split_once(',') {
                            Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                            None => {
                                let n: usize = spec.parse().unwrap();
                                (n, n)
                            }
                        };
                        (lo, hi, end + 1)
                    } else {
                        (1, 1, close + 1)
                    };
                    let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                    for _ in 0..n {
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    i = next;
                } else {
                    out.push(chars[i]);
                    i += 1;
                }
            }
            out
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use super::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values across a wide dynamic range.
            rng.unit_f64() * 2e6 - 1e6
        }
    }
}

/// The canonical whole-domain strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Output of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: arbitrary::Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;

    /// Inclusive-exclusive size specification for collections.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::Strategy;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, TestCaseError};
}

/// Driver used by the [`proptest!`] expansion: runs [`CASES`] cases with
/// a name-derived deterministic seed and panics on the first failure.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    });
    for i in 0..CASES {
        let mut rng = TestRng::seed_from(seed.wrapping_add(i));
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed on case {i}/{CASES}: {e}");
        }
    }
}

/// Define deterministic property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    let __proptest_case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                    __proptest_case()
                });
            }
        )*
    };
}

/// Assert inside a property, failing the case (not the process) on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -5.0f64..5.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y), "y={y}");
        }

        #[test]
        fn charclass_strings(s in "[a-c0-1]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| "abc01".contains(c)));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..7, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 7));
        }

        #[test]
        fn mapped_strategy(s in crate::collection::vec("[a-z]{1,3}", 1..4).prop_map(|v| v.join("/"))) {
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn any_bool_is_generated(b in any::<bool>()) {
            let _ = b;
        }
    }
}
