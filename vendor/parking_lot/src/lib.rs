//! Offline vendored subset of `parking_lot`: poison-free `Mutex` and
//! `RwLock` wrappers over `std::sync`. Lock poisoning is swallowed the
//! way parking_lot does — a panicked writer does not wedge the lock.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default, Debug)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock (recovers from poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
