//! Offline vendored `serde_json` placeholder.
//!
//! The bench crate declares serde_json but no in-tree code calls it;
//! this empty crate satisfies dependency resolution without crates.io.
