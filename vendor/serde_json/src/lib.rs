//! Offline vendored `serde_json` subset.
//!
//! Provides the slice of the upstream API the workspace actually uses:
//! the dynamically-typed [`Value`] tree, a strict JSON parser
//! ([`from_str`]) and a deterministic writer ([`to_string`] /
//! `Display`). There is no `Serializer`/`Deserializer` trait machinery
//! (the vendored `serde` is a marker facade); typed structs convert to
//! and from [`Value`] by hand in the crates that own them.
//!
//! Determinism matters here: `davide-api`'s differential tests assert
//! that an HTTP response body is **bit-identical** to serialising the
//! same typed response in-process, so object members are kept in a
//! sorted `BTreeMap` and numbers are written with Rust's shortest
//! round-trip float formatting.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Maximum nesting depth [`from_str`] accepts before bailing out —
/// bounds recursion so adversarial bodies cannot blow the stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like upstream's lossy mode).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Sorted map, so serialisation is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Element of an array by index (`None` for non-arrays).
    pub fn get_idx(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document. Strict: rejects trailing garbage,
/// unterminated strings, bad escapes, numbers JSON does not allow
/// (`NaN`, `Infinity`, leading `+`), and nesting deeper than
/// [`MAX_DEPTH`]. Never panics on any input.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Serialise a value to its canonical compact text.
pub fn to_string(v: &Value) -> String {
    v.to_string()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Number(n) => write_number(f, *n),
            Value::String(s) => write_escaped(f, s),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    v.fmt(f)?;
                }
                f.write_str("]")
            }
            Value::Object(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

/// JSON has no NaN/Infinity; map them to `null` like upstream does for
/// lossy float serialisation.
fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        return f.write_str("null");
    }
    // Shortest round-trip formatting; integers print without ".0".
    write!(f, "{n}")
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{08}' => f.write_str("\\b")?,
            '\u{0c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> Error {
        Error {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &[u8], whole: &'static str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(whole))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat(b"null", "expected null").map(|_| Value::Null),
            Some(b't') => self
                .eat(b"true", "expected true")
                .map(|_| Value::Bool(true)),
            Some(b'f') => self
                .eat(b"false", "expected false")
                .map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // '{'
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            out.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require the low half.
                                self.eat(b"\\u", "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("bad hex digit in \\u escape")),
            };
            v = (v << 4) | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Ok(Value::Number(n))
    }
}

/// Build an object from `(key, value)` pairs — the hand-rolled
/// counterpart of upstream's `json!({...})` for typed conversions.
pub fn object<const N: usize>(pairs: [(&str, Value); N]) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, want) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("0", Value::Number(0.0)),
            ("-12.5e2", Value::Number(-1250.0)),
            ("\"hi\"", Value::String("hi".into())),
        ] {
            let v = from_str(text).unwrap();
            assert_eq!(v, want, "{text}");
            assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        }
    }

    #[test]
    fn nested_document() {
        let v = from_str(r#"{"a": [1, 2, {"b": null}], "c": "x\ny", "d": true}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert!(arr[2].get("b").unwrap().is_null());
        // Canonical form: sorted keys, compact.
        assert_eq!(
            to_string(&v),
            r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true}"#
        );
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "nul",
            "truex",
            "1.2.3",
            "+1",
            "NaN",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\":1} extra",
            "[1 2]",
            "-",
            "1e",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\u{1}",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn depth_bound_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(
            from_str(&deep).unwrap_err().message,
            "nesting too deep",
            "recursion must be bounded"
        );
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(from_str(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            from_str(r#""\u00e9\ud83d\ude00""#).unwrap(),
            Value::String("é😀".into())
        );
        // Raw UTF-8 passes through and re-escapes only control chars.
        let v = from_str("\"é😀\\u0007\"").unwrap();
        assert_eq!(to_string(&v), "\"é😀\\u0007\"");
    }

    #[test]
    fn float_formatting_is_roundtrip_stable() {
        for n in [0.1, 1.0 / 3.0, 1e300, -4.2e-7, 5.0, 1234567890.0] {
            let text = to_string(&Value::Number(n));
            assert_eq!(from_str(&text).unwrap().as_f64(), Some(n), "{text}");
        }
        assert_eq!(to_string(&Value::Number(5.0)), "5");
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
    }

    #[test]
    fn object_builder_and_accessors() {
        let v = object([
            ("n", Value::from(3u64)),
            ("s", Value::from("x")),
            ("a", Value::from(vec![Value::from(true)])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get_idx(0), None, "objects have no indices");
        assert_eq!(
            v.get("a").and_then(|a| a.get_idx(0)),
            Some(&Value::Bool(true))
        );
        assert_eq!(Value::Number(1.5).as_u64(), None, "non-integers refuse");
        assert_eq!(Value::Number(-1.0).as_u64(), None);
    }
}
