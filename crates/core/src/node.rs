//! The D.A.V.I.D.E. compute node (OpenPOWER "Garrison" derivative).
//!
//! §II-E: two POWER8+ sockets with NVLink, four Tesla P100s (two per
//! socket), 22 TFlops DP peak, ≈ 2 kW estimated draw, direct liquid
//! cooling on CPUs and GPUs. The node exposes the energy-proportionality
//! knobs of §IV: core gating, GPU power-off, memory-channel gating and
//! DVFS pinning.

use crate::cooling::ThermalNode;
use crate::cpu::{CpuModel, CpuSpec};
use crate::error::{CoreError, Result};
use crate::gpu::{GpuModel, GpuSpec, Precision};
use crate::memory::{MemoryModel, MemorySpec};
use crate::units::{Celsius, Gflops, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Utilisation of each node subsystem, all in `[0,1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeLoad {
    /// CPU core utilisation.
    pub cpu: f64,
    /// GPU SM utilisation.
    pub gpu: f64,
    /// Memory-bandwidth utilisation.
    pub mem: f64,
    /// Network (HCA) utilisation.
    pub net: f64,
}

impl NodeLoad {
    /// Everything flat out — the Linpack-like load.
    pub const FULL: NodeLoad = NodeLoad {
        cpu: 1.0,
        gpu: 1.0,
        mem: 0.7,
        net: 0.3,
    };

    /// Idle node.
    pub const IDLE: NodeLoad = NodeLoad {
        cpu: 0.0,
        gpu: 0.0,
        mem: 0.0,
        net: 0.0,
    };

    /// Clamp all components into `[0,1]`.
    pub fn clamped(self) -> Self {
        NodeLoad {
            cpu: self.cpu.clamp(0.0, 1.0),
            gpu: self.gpu.clamp(0.0, 1.0),
            mem: self.mem.clamp(0.0, 1.0),
            net: self.net.clamp(0.0, 1.0),
        }
    }
}

/// Resource shape a job asks of a node (energy-proportionality target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobShape {
    /// Cores per socket the job will use (1..=8).
    pub cores_per_socket: u32,
    /// GPUs the job will use (0..=4).
    pub gpus: u32,
    /// Memory channels (Centaurs) per socket the job needs (1..=4).
    pub centaurs_per_socket: u32,
}

impl JobShape {
    /// The whole node.
    pub const FULL_NODE: JobShape = JobShape {
        cores_per_socket: 8,
        gpus: 4,
        centaurs_per_socket: 4,
    };
}

/// One compute node: sockets, accelerators, memory, NIC and board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeNode {
    /// Node identifier within the cluster.
    pub id: u32,
    /// The two POWER8+ sockets.
    pub cpus: Vec<CpuModel>,
    /// The four P100s (GPUs `2k` and `2k+1` attach to socket `k`).
    pub gpus: Vec<GpuModel>,
    /// Per-socket memory subsystems.
    pub mem: Vec<MemoryModel>,
    /// Per-die thermal models (index-aligned: CPUs then GPUs).
    pub thermals: Vec<ThermalNode>,
    /// Board, VRM, BMC, storage: constant floor.
    pub misc_power: Watts,
    /// Dual EDR HCA power at full traffic.
    pub nic_power_max: Watts,
}

impl ComputeNode {
    /// Build the standard D.A.V.I.D.E. node (liquid-cooled dies).
    pub fn davide(id: u32) -> Self {
        let cpus = vec![
            CpuModel::new(CpuSpec::power8plus()),
            CpuModel::new(CpuSpec::power8plus()),
        ];
        let gpus = (0..4).map(|_| GpuModel::new(GpuSpec::p100())).collect();
        let mem = vec![
            MemoryModel::new(MemorySpec::davide_socket()),
            MemoryModel::new(MemorySpec::davide_socket()),
        ];
        let thermals = vec![
            ThermalNode::liquid_cpu(),
            ThermalNode::liquid_cpu(),
            ThermalNode::liquid_gpu(),
            ThermalNode::liquid_gpu(),
            ThermalNode::liquid_gpu(),
            ThermalNode::liquid_gpu(),
        ];
        ComputeNode {
            id,
            cpus,
            gpus,
            mem,
            thermals,
            misc_power: Watts(90.0),
            nic_power_max: Watts(28.0),
        }
    }

    /// A node with per-unit manufacturing variation: silicon leakage and
    /// VRM efficiency differ part to part, so identically-configured
    /// nodes draw measurably different power (~±3 % in practice). The
    /// draw is deterministic in `rng`, so fleets are reproducible.
    pub fn davide_varied(id: u32, rng: &mut crate::rng::Rng) -> Self {
        let mut node = Self::davide(id);
        for cpu in &mut node.cpus {
            let k = 1.0 + rng.normal(0.0, 0.03);
            cpu.spec.idle_power = cpu.spec.idle_power * k;
            cpu.spec.tdp = cpu.spec.tdp * k;
        }
        for gpu in &mut node.gpus {
            let k = 1.0 + rng.normal(0.0, 0.03);
            gpu.spec.idle_power = gpu.spec.idle_power * k;
            gpu.spec.tdp = gpu.spec.tdp * k;
        }
        node.misc_power = node.misc_power * (1.0 + rng.normal(0.0, 0.05));
        node
    }

    /// An air-cooled variant of the same node (the original Garrison
    /// design) — used for the cooling comparison of E8.
    pub fn davide_air_cooled(id: u32) -> Self {
        let mut node = Self::davide(id);
        node.thermals = vec![
            ThermalNode::air_cpu(),
            ThermalNode::air_cpu(),
            ThermalNode::air_gpu(),
            ThermalNode::air_gpu(),
            ThermalNode::air_gpu(),
            ThermalNode::air_gpu(),
        ];
        node
    }

    /// Peak DP performance in the current gating/DVFS configuration.
    pub fn peak_gflops(&self) -> Gflops {
        let cpu: Gflops = self.cpus.iter().map(|c| c.peak_gflops()).sum();
        let gpu: Gflops = self.gpus.iter().map(|g| g.gflops(1.0)).sum();
        cpu + gpu
    }

    /// Architectural peak with everything on at boost clocks (§II-E's
    /// "22 TFlops").
    pub fn architectural_peak(&self) -> Gflops {
        let cpu: Gflops = self
            .cpus
            .iter()
            .map(|c| c.spec.peak_gflops_at(c.spec.dvfs.len() - 1))
            .sum();
        let gpu: Gflops = self
            .gpus
            .iter()
            .map(|g| g.spec.peak_gflops(Precision::Fp64))
            .sum();
        cpu + gpu
    }

    /// Instantaneous node power under `load`.
    pub fn power(&self, load: NodeLoad) -> Watts {
        let load = load.clamped();
        let cpu: Watts = self.cpus.iter().map(|c| c.power(load.cpu)).sum();
        let gpu: Watts = self.gpus.iter().map(|g| g.power(load.gpu)).sum();
        let mem: Watts = self.mem.iter().map(|m| m.power(load.mem)).sum();
        let nic = self.nic_power_max * (0.4 + 0.6 * load.net);
        cpu + gpu + mem + nic + self.misc_power
    }

    /// Per-component power breakdown `(cpu, gpu, mem, other)` — what the
    /// energy gateway's per-component sensors observe.
    pub fn power_breakdown(&self, load: NodeLoad) -> (Watts, Watts, Watts, Watts) {
        let load = load.clamped();
        let cpu: Watts = self.cpus.iter().map(|c| c.power(load.cpu)).sum();
        let gpu: Watts = self.gpus.iter().map(|g| g.power(load.gpu)).sum();
        let mem: Watts = self.mem.iter().map(|m| m.power(load.mem)).sum();
        let other = self.nic_power_max * (0.4 + 0.6 * load.net) + self.misc_power;
        (cpu, gpu, mem, other)
    }

    /// Apply a job shape: gate cores, GPUs and memory channels to fit the
    /// job (§IV energy-proportionality APIs).
    pub fn apply_shape(&mut self, shape: JobShape) -> Result<()> {
        if shape.gpus > self.gpus.len() as u32 {
            return Err(CoreError::InvalidConfig(format!(
                "node has {} GPUs, shape wants {}",
                self.gpus.len(),
                shape.gpus
            )));
        }
        for cpu in &mut self.cpus {
            cpu.set_active_cores(shape.cores_per_socket)?;
        }
        for (i, gpu) in self.gpus.iter_mut().enumerate() {
            gpu.set_enabled((i as u32) < shape.gpus);
        }
        for m in &mut self.mem {
            m.set_active_centaurs(shape.centaurs_per_socket)?;
        }
        Ok(())
    }

    /// Pin every die to DVFS ladder index `idx` (clamped per device).
    pub fn set_pstate_all(&mut self, idx: usize) {
        for cpu in &mut self.cpus {
            let i = idx.min(cpu.spec.dvfs.len() - 1);
            cpu.set_pstate(i).expect("clamped index is valid");
        }
        for gpu in &mut self.gpus {
            let i = idx.min(gpu.spec.dvfs.len() - 1);
            gpu.set_pstate(i).expect("clamped index is valid");
        }
    }

    /// Throttle every die one step; returns true if anything changed.
    pub fn throttle_all(&mut self) -> bool {
        let mut changed = false;
        for cpu in &mut self.cpus {
            changed |= cpu.pstate() != cpu.throttle();
        }
        for gpu in &mut self.gpus {
            changed |= gpu.pstate() != gpu.throttle();
        }
        changed
    }

    /// Unthrottle every die one step; returns true if anything changed.
    pub fn unthrottle_all(&mut self) -> bool {
        let mut changed = false;
        for cpu in &mut self.cpus {
            changed |= cpu.pstate() != cpu.unthrottle();
        }
        for gpu in &mut self.gpus {
            changed |= gpu.pstate() != gpu.unthrottle();
        }
        changed
    }

    /// Advance the per-die thermal state by `dt` under `load` with the
    /// given coolant/air sink temperature; throttles any die that trips
    /// its thermal limit. Returns the number of dies throttled this step.
    pub fn thermal_step(&mut self, load: NodeLoad, sink: Celsius, dt: Seconds) -> usize {
        let load = load.clamped();
        let n_cpu = self.cpus.len();
        let mut throttled = 0;
        // Compute per-die powers first to avoid aliasing borrows.
        let cpu_p: Vec<Watts> = self.cpus.iter().map(|c| c.power(load.cpu)).collect();
        let gpu_p: Vec<Watts> = self.gpus.iter().map(|g| g.power(load.gpu)).collect();
        for (i, die) in self.thermals.iter_mut().enumerate() {
            let p = if i < n_cpu {
                cpu_p[i]
            } else {
                gpu_p[i - n_cpu]
            };
            die.step(p, sink, dt);
        }
        for i in 0..self.thermals.len() {
            if self.thermals[i].must_throttle() {
                if i < n_cpu {
                    self.cpus[i].throttle();
                } else {
                    self.gpus[i - n_cpu].throttle();
                }
                throttled += 1;
            }
        }
        throttled
    }

    /// Hottest die temperature.
    pub fn max_die_temperature(&self) -> Celsius {
        self.thermals
            .iter()
            .map(|t| t.temperature)
            .fold(Celsius(f64::NEG_INFINITY), Celsius::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_matches_published_envelope() {
        let node = ComputeNode::davide(0);
        // §II-E: 22 TFlops DP peak per node.
        let peak = node.architectural_peak();
        assert!(
            (peak.tflops() - 22.0).abs() < 0.8,
            "architectural peak {peak} should be ≈22 TF"
        );
        // §II-E: ≈2 kW estimated node power under full load.
        let p = node.power(NodeLoad::FULL);
        assert!(
            (1.7..=2.2).contains(&p.kw()),
            "full-load node power {p} should be ≈2 kW"
        );
    }

    #[test]
    fn idle_node_draws_a_few_hundred_watts() {
        let node = ComputeNode::davide(0);
        let p = node.power(NodeLoad::IDLE);
        assert!((250.0..500.0).contains(&p.0), "idle={p}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let node = ComputeNode::davide(0);
        for load in [NodeLoad::IDLE, NodeLoad::FULL] {
            let (c, g, m, o) = node.power_breakdown(load);
            let total = node.power(load);
            assert!((c.0 + g.0 + m.0 + o.0 - total.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gpus_dominate_full_load_power() {
        let node = ComputeNode::davide(0);
        let (c, g, _, _) = node.power_breakdown(NodeLoad::FULL);
        assert!(g > c * 2.0, "4×P100 ≫ 2×POWER8: gpu={g} cpu={c}");
    }

    #[test]
    fn shape_gating_cuts_power() {
        let mut node = ComputeNode::davide(0);
        let full = node.power(NodeLoad::FULL);
        node.apply_shape(JobShape {
            cores_per_socket: 4,
            gpus: 1,
            centaurs_per_socket: 2,
        })
        .unwrap();
        let shaped = node.power(NodeLoad::FULL);
        assert!(
            shaped < full * 0.55,
            "1-GPU shape should cut well below half: {shaped} vs {full}"
        );
        let bad = node.apply_shape(JobShape {
            cores_per_socket: 9,
            gpus: 1,
            centaurs_per_socket: 1,
        });
        assert!(bad.is_err());
    }

    #[test]
    fn pstate_pinning_and_throttling() {
        let mut node = ComputeNode::davide(0);
        let p_full = node.power(NodeLoad::FULL);
        node.set_pstate_all(0);
        let p_min = node.power(NodeLoad::FULL);
        assert!(p_min < p_full * 0.8);
        assert!(node.unthrottle_all());
        let mut node2 = ComputeNode::davide(1);
        node2.set_pstate_all(0);
        assert!(!node2.throttle_all(), "already at the floor");
    }

    #[test]
    fn liquid_node_never_throttles_air_node_does() {
        let dt = Seconds(1.0);
        let mut liquid = ComputeNode::davide(0);
        let mut air = ComputeNode::davide_air_cooled(1);
        let mut liquid_throttles = 0;
        let mut air_throttles = 0;
        for _ in 0..600 {
            liquid_throttles += liquid.thermal_step(NodeLoad::FULL, Celsius(37.0), dt);
            air_throttles += air.thermal_step(NodeLoad::FULL, Celsius(30.0), dt);
        }
        assert_eq!(liquid_throttles, 0, "liquid cooling holds 37 °C water");
        assert!(air_throttles > 0, "air cooling trips thermal limits");
        assert!(air.max_die_temperature() > liquid.max_die_temperature());
    }

    #[test]
    fn varied_nodes_spread_around_nominal() {
        use crate::rng::Rng;
        let mut rng = Rng::seed_from(11);
        let nominal = ComputeNode::davide(0).power(NodeLoad::FULL).0;
        let powers: Vec<f64> = (0..100)
            .map(|i| {
                ComputeNode::davide_varied(i, &mut rng)
                    .power(NodeLoad::FULL)
                    .0
            })
            .collect();
        let mean = powers.iter().sum::<f64>() / powers.len() as f64;
        let spread = powers
            .iter()
            .fold(0.0_f64, |m, &p| m.max((p - nominal).abs()));
        assert!((mean - nominal).abs() < nominal * 0.01, "mean near nominal");
        assert!(spread > nominal * 0.02, "visible part-to-part spread");
        assert!(spread < nominal * 0.15, "but bounded");
        // Determinism.
        let a = ComputeNode::davide_varied(5, &mut Rng::seed_from(3));
        let b = ComputeNode::davide_varied(5, &mut Rng::seed_from(3));
        assert_eq!(a.power(NodeLoad::FULL), b.power(NodeLoad::FULL));
    }

    #[test]
    fn gflops_per_watt_band() {
        // ~22 TF at ~2 kW ⇒ ≈ 11 GF/W architectural — the design point
        // that put P100 systems at the top of Green500.
        let node = ComputeNode::davide(0);
        let eff = node.architectural_peak().0 / node.power(NodeLoad::FULL).0;
        assert!((9.0..13.0).contains(&eff), "GF/W = {eff}");
    }
}
