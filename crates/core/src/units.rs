//! Strongly-typed physical quantities used across the DAVIDE stack.
//!
//! All quantities are thin `f64` newtypes with the arithmetic that is
//! physically meaningful (e.g. `Watts * Seconds = Joules`). They exist to
//! keep hardware-model code honest: the compiler rejects adding a power to
//! a temperature.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw `f64` value in the canonical unit.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamp into `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// True when the value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }
    };
}

quantity!(
    /// Electrical or thermal power, in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy, in joules.
    Joules,
    "J"
);
quantity!(
    /// Wall-clock or simulated duration, in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Frequency, in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Temperature, in degrees Celsius.
    Celsius,
    "°C"
);
quantity!(
    /// Floating-point throughput, in GFLOP/s (double precision unless noted).
    Gflops,
    "GFlops"
);
quantity!(
    /// Data-movement bandwidth, in GB/s.
    GBps,
    "GB/s"
);
quantity!(
    /// Data volume, in bytes.
    Bytes,
    "B"
);
quantity!(
    /// Coolant mass-flow rate, in kg/s (≈ L/s for water).
    KgPerSec,
    "kg/s"
);

impl Watts {
    /// Kilowatt constructor.
    #[inline]
    pub fn from_kw(kw: f64) -> Self {
        Watts(kw * 1e3)
    }

    /// Value in kilowatts.
    #[inline]
    pub fn kw(self) -> f64 {
        self.0 / 1e3
    }

    /// Value in megawatts.
    #[inline]
    pub fn mw(self) -> f64 {
        self.0 / 1e6
    }
}

impl Joules {
    /// Kilowatt-hour constructor (1 kWh = 3.6 MJ).
    #[inline]
    pub fn from_kwh(kwh: f64) -> Self {
        Joules(kwh * 3.6e6)
    }

    /// Value in kilowatt-hours.
    #[inline]
    pub fn kwh(self) -> f64 {
        self.0 / 3.6e6
    }
}

impl Hertz {
    /// Gigahertz constructor.
    #[inline]
    pub fn from_ghz(ghz: f64) -> Self {
        Hertz(ghz * 1e9)
    }

    /// Value in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 / 1e9
    }

    /// Megahertz constructor.
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Hertz(mhz * 1e6)
    }

    /// Kilosamples-per-second constructor (for sampling rates).
    #[inline]
    pub fn from_ksps(ksps: f64) -> Self {
        Hertz(ksps * 1e3)
    }

    /// Sampling period for this rate.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds(1.0 / self.0)
    }
}

impl Gflops {
    /// Teraflops constructor.
    #[inline]
    pub fn from_tflops(tf: f64) -> Self {
        Gflops(tf * 1e3)
    }

    /// Value in teraflops.
    #[inline]
    pub fn tflops(self) -> f64 {
        self.0 / 1e3
    }

    /// Value in petaflops.
    #[inline]
    pub fn pflops(self) -> f64 {
        self.0 / 1e6
    }
}

impl Bytes {
    /// Gibibyte-free, decimal GB constructor.
    #[inline]
    pub fn from_gb(gb: f64) -> Self {
        Bytes(gb * 1e9)
    }

    /// Value in decimal gigabytes.
    #[inline]
    pub fn gb(self) -> f64 {
        self.0 / 1e9
    }
}

// Cross-type physics.

impl Mul<Seconds> for Watts {
    type Output = Joules;
    /// Energy = power × time.
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    /// Average power = energy / time.
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    /// Time to spend an energy budget at constant power.
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<GBps> for Bytes {
    type Output = Seconds;
    /// Transfer time = volume / bandwidth.
    #[inline]
    fn div(self, rhs: GBps) -> Seconds {
        Seconds(self.0 / (rhs.0 * 1e9))
    }
}

impl Mul<Seconds> for GBps {
    type Output = Bytes;
    /// Volume moved at a bandwidth over a duration.
    #[inline]
    fn mul(self, rhs: Seconds) -> Bytes {
        Bytes(self.0 * 1e9 * rhs.0)
    }
}

/// Energy efficiency, in GFLOP/s per watt — the Green500 metric.
#[inline]
pub fn gflops_per_watt(perf: Gflops, power: Watts) -> f64 {
    perf.0 / power.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let p = Watts(250.0) + Watts(50.0);
        assert_eq!(p, Watts(300.0));
        assert_eq!(p - Watts(100.0), Watts(200.0));
        assert_eq!(p * 2.0, Watts(600.0));
        assert_eq!(2.0 * p, Watts(600.0));
        assert_eq!(p / 3.0, Watts(100.0));
        assert!((p / Watts(150.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_physics() {
        let e = Watts(2000.0) * Seconds(3600.0);
        assert!((e.kwh() - 2.0).abs() < 1e-12);
        assert_eq!(e / Seconds(3600.0), Watts(2000.0));
        assert_eq!(e / Watts(2000.0), Seconds(3600.0));
    }

    #[test]
    fn transfer_physics() {
        // 80 GB over NVLink at 80 GB/s takes 1 s.
        let t = Bytes::from_gb(80.0) / GBps(80.0);
        assert!((t.0 - 1.0).abs() < 1e-12);
        let v = GBps(12.5) * Seconds(2.0);
        assert!((v.gb() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(Watts::from_kw(2.0), Watts(2000.0));
        assert!((Watts(1.54e7).mw() - 15.4).abs() < 1e-9);
        assert_eq!(Hertz::from_ghz(3.5).ghz(), 3.5);
        assert_eq!(Hertz::from_ksps(800.0), Hertz(800_000.0));
        assert!((Hertz(50.0).period().0 - 0.02).abs() < 1e-15);
        assert_eq!(Gflops::from_tflops(22.0).pflops(), 0.022);
        assert_eq!(Joules::from_kwh(1.0), Joules(3.6e6));
    }

    #[test]
    fn green500_metric() {
        // TaihuLight: 93 PFlops at 15.4 MW ≈ 6 GFlops/W.
        let eff = gflops_per_watt(Gflops(93.0e6), Watts(15.4e6));
        assert!((eff - 6.04).abs() < 0.05);
    }

    #[test]
    fn ordering_and_clamp() {
        assert!(Watts(1.0) < Watts(2.0));
        assert_eq!(Watts(5.0).clamp(Watts(0.0), Watts(3.0)), Watts(3.0));
        assert_eq!(Watts(-1.0).max(Watts::ZERO), Watts::ZERO);
        assert_eq!(Celsius(80.0).min(Celsius(45.0)), Celsius(45.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{:.1}", Watts(123.45)), "123.5 W");
        assert_eq!(format!("{}", Celsius(35.0)), "35 °C");
    }

    #[test]
    fn sum_iterates() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
    }
}
