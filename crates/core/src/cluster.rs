//! The full pilot system (§II-I): four OpenRack cabinets — three compute,
//! one storage/management/login — plus the dual-plane EDR fat-tree.
//!
//! Published envelope: 45 compute nodes, ~1 PFlops peak, < 100 kW total,
//! 2×10 Gb/s Ethernet uplinks, 30 L/min water per rack at 35 °C.

use crate::error::{CoreError, Result};
use crate::interconnect::FatTree;
use crate::node::{ComputeNode, NodeLoad};
use crate::rack::{Rack, RackRole};
use crate::units::{Gflops, Watts};
use serde::{Deserialize, Serialize};

/// The whole machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Human name of the installation.
    pub name: String,
    /// All racks (compute and service).
    pub racks: Vec<Rack>,
    /// The inter-node fabric.
    pub fabric: FatTree,
}

impl Cluster {
    /// The D.A.V.I.D.E. pilot: 3 compute racks of 15 nodes + 1 service
    /// rack, dual-plane EDR fat-tree.
    pub fn davide() -> Self {
        let racks = vec![
            Rack::davide_compute(0, 15),
            Rack::davide_compute(1, 15),
            Rack::davide_compute(2, 15),
            Rack::davide_service(3),
        ];
        Cluster {
            name: "D.A.V.I.D.E.".to_string(),
            racks,
            fabric: FatTree::davide(45),
        }
    }

    /// A small test cluster with `nodes` compute nodes in one rack.
    pub fn small(nodes: u32) -> Self {
        Cluster {
            name: format!("test-{nodes}"),
            racks: vec![Rack::davide_compute(0, nodes)],
            fabric: FatTree::davide(nodes),
        }
    }

    /// Total compute nodes.
    pub fn node_count(&self) -> usize {
        self.racks.iter().map(|r| r.nodes.len()).sum()
    }

    /// Iterate over all compute nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &ComputeNode> {
        self.racks.iter().flat_map(|r| r.nodes.iter())
    }

    /// Mutable iterator over all compute nodes.
    pub fn nodes_mut(&mut self) -> impl Iterator<Item = &mut ComputeNode> {
        self.racks.iter_mut().flat_map(|r| r.nodes.iter_mut())
    }

    /// Find a node by id.
    pub fn node(&self, id: u32) -> Result<&ComputeNode> {
        self.nodes()
            .find(|n| n.id == id)
            .ok_or_else(|| CoreError::NoSuchResource(format!("node {id}")))
    }

    /// Find a node by id, mutably.
    pub fn node_mut(&mut self, id: u32) -> Result<&mut ComputeNode> {
        self.racks
            .iter_mut()
            .flat_map(|r| r.nodes.iter_mut())
            .find(|n| n.id == id)
            .ok_or_else(|| CoreError::NoSuchResource(format!("node {id}")))
    }

    /// Architectural peak of the machine.
    pub fn peak(&self) -> Gflops {
        self.nodes().map(|n| n.architectural_peak()).sum()
    }

    /// IT power at a uniform node load.
    pub fn it_power(&self, load: NodeLoad) -> Watts {
        self.racks.iter().map(|r| r.it_power(load)).sum()
    }

    /// Facility power (with conversion, fans and pumps) at a uniform load.
    pub fn facility_power(&self, load: NodeLoad) -> Watts {
        self.racks.iter().map(|r| r.facility_power(load)).sum()
    }

    /// Peak energy efficiency in GFlops/W at the facility meter.
    pub fn gflops_per_watt(&self) -> f64 {
        self.peak().0 / self.facility_power(NodeLoad::FULL).0
    }

    /// Validate the published system constraints: every rack within its
    /// 32 kW feed and every cooling loop legal.
    pub fn validate(&self) -> Result<()> {
        for rack in &self.racks {
            rack.cooling.validate()?;
            rack.check_budget(NodeLoad::FULL)?;
        }
        Ok(())
    }

    /// Compute racks only.
    pub fn compute_racks(&self) -> impl Iterator<Item = &Rack> {
        self.racks.iter().filter(|r| r.role == RackRole::Compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn davide_pilot_published_envelope() {
        let c = Cluster::davide();
        assert_eq!(c.node_count(), 45);
        assert_eq!(c.racks.len(), 4);
        assert_eq!(c.compute_racks().count(), 3);
        // §II-I: ~1 PFlops peak.
        let peak = c.peak();
        assert!(
            (0.9..=1.1).contains(&peak.pflops()),
            "peak {peak} should be ≈1 PFlops"
        );
        // §II-I: total power below 100 kW.
        let p = c.facility_power(NodeLoad::FULL);
        assert!(p < Watts::from_kw(100.0), "facility power {p} ≥ 100 kW");
        c.validate().expect("pilot system is self-consistent");
    }

    #[test]
    fn efficiency_in_green500_contender_band() {
        // P100-based systems of the era delivered ~7–11 GF/W at the meter.
        let c = Cluster::davide();
        let eff = c.gflops_per_watt();
        assert!((7.0..=13.0).contains(&eff), "GF/W = {eff}");
    }

    #[test]
    fn node_lookup() {
        let mut c = Cluster::davide();
        assert!(c.node(0).is_ok());
        assert!(c.node(104).is_ok(), "rack 1, node 4");
        assert!(c.node(9999).is_err());
        let n = c.node_mut(205).unwrap();
        n.set_pstate_all(0);
        assert_eq!(c.node(205).unwrap().cpus[0].pstate(), 0);
    }

    #[test]
    fn small_cluster_for_tests() {
        let c = Cluster::small(4);
        assert_eq!(c.node_count(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn power_scales_with_load() {
        let c = Cluster::davide();
        let idle = c.it_power(NodeLoad::IDLE);
        let full = c.it_power(NodeLoad::FULL);
        assert!(idle < full * 0.4);
        assert!(c.facility_power(NodeLoad::FULL) > full, "conversion loss");
    }
}
