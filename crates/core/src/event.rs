//! Discrete-event simulation engine.
//!
//! A minimal, deterministic event queue: events are ordered by
//! `(time, sequence)` where the sequence number is the insertion order, so
//! simultaneous events fire in FIFO order and runs are reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event with its scheduled firing time.
#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
///
/// ```
/// use davide_core::event::EventQueue;
/// use davide_core::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// # Panics
    /// In debug builds, panics if `time` is in the past — the engine does
    /// not support retro-causality.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        debug_assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Pop the earliest event, advancing the clock to its firing time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.payload)
        })
    }

    /// Peek at the firing time of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drain and fire every event up to and including `horizon`, calling
    /// `handler(now, event)`. Events the handler schedules inside the
    /// horizon are fired too. Returns the number of events processed.
    pub fn run_until(&mut self, horizon: SimTime, mut handler: impl FnMut(&mut Self, E)) -> usize
    where
        E: Sized,
    {
        let mut fired = 0;
        while let Some(t) = self.peek_time() {
            if t > horizon {
                break;
            }
            let (_, e) = self.pop().expect("peeked event must exist");
            handler(self, e);
            fired += 1;
        }
        if self.now < horizon {
            self.now = horizon;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn run_until_respects_horizon_and_reentrancy() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(10), 99u32);
        let mut seen = Vec::new();
        let fired = q.run_until(SimTime::from_secs(5), |q, e| {
            seen.push(e);
            if e < 3 {
                // Handler schedules follow-ups inside the horizon.
                let t = q.now() + SimDuration::from_secs(1);
                q.schedule(t, e + 1);
            }
        });
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(fired, 3);
        assert_eq!(q.now(), SimTime::from_secs(5));
        assert_eq!(q.len(), 1, "event beyond horizon still pending");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    #[cfg(debug_assertions)]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }
}
