//! IBM POWER8+ (with NVLink) socket model.
//!
//! Performance and power envelopes follow §II-A of the paper: the
//! D.A.V.I.D.E. part is the 8-core POWER8+, 8-way SMT (64 hardware
//! threads/socket), four DP FP pipelines per core (8 DP flops/cycle with
//! FMA), 64 kB L1D / 32 kB L1I per core.

use crate::dvfs::{power8_table, DvfsTable};
use crate::error::{CoreError, Result};
use crate::units::{Gflops, Watts};
use serde::{Deserialize, Serialize};

/// Static description of a POWER8-class socket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing/model name.
    pub name: String,
    /// Physical cores per socket.
    pub cores: u32,
    /// SMT ways per core (POWER8: 8).
    pub smt: u32,
    /// Double-precision flops per core per cycle (4 DP pipes × FMA = 8).
    pub dp_flops_per_cycle: u32,
    /// Socket idle (uncore + leakage) power.
    pub idle_power: Watts,
    /// Socket thermal design power at the nominal operating point.
    pub tdp: Watts,
    /// DVFS ladder.
    pub dvfs: DvfsTable,
}

impl CpuSpec {
    /// The POWER8+ 8-core part used in the D.A.V.I.D.E. compute node.
    pub fn power8plus() -> Self {
        CpuSpec {
            name: "IBM POWER8+ w/ NVLink (8-core)".to_string(),
            cores: 8,
            smt: 8,
            dp_flops_per_cycle: 8,
            idle_power: Watts(45.0),
            tdp: Watts(190.0),
            dvfs: power8_table(),
        }
    }

    /// Hardware threads exposed by the socket.
    pub fn hw_threads(&self) -> u32 {
        self.cores * self.smt
    }

    /// Peak DP throughput at a given ladder index with all cores active.
    pub fn peak_gflops_at(&self, pstate_idx: usize) -> Gflops {
        let f = self.dvfs.state(pstate_idx).freq;
        Gflops(self.cores as f64 * self.dp_flops_per_cycle as f64 * f.ghz())
    }

    /// Peak DP throughput at the nominal operating point.
    pub fn peak_gflops(&self) -> Gflops {
        self.peak_gflops_at(self.dvfs.nominal_index())
    }
}

/// Runtime state of one socket: its operating point, how many cores are
/// powered, and the load it is running.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuModel {
    /// Immutable hardware description.
    pub spec: CpuSpec,
    pstate: usize,
    active_cores: u32,
}

impl CpuModel {
    /// New socket at its nominal operating point with all cores active.
    pub fn new(spec: CpuSpec) -> Self {
        let pstate = spec.dvfs.nominal_index();
        let active_cores = spec.cores;
        CpuModel {
            spec,
            pstate,
            active_cores,
        }
    }

    /// Current ladder index.
    #[inline]
    pub fn pstate(&self) -> usize {
        self.pstate
    }

    /// Set the operating point.
    pub fn set_pstate(&mut self, idx: usize) -> Result<()> {
        if idx >= self.spec.dvfs.len() {
            return Err(CoreError::InvalidConfig(format!(
                "p-state {idx} out of range (table has {})",
                self.spec.dvfs.len()
            )));
        }
        self.pstate = idx;
        Ok(())
    }

    /// Step one operating point down (throttle). Returns the new index.
    pub fn throttle(&mut self) -> usize {
        self.pstate = self.spec.dvfs.step_down(self.pstate);
        self.pstate
    }

    /// Step one operating point up (unthrottle). Returns the new index.
    pub fn unthrottle(&mut self) -> usize {
        self.pstate = self.spec.dvfs.step_up(self.pstate);
        self.pstate
    }

    /// Currently powered cores.
    #[inline]
    pub fn active_cores(&self) -> u32 {
        self.active_cores
    }

    /// Energy-proportionality API (§IV): power down unused cores.
    /// At least one core must stay on.
    pub fn set_active_cores(&mut self, n: u32) -> Result<()> {
        if n == 0 || n > self.spec.cores {
            return Err(CoreError::InvalidConfig(format!(
                "active cores must be in 1..={}, got {n}",
                self.spec.cores
            )));
        }
        self.active_cores = n;
        Ok(())
    }

    /// Instantaneous socket power at utilisation `util ∈ [0,1]` of the
    /// active cores.
    ///
    /// Model: `P = P_idle·g + (TDP − P_idle)·(cores_on/cores)·util·k_dvfs`
    /// where `g` scales a third of the idle power with the gated-core
    /// fraction (uncore stays on) and `k_dvfs` is the CMOS `V²f` factor.
    pub fn power(&self, util: f64) -> Watts {
        let util = util.clamp(0.0, 1.0);
        let core_frac = self.active_cores as f64 / self.spec.cores as f64;
        let idle = self.spec.idle_power * (2.0 / 3.0 + core_frac / 3.0);
        let dynamic_span = self.spec.tdp - self.spec.idle_power;
        let k = self.spec.dvfs.dynamic_power_factor(self.pstate);
        idle + dynamic_span * (core_frac * util * k)
    }

    /// Achievable DP throughput at utilisation `util` — linear in active
    /// cores, frequency and utilisation (compute-bound limit).
    pub fn gflops(&self, util: f64) -> Gflops {
        let util = util.clamp(0.0, 1.0);
        let f = self.spec.dvfs.state(self.pstate).freq;
        Gflops(self.active_cores as f64 * self.spec.dp_flops_per_cycle as f64 * f.ghz() * util)
    }

    /// Peak throughput in the current configuration.
    pub fn peak_gflops(&self) -> Gflops {
        self.gflops(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power8_published_envelope() {
        let spec = CpuSpec::power8plus();
        assert_eq!(spec.hw_threads(), 64);
        // 8 cores × 8 flops/cycle × 3.26 GHz ≈ 209 GFlops/socket nominal.
        let peak = spec.peak_gflops();
        assert!((peak.0 - 208.6).abs() < 1.0, "peak={peak}");
        // Two sockets contribute ≈ 0.42 TF of the node's 22 TF.
        assert!(2.0 * peak.tflops() < 0.5);
    }

    #[test]
    fn power_monotone_in_util_and_pstate() {
        let mut cpu = CpuModel::new(CpuSpec::power8plus());
        let p_idle = cpu.power(0.0);
        let p_half = cpu.power(0.5);
        let p_full = cpu.power(1.0);
        assert!(p_idle < p_half && p_half < p_full);
        // Full power at nominal equals TDP.
        assert!((p_full.0 - 190.0).abs() < 1e-9, "p_full={p_full}");
        cpu.throttle();
        assert!(cpu.power(1.0) < p_full);
    }

    #[test]
    fn throttle_walks_ladder_and_clamps() {
        let mut cpu = CpuModel::new(CpuSpec::power8plus());
        let start = cpu.pstate();
        for _ in 0..100 {
            cpu.throttle();
        }
        assert_eq!(cpu.pstate(), 0);
        for _ in 0..100 {
            cpu.unthrottle();
        }
        assert_eq!(cpu.pstate(), cpu.spec.dvfs.len() - 1);
        cpu.set_pstate(start).unwrap();
        assert_eq!(cpu.pstate(), start);
        assert!(cpu.set_pstate(99).is_err());
    }

    #[test]
    fn core_gating_saves_power_and_perf() {
        let mut cpu = CpuModel::new(CpuSpec::power8plus());
        let p8 = cpu.power(1.0);
        let g8 = cpu.gflops(1.0);
        cpu.set_active_cores(4).unwrap();
        let p4 = cpu.power(1.0);
        let g4 = cpu.gflops(1.0);
        assert!(p4 < p8);
        assert!((g4.0 - g8.0 / 2.0).abs() < 1e-9);
        assert!(cpu.set_active_cores(0).is_err());
        assert!(cpu.set_active_cores(9).is_err());
    }

    #[test]
    fn utilisation_is_clamped() {
        let cpu = CpuModel::new(CpuSpec::power8plus());
        assert_eq!(cpu.power(1.5), cpu.power(1.0));
        assert_eq!(cpu.power(-0.5), cpu.power(0.0));
        assert_eq!(cpu.gflops(2.0), cpu.gflops(1.0));
    }

    #[test]
    fn idle_power_dominated_by_uncore() {
        let mut cpu = CpuModel::new(CpuSpec::power8plus());
        let idle_all = cpu.power(0.0);
        cpu.set_active_cores(1).unwrap();
        let idle_one = cpu.power(0.0);
        // Gating cores saves some idle power but uncore remains.
        assert!(idle_one < idle_all);
        assert!(idle_one > idle_all * 0.6);
    }
}
