//! POWER8 Centaur-buffered memory subsystem model.
//!
//! §II-A of the paper: each memory module hosts a Centaur chip with 16 MB
//! of eDRAM acting as an L4 cache; each Centaur connects to the socket via
//! three 9.6 GB/s links (28.8 GB/s per Centaur, 2:1 read:write), up to
//! eight Centaurs per socket for 1 TB capacity, 128 MB aggregate L4, and
//! 230 GB/s sustained bandwidth in and out of the processor.

use crate::error::{CoreError, Result};
use crate::units::{Bytes, GBps, Watts};
use serde::{Deserialize, Serialize};

/// Static description of one socket's memory subsystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Centaur buffer chips attached to the socket.
    pub centaurs: u32,
    /// High-speed links per Centaur (POWER8: 3).
    pub links_per_centaur: u32,
    /// Bandwidth of each link.
    pub link_bandwidth: GBps,
    /// eDRAM L4 per Centaur.
    pub l4_per_centaur: Bytes,
    /// DRAM capacity per Centaur.
    pub capacity_per_centaur: Bytes,
    /// Sustained-fraction of raw bandwidth achievable by the core
    /// (calibrated so 8 Centaurs sustain 230 GB/s).
    pub sustained_fraction: f64,
    /// Static power per Centaur (buffer + eDRAM refresh).
    pub centaur_static_power: Watts,
    /// DRAM background power per Centaur's DIMMs.
    pub dram_static_power: Watts,
    /// Dynamic power per GB/s actually moved.
    pub dynamic_power_per_gbps: Watts,
}

impl MemorySpec {
    /// D.A.V.I.D.E. node configuration: 4 Centaurs per socket (the
    /// Garrison planar), 32 GB per Centaur → 128 GB/socket.
    pub fn davide_socket() -> Self {
        MemorySpec {
            centaurs: 4,
            links_per_centaur: 3,
            link_bandwidth: GBps(9.6),
            l4_per_centaur: Bytes(16.0 * 1024.0 * 1024.0),
            capacity_per_centaur: Bytes::from_gb(32.0),
            sustained_fraction: 230.0 / (8.0 * 3.0 * 9.6),
            centaur_static_power: Watts(12.0),
            dram_static_power: Watts(10.0),
            dynamic_power_per_gbps: Watts(0.15),
        }
    }

    /// A fully-populated socket (8 Centaurs, 1 TB) — the architectural
    /// maximum quoted by the paper.
    pub fn power8_max() -> Self {
        let mut s = Self::davide_socket();
        s.centaurs = 8;
        s.capacity_per_centaur = Bytes::from_gb(128.0);
        s
    }

    /// Raw aggregate link bandwidth.
    pub fn raw_bandwidth(&self) -> GBps {
        GBps(self.centaurs as f64 * self.links_per_centaur as f64 * self.link_bandwidth.0)
    }

    /// Sustained bandwidth visible to the cores.
    pub fn sustained_bandwidth(&self) -> GBps {
        self.raw_bandwidth() * self.sustained_fraction
    }

    /// Total DRAM capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity_per_centaur * self.centaurs as f64
    }

    /// Aggregate L4 (eDRAM) capacity.
    pub fn l4_capacity(&self) -> Bytes {
        self.l4_per_centaur * self.centaurs as f64
    }
}

/// Runtime state: how many Centaur groups are active (memory gating for
/// energy proportionality) and the achieved bandwidth utilisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Immutable hardware description.
    pub spec: MemorySpec,
    active_centaurs: u32,
}

impl MemoryModel {
    /// All Centaurs active.
    pub fn new(spec: MemorySpec) -> Self {
        let active_centaurs = spec.centaurs;
        MemoryModel {
            spec,
            active_centaurs,
        }
    }

    /// Currently powered Centaurs.
    #[inline]
    pub fn active_centaurs(&self) -> u32 {
        self.active_centaurs
    }

    /// Energy-proportionality API: power down memory channels the job does
    /// not need. At least one Centaur must stay on.
    pub fn set_active_centaurs(&mut self, n: u32) -> Result<()> {
        if n == 0 || n > self.spec.centaurs {
            return Err(CoreError::InvalidConfig(format!(
                "active Centaurs must be in 1..={}, got {n}",
                self.spec.centaurs
            )));
        }
        self.active_centaurs = n;
        Ok(())
    }

    /// Sustained bandwidth available in the current configuration.
    pub fn bandwidth(&self) -> GBps {
        GBps(
            self.active_centaurs as f64
                * self.spec.links_per_centaur as f64
                * self.spec.link_bandwidth.0
                * self.spec.sustained_fraction,
        )
    }

    /// Usable capacity in the current configuration.
    pub fn capacity(&self) -> Bytes {
        self.spec.capacity_per_centaur * self.active_centaurs as f64
    }

    /// Instantaneous power when moving data at `bw_util ∈ [0,1]` of the
    /// available sustained bandwidth.
    pub fn power(&self, bw_util: f64) -> Watts {
        let bw_util = bw_util.clamp(0.0, 1.0);
        let static_p = (self.spec.centaur_static_power + self.spec.dram_static_power)
            * self.active_centaurs as f64;
        let moved = self.bandwidth().0 * bw_util;
        static_p + self.spec.dynamic_power_per_gbps * moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_bandwidth_and_capacity() {
        let max = MemorySpec::power8_max();
        // 8 Centaurs × 3 links × 9.6 GB/s = 230.4 GB/s raw; paper quotes
        // 230 GB/s sustained and 28.8 GB/s per Centaur.
        assert!((max.raw_bandwidth().0 - 230.4).abs() < 0.01);
        assert!((max.sustained_bandwidth().0 - 230.0).abs() < 1.0);
        assert!((max.capacity().gb() - 1024.0).abs() < 1.0, "1 TB/socket");
        // 128 MB aggregate L4.
        assert!((max.l4_capacity().0 - 128.0 * 1024.0 * 1024.0).abs() < 1.0);
    }

    #[test]
    fn davide_socket_is_quarter_terabyte_node() {
        let s = MemorySpec::davide_socket();
        assert!((s.capacity().gb() - 128.0).abs() < 0.1);
        let per_centaur = GBps(s.links_per_centaur as f64 * s.link_bandwidth.0);
        assert!((per_centaur.0 - 28.8).abs() < 1e-9);
    }

    #[test]
    fn gating_scales_bandwidth_capacity_power() {
        let mut m = MemoryModel::new(MemorySpec::davide_socket());
        let bw4 = m.bandwidth();
        let p4 = m.power(0.5);
        m.set_active_centaurs(2).unwrap();
        assert!((m.bandwidth().0 - bw4.0 / 2.0).abs() < 1e-9);
        assert!((m.capacity().gb() - 64.0).abs() < 0.1);
        assert!(m.power(0.5) < p4);
        assert!(m.set_active_centaurs(0).is_err());
        assert!(m.set_active_centaurs(5).is_err());
    }

    #[test]
    fn power_monotone_in_traffic() {
        let m = MemoryModel::new(MemorySpec::davide_socket());
        assert!(m.power(0.0) < m.power(0.5));
        assert!(m.power(0.5) < m.power(1.0));
        assert_eq!(m.power(2.0), m.power(1.0), "clamped");
    }

    #[test]
    fn idle_memory_power_reasonable() {
        // A populated socket's memory should idle in the tens of watts.
        let m = MemoryModel::new(MemorySpec::davide_socket());
        let p = m.power(0.0);
        assert!(p > Watts(40.0) && p < Watts(150.0), "p={p}");
    }
}
