//! OpenRack-form-factor rack model (§II-F, §III).
//!
//! A D.A.V.I.D.E. rack consolidates: a shared PSU power bank (≤ 32 kW), a
//! rear wall of heavy-duty 5U fans, a redundant management controller, and
//! fanless 21-inch compute sleds fed from a copper busbar.

use crate::cooling::CoolingLoop;
use crate::error::{CoreError, Result};
use crate::node::{ComputeNode, NodeLoad};
use crate::psu::PsuBank;
use crate::units::{Celsius, Watts};
use serde::{Deserialize, Serialize};

/// What a rack slot is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RackRole {
    /// Compute sleds.
    Compute,
    /// Storage, management and login nodes.
    Service,
}

/// One OpenRack cabinet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rack {
    /// Rack identifier.
    pub id: u32,
    /// Role of this rack in the pilot system.
    pub role: RackRole,
    /// Compute sleds installed.
    pub nodes: Vec<ComputeNode>,
    /// Consolidated AC/DC power bank.
    pub psu: PsuBank,
    /// Hybrid cooling loop.
    pub cooling: CoolingLoop,
    /// Power feed limit per rack (§II-I: 32 kW line).
    pub power_budget: Watts,
    /// Rack weight in kg (§II-I: 800 kg).
    pub weight_kg: f64,
}

impl Rack {
    /// A D.A.V.I.D.E. compute rack holding `n` nodes.
    pub fn davide_compute(id: u32, n: u32) -> Self {
        let nodes = (0..n).map(|i| ComputeNode::davide(id * 100 + i)).collect();
        Rack {
            id,
            role: RackRole::Compute,
            nodes,
            psu: PsuBank::openrack_32kw(),
            cooling: CoolingLoop::davide_nominal(),
            power_budget: Watts::from_kw(32.0),
            weight_kg: 800.0,
        }
    }

    /// The storage/management/login rack.
    pub fn davide_service(id: u32) -> Self {
        Rack {
            id,
            role: RackRole::Service,
            nodes: Vec::new(),
            psu: PsuBank::openrack_32kw(),
            cooling: CoolingLoop::davide_nominal(),
            power_budget: Watts::from_kw(32.0),
            weight_kg: 800.0,
        }
    }

    /// DC power drawn by the IT equipment at a uniform `load`.
    pub fn it_power(&self, load: NodeLoad) -> Watts {
        let compute: Watts = self.nodes.iter().map(|n| n.power(load)).sum();
        let service = if self.role == RackRole::Service {
            // Storage arrays, management and login nodes.
            Watts::from_kw(6.0)
        } else {
            Watts::ZERO
        };
        compute + service
    }

    /// Facility-side AC power: IT through the PSU bank, plus fans and
    /// pumps for the air-side heat.
    pub fn facility_power(&self, load: NodeLoad) -> Watts {
        let it = self.it_power(load);
        let ac_in = self.psu.input_power(it);
        let fans = self.cooling.fan_power(it, self.power_budget);
        let pumps = Watts(120.0);
        ac_in + fans + pumps
    }

    /// Check the 32 kW feed can carry the load.
    pub fn check_budget(&self, load: NodeLoad) -> Result<()> {
        let f = self.facility_power(load);
        if f > self.power_budget {
            return Err(CoreError::BudgetExceeded {
                what: format!("rack {} power feed", self.id),
                requested: f.0,
                available: self.power_budget.0,
            });
        }
        Ok(())
    }

    /// Coolant return temperature at a given load.
    pub fn coolant_return(&self, load: NodeLoad) -> Celsius {
        self.cooling.coolant_return(self.it_power(load))
    }

    /// Expected PSU-unit failures per year (reliability claim of §II-F).
    pub fn psu_failures_per_year(&self) -> f64 {
        self.psu.expected_failures_per_year()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_node_rack_fits_32kw() {
        let rack = Rack::davide_compute(0, 15);
        // 15 × ~2 kW ≈ 30 kW IT; with conversion losses and fans it must
        // still fit the 32 kW feed (the design constraint of §II-I).
        let f = rack.facility_power(NodeLoad::FULL);
        assert!(
            f <= Watts::from_kw(32.0),
            "facility power {f} exceeds the rack feed"
        );
        assert!(rack.check_budget(NodeLoad::FULL).is_ok());
    }

    #[test]
    fn overfull_rack_trips_budget() {
        let rack = Rack::davide_compute(0, 18);
        assert!(rack.check_budget(NodeLoad::FULL).is_err());
    }

    #[test]
    fn idle_rack_power_is_modest() {
        let rack = Rack::davide_compute(0, 15);
        let idle = rack.facility_power(NodeLoad::IDLE);
        let full = rack.facility_power(NodeLoad::FULL);
        assert!(idle < full * 0.35, "idle={idle} full={full}");
    }

    #[test]
    fn coolant_return_within_facility_limits() {
        let rack = Rack::davide_compute(0, 15);
        let ret = rack.coolant_return(NodeLoad::FULL);
        assert!(ret < Celsius(55.0), "return={ret}");
        assert!(rack
            .cooling
            .facility_return_ok(rack.it_power(NodeLoad::FULL)));
    }

    #[test]
    fn service_rack_has_no_compute() {
        let rack = Rack::davide_service(3);
        assert!(rack.nodes.is_empty());
        assert!(rack.it_power(NodeLoad::FULL) > Watts::ZERO);
        assert_eq!(rack.role, RackRole::Service);
    }

    #[test]
    fn consolidated_psu_failures_below_per_server() {
        let rack = Rack::davide_compute(0, 15);
        let per_server_units = 2.0 * 15.0;
        let per_server_failures = per_server_units * 0.04;
        assert!(rack.psu_failures_per_year() < per_server_failures);
    }
}
