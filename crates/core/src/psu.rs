//! AC/DC power conversion models: per-server PSUs versus the OpenRack
//! consolidated power bank.
//!
//! §II-F of the paper claims that moving AC/DC conversion from two PSUs
//! per node to a few rack-level units (i) removes high-failure-rate
//! components, (ii) saves up to 5 % of total power through more efficient
//! conversion, and (iii) dramatically improves the quality (noise) of the
//! power signal, enabling >1 kHz power sampling on the DC backplane.

use crate::units::Watts;
use serde::{Deserialize, Serialize};

/// An AC→DC power supply unit with a load-dependent efficiency curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsuSpec {
    /// Rated (maximum continuous) output power.
    pub rated: Watts,
    /// Peak conversion efficiency, reached around 50 % load.
    pub eta_peak: f64,
    /// Efficiency at 10 % load (light-load droop).
    pub eta_light: f64,
    /// Output ripple+noise at full load, as a fraction of output (RMS).
    pub ripple_fraction: f64,
    /// Annualised failure rate (for the reliability comparison).
    pub annual_failure_rate: f64,
}

impl PsuSpec {
    /// A commodity 1.1 kW server PSU (80 PLUS Gold-class): two of these
    /// per node in the conventional design.
    pub fn server_1100w() -> Self {
        PsuSpec {
            rated: Watts(1100.0),
            eta_peak: 0.92,
            eta_light: 0.80,
            ripple_fraction: 0.010,
            annual_failure_rate: 0.04,
        }
    }

    /// An OpenRack power-bank shelf unit (3 kW, Titanium-class, with
    /// tight regulation on the shared 12 V busbar).
    pub fn openrack_3kw() -> Self {
        PsuSpec {
            rated: Watts(3000.0),
            eta_peak: 0.96,
            eta_light: 0.90,
            ripple_fraction: 0.002,
            annual_failure_rate: 0.03,
        }
    }

    /// Conversion efficiency at output load `out` (clamped to rated).
    ///
    /// Parabolic-in-load model anchored at (10 %, η_light) and
    /// (50 %, η_peak) with a mild droop toward full load — the standard
    /// 80 PLUS curve shape.
    pub fn efficiency(&self, out: Watts) -> f64 {
        let l = (out.0 / self.rated.0).clamp(0.0, 1.0);
        if l <= 0.0 {
            return self.eta_light;
        }
        // η(l) = η_peak − a·(l − 0.5)²  with a fixed by η(0.1).
        let a = (self.eta_peak - self.eta_light) / (0.4 * 0.4);
        let eta = self.eta_peak - a * (l - 0.5).powi(2);
        // Droop toward full load is gentler than toward light load.
        let eta = if l > 0.5 {
            self.eta_peak - 0.35 * a * (l - 0.5).powi(2)
        } else {
            eta
        };
        eta.clamp(0.5, 1.0)
    }

    /// AC input power drawn to deliver `out` at the DC rail.
    pub fn input_power(&self, out: Watts) -> Watts {
        if out.0 <= 0.0 {
            // Standby/no-load consumption: ~1 % of rated.
            return self.rated * 0.01;
        }
        Watts(out.0 / self.efficiency(out))
    }

    /// RMS output noise at load `out` — ripple scales with load current.
    pub fn output_noise_rms(&self, out: Watts) -> Watts {
        let l = (out.0 / self.rated.0).clamp(0.0, 1.0);
        Watts(self.rated.0 * self.ripple_fraction * (0.3 + 0.7 * l))
    }
}

/// A bank of identical PSUs sharing a load, with optional N+1 redundancy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PsuBank {
    /// The unit model.
    pub spec: PsuSpec,
    /// Number of installed units.
    pub units: u32,
    /// Redundant units held for failover (included in `units`).
    pub redundant: u32,
    /// When true, the bank load-shedds: it activates only as many units
    /// as needed to run the active ones near their efficiency sweet spot
    /// (rack-level management can do this; per-server PSUs cannot).
    pub load_shedding: bool,
}

impl PsuBank {
    /// The conventional design: two PSUs per server, both always active
    /// and sharing the load (1+1 redundancy by load sharing — neither
    /// unit can be shed, which is exactly why they run at light load).
    pub fn per_server_pair() -> Self {
        PsuBank {
            spec: PsuSpec::server_1100w(),
            units: 2,
            redundant: 0,
            load_shedding: false,
        }
    }

    /// The OpenRack power bank sized for a 32 kW rack + 1 redundant shelf
    /// unit, with load shedding under rack management control.
    pub fn openrack_32kw() -> Self {
        PsuBank {
            spec: PsuSpec::openrack_3kw(),
            units: 12,
            redundant: 1,
            // The remote management controller optimises active units.
            load_shedding: true,
        }
    }

    /// Maximum deliverable power with redundancy honoured.
    pub fn capacity(&self) -> Watts {
        self.spec.rated * (self.units - self.redundant) as f64
    }

    /// Number of units actively converting for a given output load.
    pub fn active_units(&self, out: Watts) -> u32 {
        let usable = self.units - self.redundant;
        if !self.load_shedding {
            return usable;
        }
        // Activate the fewest units that keep per-unit load ≤ 85 %.
        let per_unit_target = self.spec.rated.0 * 0.85;
        let needed = (out.0 / per_unit_target).ceil().max(1.0) as u32;
        needed.min(usable)
    }

    /// Total AC input power to deliver `out` DC, with the load spread
    /// evenly over the active units.
    pub fn input_power(&self, out: Watts) -> Watts {
        let active = self.active_units(out);
        let share = out / active as f64;
        let per_unit_in = self.spec.input_power(share);
        let idle_units = self.units - self.redundant - active;
        // Inactive (shed) units draw standby power only.
        per_unit_in * active as f64 + self.spec.rated * 0.005 * idle_units as f64
    }

    /// Whole-bank conversion efficiency at output load `out`.
    pub fn efficiency(&self, out: Watts) -> f64 {
        if out.0 <= 0.0 {
            return 0.0;
        }
        out.0 / self.input_power(out).0
    }

    /// RMS noise on the shared output rail; independent supplies add in
    /// quadrature.
    pub fn output_noise_rms(&self, out: Watts) -> Watts {
        let active = self.active_units(out) as f64;
        let share = out / active;
        Watts(self.spec.output_noise_rms(share).0 * active.sqrt())
    }

    /// Expected unit failures per year across the bank.
    pub fn expected_failures_per_year(&self) -> f64 {
        self.units as f64 * self.spec.annual_failure_rate
    }
}

/// Comparison of rack power architecture: `nodes` servers at `per_node`
/// DC draw each, conventional vs OpenRack. Returns
/// `(conventional_ac, openrack_ac, saving_fraction)`.
pub fn rack_conversion_comparison(nodes: u32, per_node: Watts) -> (Watts, Watts, f64) {
    let conventional_bank = PsuBank::per_server_pair();
    let conventional: Watts = Watts(conventional_bank.input_power(per_node).0 * nodes as f64);
    let rack_bank = PsuBank::openrack_32kw();
    let openrack = rack_bank.input_power(per_node * nodes as f64);
    let saving = (conventional.0 - openrack.0) / conventional.0;
    (conventional, openrack, saving)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_curve_shape() {
        let psu = PsuSpec::server_1100w();
        let light = psu.efficiency(Watts(110.0));
        let mid = psu.efficiency(Watts(550.0));
        let full = psu.efficiency(Watts(1100.0));
        assert!((light - 0.80).abs() < 1e-9, "anchored at 10% load");
        assert!((mid - 0.92).abs() < 1e-9, "peak at 50% load");
        assert!(full < mid && full > light, "gentle droop to full load");
    }

    #[test]
    fn input_power_includes_loss() {
        let psu = PsuSpec::openrack_3kw();
        let input = psu.input_power(Watts(1500.0));
        assert!((input.0 - 1500.0 / 0.96).abs() < 1e-6);
        // No-load standby is small but nonzero.
        assert!(psu.input_power(Watts::ZERO).0 > 0.0);
    }

    #[test]
    fn per_server_pair_runs_at_light_load() {
        // A 2 kW node on 2×1.1 kW PSUs puts each at ~91% — but a typical
        // partially-loaded node (1 kW) puts each PSU at 45% where the
        // commodity curve is decent; at very light load it degrades.
        let pair = PsuBank::per_server_pair();
        assert_eq!(pair.active_units(Watts(400.0)), 2, "no shedding");
        let eta_light = pair.efficiency(Watts(200.0));
        let eta_heavy = pair.efficiency(Watts(1800.0));
        assert!(eta_light < eta_heavy);
    }

    #[test]
    fn openrack_sheds_load() {
        let bank = PsuBank::openrack_32kw();
        assert!(bank.active_units(Watts(2000.0)) <= 2);
        assert_eq!(bank.active_units(Watts(30000.0)), 11);
        assert!((bank.capacity().kw() - 33.0).abs() < 1e-9);
    }

    #[test]
    fn paper_claim_up_to_5pct_saving() {
        // At moderate rack load the consolidation saving should be in the
        // 2–8 % band, covering the paper's "up to 5 %".
        for &per_node in &[800.0, 1200.0, 1600.0, 2000.0] {
            let (conv, or, saving) = rack_conversion_comparison(15, Watts(per_node));
            assert!(or < conv, "OpenRack must win at {per_node} W/node");
            assert!(
                (0.01..0.10).contains(&saving),
                "saving {saving:.3} out of band at {per_node} W/node"
            );
        }
    }

    #[test]
    fn noise_improvement_enables_fast_sampling() {
        // §II-F: signal quality improves dramatically with rack-level
        // conversion; require ≥3× lower RMS noise per node's measurement.
        let node_load = Watts(1500.0);
        let pair = PsuBank::per_server_pair();
        let rack = PsuBank::openrack_32kw();
        let pair_noise = pair.output_noise_rms(node_load);
        // Rack busbar noise seen by one node is the bank noise scaled by
        // its share of the load (measurement taps the node branch).
        let rack_total = rack.output_noise_rms(node_load * 15.0);
        let rack_per_node = rack_total / 15.0;
        assert!(
            pair_noise.0 / rack_per_node.0 > 3.0,
            "pair={pair_noise} rack/node={rack_per_node}"
        );
    }

    #[test]
    fn psu_count_and_failures_drop() {
        let nodes = 15;
        let conventional_units = 2 * nodes;
        let rack = PsuBank::openrack_32kw();
        assert!(rack.units < conventional_units);
        let conv_fail = nodes as f64 * PsuBank::per_server_pair().expected_failures_per_year();
        assert!(rack.expected_failures_per_year() < conv_fail / 2.0);
    }
}
