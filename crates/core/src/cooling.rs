//! Cooling and thermal models: direct hot-water liquid cooling versus air,
//! component thermal RC dynamics, and thermally-induced throttling.
//!
//! §II-C/G/I of the paper: D.A.V.I.D.E. uses Cool-IT-style direct liquid
//! cooling on CPUs and GPUs removing 75–80 % of node heat; the remaining
//! 20–25 % goes to heavy-duty low-speed rack fans. Facility water may
//! arrive between 2 °C and 45 °C (it is *hot-water* cooling at 35/40 °C);
//! coolant must stay ≥ 5 °C above dew point and ≤ 45 °C; facility return
//! tops out at 50/55 °C. Flow is ~30 L/min per rack. Air-cooled parts
//! throttle when they hit their maximum junction temperature, degrading
//! performance unevenly across nodes — liquid removes that failure mode.

use crate::error::{CoreError, Result};
use crate::units::{Celsius, KgPerSec, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Specific heat of water, J/(kg·K).
pub const WATER_CP: f64 = 4186.0;

/// How a component sinks its heat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoolingKind {
    /// Passive cold plate in direct contact with the die.
    DirectLiquid,
    /// Chassis airflow from the rack fans.
    Air,
}

/// Thermal RC model for one silicon die + its heat path.
///
/// `dT/dt = P/C − (T − T_sink)/(R·C)` with `R` the die-to-coolant thermal
/// resistance (K/W) and `C` the lumped heat capacity (J/K).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalNode {
    /// Heat-sink path.
    pub kind: CoolingKind,
    /// Die-to-coolant thermal resistance, K/W.
    pub resistance: f64,
    /// Lumped heat capacity, J/K.
    pub capacity: f64,
    /// Junction temperature that triggers throttling.
    pub t_throttle: Celsius,
    /// Absolute maximum junction temperature (safety shutdown).
    pub t_max: Celsius,
    /// Current junction temperature.
    pub temperature: Celsius,
}

impl ThermalNode {
    /// A liquid-cooled processor die (cold plate: R ≈ 0.06 K/W).
    pub fn liquid_cpu() -> Self {
        ThermalNode {
            kind: CoolingKind::DirectLiquid,
            resistance: 0.06,
            capacity: 120.0,
            t_throttle: Celsius(85.0),
            t_max: Celsius(95.0),
            temperature: Celsius(35.0),
        }
    }

    /// A liquid-cooled GPU die (larger die, similar plate).
    pub fn liquid_gpu() -> Self {
        ThermalNode {
            kind: CoolingKind::DirectLiquid,
            resistance: 0.055,
            capacity: 160.0,
            t_throttle: Celsius(83.0),
            t_max: Celsius(92.0),
            temperature: Celsius(35.0),
        }
    }

    /// The same dies on air: much higher die-to-air resistance, and the
    /// effective resistance depends on fan speed (set via
    /// [`ThermalNode::air_resistance`]).
    pub fn air_cpu() -> Self {
        ThermalNode {
            kind: CoolingKind::Air,
            resistance: 0.22,
            capacity: 120.0,
            t_throttle: Celsius(85.0),
            t_max: Celsius(95.0),
            temperature: Celsius(30.0),
        }
    }

    /// Air-cooled GPU.
    pub fn air_gpu() -> Self {
        ThermalNode {
            kind: CoolingKind::Air,
            resistance: 0.20,
            capacity: 160.0,
            t_throttle: Celsius(83.0),
            t_max: Celsius(92.0),
            temperature: Celsius(30.0),
        }
    }

    /// Die-to-air resistance for a fan at `speed ∈ (0,1]` of max RPM
    /// (airflow roughly linear in speed; resistance inversely so).
    pub fn air_resistance(base: f64, speed: f64) -> f64 {
        let speed = speed.clamp(0.05, 1.0);
        base / speed
    }

    /// Advance the die temperature by `dt` seconds with dissipated power
    /// `p` and sink (coolant/air inlet) temperature `t_sink`, using exact
    /// exponential integration of the RC response (unconditionally
    /// stable for any step size).
    pub fn step(&mut self, p: Watts, t_sink: Celsius, dt: Seconds) {
        let t_inf = t_sink.0 + p.0 * self.resistance;
        let tau = self.resistance * self.capacity;
        let alpha = (-dt.0 / tau).exp();
        self.temperature = Celsius(t_inf + (self.temperature.0 - t_inf) * alpha);
    }

    /// Steady-state temperature at power `p` and sink `t_sink`.
    pub fn steady_state(&self, p: Watts, t_sink: Celsius) -> Celsius {
        Celsius(t_sink.0 + p.0 * self.resistance)
    }

    /// True when the die has reached its throttle trip point.
    pub fn must_throttle(&self) -> bool {
        self.temperature >= self.t_throttle
    }

    /// True when the die exceeded its absolute maximum (safety check).
    pub fn over_limit(&self) -> bool {
        self.temperature > self.t_max
    }
}

/// The rack-level hybrid cooling loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoolingLoop {
    /// Facility water inlet temperature (2–45 °C allowed).
    pub facility_inlet: Celsius,
    /// Secondary (IT) loop coolant temperature delivered to cold plates.
    pub coolant_supply: Celsius,
    /// Coolant mass flow for the rack (30 L/min ≈ 0.5 kg/s).
    pub flow: KgPerSec,
    /// Fraction of IT heat captured by the liquid path (0.75–0.80).
    pub liquid_capture_fraction: f64,
    /// Dew point in the room (condensation guard).
    pub dew_point: Celsius,
    /// Heat-exchanger effectiveness (liquid-liquid, 0..1).
    pub hx_effectiveness: f64,
}

impl CoolingLoop {
    /// D.A.V.I.D.E. nominal operating point: 35 °C hot-water cooling,
    /// 30 L/min per rack, 78 % liquid capture.
    pub fn davide_nominal() -> Self {
        CoolingLoop {
            facility_inlet: Celsius(35.0),
            coolant_supply: Celsius(37.0),
            flow: KgPerSec(0.5),
            liquid_capture_fraction: 0.78,
            dew_point: Celsius(14.0),
            hx_effectiveness: 0.85,
        }
    }

    /// Validate the loop against the paper's installation constraints.
    pub fn validate(&self) -> Result<()> {
        if !(2.0..=45.0).contains(&self.facility_inlet.0) {
            return Err(CoreError::InvalidConfig(format!(
                "facility inlet {} outside 2–45 °C",
                self.facility_inlet
            )));
        }
        if self.coolant_supply.0 < self.dew_point.0 + 5.0 {
            return Err(CoreError::SafetyViolation(format!(
                "coolant {} within 5 °C of dew point {} — condensation risk",
                self.coolant_supply, self.dew_point
            )));
        }
        if self.coolant_supply.0 > 45.0 {
            return Err(CoreError::InvalidConfig(format!(
                "coolant supply {} above 45 °C maximum",
                self.coolant_supply
            )));
        }
        if !(0.0..=1.0).contains(&self.liquid_capture_fraction) {
            return Err(CoreError::InvalidConfig(
                "liquid capture fraction must be in [0,1]".into(),
            ));
        }
        Ok(())
    }

    /// Heat removed by the liquid path for `it_power` of IT load.
    pub fn liquid_heat(&self, it_power: Watts) -> Watts {
        it_power * self.liquid_capture_fraction
    }

    /// Heat left for the air path (rack fans).
    pub fn air_heat(&self, it_power: Watts) -> Watts {
        it_power * (1.0 - self.liquid_capture_fraction)
    }

    /// Coolant return temperature for a rack dissipating `it_power`:
    /// `T_out = T_in + Q_liquid / (ṁ·c_p)`.
    pub fn coolant_return(&self, it_power: Watts) -> Celsius {
        let q = self.liquid_heat(it_power);
        Celsius(self.coolant_supply.0 + q.0 / (self.flow.0 * WATER_CP))
    }

    /// Facility return temperature through the liquid-liquid heat
    /// exchanger (Fig. 1): the facility side picks up the exchanged heat
    /// at the same nominal flow.
    pub fn facility_return(&self, it_power: Watts) -> Celsius {
        let exchanged = self.liquid_heat(it_power) * self.hx_effectiveness;
        Celsius(self.facility_inlet.0 + exchanged.0 / (self.flow.0 * WATER_CP))
    }

    /// Check the facility return stays below the 50/55 °C ceiling.
    pub fn facility_return_ok(&self, it_power: Watts) -> bool {
        self.facility_return(it_power).0 <= 55.0
    }

    /// Fan power needed to move the air-side heat: cube-law fan model
    /// sized so 25 % of a 32 kW rack costs ≈ 550 W of fans at full speed.
    pub fn fan_power(&self, it_power: Watts, rack_capacity: Watts) -> Watts {
        let q_air = self.air_heat(it_power);
        let q_air_max = rack_capacity * (1.0 - self.liquid_capture_fraction);
        if q_air_max.0 <= 0.0 {
            return Watts::ZERO;
        }
        let speed = (q_air / q_air_max).clamp(0.1, 1.0);
        Watts(550.0) * speed.powi(3)
    }

    /// Effective PUE contribution of the rack: (IT + fans + pumps)/IT.
    pub fn rack_pue(&self, it_power: Watts, rack_capacity: Watts) -> f64 {
        if it_power.0 <= 0.0 {
            return 1.0;
        }
        let pumps = Watts(120.0); // redundant circulation pumps per rack
        let overhead = self.fan_power(it_power, rack_capacity) + pumps;
        (it_power + overhead) / it_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_step_converges_to_steady_state() {
        let mut die = ThermalNode::liquid_gpu();
        let p = Watts(300.0);
        let sink = Celsius(37.0);
        for _ in 0..10_000 {
            die.step(p, sink, Seconds(0.1));
        }
        let ss = die.steady_state(p, sink);
        assert!((die.temperature.0 - ss.0).abs() < 0.01);
        // 300 W × 0.055 K/W + 37 = 53.5 °C — comfortably below throttle.
        assert!((ss.0 - 53.5).abs() < 0.01);
        assert!(!die.must_throttle());
    }

    #[test]
    fn exponential_integration_stable_for_huge_steps() {
        let mut die = ThermalNode::liquid_cpu();
        die.step(Watts(190.0), Celsius(37.0), Seconds(1e6));
        let ss = die.steady_state(Watts(190.0), Celsius(37.0));
        assert!((die.temperature.0 - ss.0).abs() < 1e-6, "no oscillation");
    }

    #[test]
    fn air_cooled_gpu_throttles_where_liquid_does_not() {
        // §II-G: air-cooled components hit Tmax under load, liquid ones
        // get uniform adequate cooling even with 37 °C hot-water.
        let p = Watts(300.0);
        let liquid = ThermalNode::liquid_gpu().steady_state(p, Celsius(37.0));
        let air = ThermalNode::air_gpu().steady_state(p, Celsius(30.0));
        assert!(liquid < Celsius(83.0), "liquid stays cool: {liquid}");
        assert!(air > Celsius(83.0), "air trips throttle: {air}");
    }

    #[test]
    fn fan_speed_rescues_air_only_partially() {
        let base = ThermalNode::air_gpu().resistance;
        let full_fan = ThermalNode::air_resistance(base, 1.0);
        let half_fan = ThermalNode::air_resistance(base, 0.5);
        assert!(half_fan > full_fan);
        // Even at full fan the steady state is marginal at hot intake.
        let t = 35.0 + 300.0 * full_fan;
        assert!(t > 83.0, "hot-aisle air cooling cannot hold a P100: {t}");
    }

    #[test]
    fn loop_validation_enforces_paper_limits() {
        let mut l = CoolingLoop::davide_nominal();
        assert!(l.validate().is_ok());
        l.facility_inlet = Celsius(1.0);
        assert!(l.validate().is_err(), "below 2 °C floor");
        l.facility_inlet = Celsius(35.0);
        l.coolant_supply = Celsius(17.0);
        assert!(l.validate().is_err(), "dew-point guard (14+5)");
        l.coolant_supply = Celsius(46.0);
        assert!(l.validate().is_err(), "above 45 °C ceiling");
    }

    #[test]
    fn heat_split_matches_75_80_pct() {
        let l = CoolingLoop::davide_nominal();
        let it = Watts::from_kw(30.0);
        let liq = l.liquid_heat(it);
        let air = l.air_heat(it);
        let frac = liq / it;
        assert!((0.75..=0.80).contains(&frac));
        assert!((liq.0 + air.0 - it.0).abs() < 1e-9, "energy conserved");
    }

    #[test]
    fn coolant_return_below_facility_ceiling() {
        let l = CoolingLoop::davide_nominal();
        let it = Watts::from_kw(30.0); // a busy rack
        let ret = l.coolant_return(it);
        // 23.4 kW into 0.5 kg/s water ≈ +11.2 K → ~48 °C return.
        assert!((ret.0 - 48.18).abs() < 0.2, "return={ret}");
        assert!(l.facility_return_ok(it));
        assert!(l.facility_return(it) > l.facility_inlet);
    }

    #[test]
    fn fan_power_cube_law() {
        let l = CoolingLoop::davide_nominal();
        let cap = Watts::from_kw(32.0);
        let full = l.fan_power(cap, cap);
        let half = l.fan_power(cap * 0.5, cap);
        assert!((full.0 - 550.0).abs() < 1e-9);
        assert!(half.0 < full.0 / 4.0, "cube law: half flow ≤ 1/8 power");
    }

    #[test]
    fn rack_pue_is_modest() {
        let l = CoolingLoop::davide_nominal();
        let cap = Watts::from_kw(32.0);
        let pue = l.rack_pue(Watts::from_kw(30.0), cap);
        assert!(
            pue > 1.0 && pue < 1.05,
            "direct liquid keeps PUE low: {pue}"
        );
    }
}
