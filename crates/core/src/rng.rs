//! Deterministic pseudo-random number generation and distributions.
//!
//! Every stochastic element of the simulation (sensor noise, workload
//! generation, oscillator drift) draws from this module so that experiment
//! outputs are bit-reproducible across runs and platforms. The generator is
//! `xoshiro256**` seeded through SplitMix64 — the standard, well-analysed
//! combination.

/// SplitMix64 stream, used to expand a single `u64` seed into generator
/// state. Also usable stand-alone for cheap hashing-style randomness.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// `xoshiro256**` generator with distribution helpers.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Seed deterministically from a single `u64`.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derive an independent child generator (for per-component streams).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` via Lemire's multiply-shift (unbiased
    /// enough for simulation purposes; rejection step included).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal variate (Box–Muller, with cached spare).
    pub fn gauss(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid u == 0 so ln() stays finite.
        let u = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with mean `mu` and standard deviation `sigma`.
    #[inline]
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.gauss()
    }

    /// Log-normal variate parameterised by the mean/σ of the underlying
    /// normal (the standard parameterisation for job-runtime models).
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential variate with rate `lambda` (mean `1/lambda`).
    #[inline]
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0);
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Weibull variate with shape `k` and scale `lambda` — used for job
    /// interarrival burstiness (k < 1 gives heavy-tailed gaps).
    #[inline]
    pub fn weibull(&mut self, k: f64, lambda: f64) -> f64 {
        debug_assert!(k > 0.0 && lambda > 0.0);
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        lambda * (-u.ln()).powf(1.0 / k)
    }

    /// Poisson variate (Knuth's method; fine for small means).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0;
        }
        // For large means fall back to a rounded normal approximation.
        if mean > 64.0 {
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Sample an index from unnormalised non-negative weights.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats(mut f: impl FnMut(&mut Rng) -> f64, n: usize) -> (f64, f64) {
        let mut rng = Rng::seed_from(42);
        let xs: Vec<f64> = (0..n).map(|_| f(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_bounds_and_moments() {
        let (mean, var) = sample_stats(|r| r.uniform(), 100_000);
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var={var}");
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = rng.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_is_inclusive_exclusive() {
        let mut rng = Rng::seed_from(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.range(5, 15);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range reachable");
    }

    #[test]
    fn gauss_moments() {
        let (mean, var) = sample_stats(|r| r.gauss(), 200_000);
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let (mean, _) = sample_stats(|r| r.exponential(0.25), 100_000);
        assert!((mean - 4.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = Rng::seed_from(5);
        let mut xs: Vec<f64> = (0..50_001).map(|_| rng.lognormal(2.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[25_000];
        // Median of log-normal is exp(mu).
        assert!((median - 2.0f64.exp()).abs() < 0.3, "median={median}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let (mean, _) = sample_stats(|r| r.weibull(1.0, 3.0), 100_000);
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let (mean, _) = sample_stats(|r| r.poisson(3.5) as f64, 50_000);
        assert!((mean - 3.5).abs() < 0.1, "mean={mean}");
        let (mean, _) = sample_stats(|r| r.poisson(200.0) as f64, 20_000);
        assert!((mean - 200.0).abs() < 1.0, "mean={mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from(9);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.25, "ratio={ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(13);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from(21);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
