//! # davide-core
//!
//! Hardware and system models for the D.A.V.I.D.E. energy-aware
//! petaflops-class cluster (Abu Ahmad et al., 2017), plus the simulation
//! substrate the rest of the stack builds on.
//!
//! The crate is organised bottom-up:
//!
//! * foundations — [`units`], [`time`], [`rng`], [`event`], [`power`],
//!   [`error`];
//! * silicon models — [`dvfs`], [`cpu`] (POWER8+), [`gpu`] (Tesla P100),
//!   [`memory`] (Centaur-buffered DRAM), [`interconnect`] (NVLink, PCIe,
//!   EDR fat-tree);
//! * integration — [`psu`] (OpenRack power bank vs per-server supplies),
//!   [`cooling`] (direct hot-water liquid + air hybrid, thermal RC,
//!   throttling), [`node`] (the 2×POWER8 + 4×P100 Garrison derivative),
//!   [`rack`], [`cluster`] (the 45-node, ~1 PFlops, <100 kW pilot);
//! * control — [`capping`] (PI DVFS capping, RAPL-style window limits),
//!   [`budget`] (site→node power sharing, [34]), [`burnin`] (the E4
//!   acceptance suite of §I);
//! * context — [`efficiency`] (Top500/Green500 reference data).
//!
//! Everything is deterministic: stochastic components take an explicit
//! [`rng::Rng`] so simulations reproduce bit-for-bit.

#![warn(missing_docs)]

pub mod budget;
pub mod burnin;
pub mod capping;
pub mod cluster;
pub mod cooling;
pub mod cpu;
pub mod dvfs;
pub mod efficiency;
pub mod error;
pub mod event;
pub mod gpu;
pub mod interconnect;
pub mod memory;
pub mod node;
pub mod power;
pub mod psu;
pub mod rack;
pub mod rng;
pub mod time;
pub mod units;

pub use cluster::Cluster;
pub use error::{CoreError, Result};
pub use node::{ComputeNode, JobShape, NodeLoad};
pub use power::PowerTrace;
pub use time::{SimDuration, SimTime};
pub use units::{Celsius, GBps, Gflops, Hertz, Joules, Seconds, Watts};
