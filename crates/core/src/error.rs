//! Error types for the core hardware models.

use std::fmt;

/// Errors raised by cluster/hardware model configuration and operation.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was out of its physical range.
    InvalidConfig(String),
    /// A requested resource (node, GPU, core…) does not exist.
    NoSuchResource(String),
    /// An operation would exceed a hard budget (rack power, node count…).
    BudgetExceeded {
        /// What budget was violated.
        what: String,
        /// Requested amount.
        requested: f64,
        /// Available amount.
        available: f64,
    },
    /// Thermal or electrical safety constraint violated.
    SafetyViolation(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::NoSuchResource(msg) => write!(f, "no such resource: {msg}"),
            CoreError::BudgetExceeded {
                what,
                requested,
                available,
            } => write!(
                f,
                "budget exceeded for {what}: requested {requested}, available {available}"
            ),
            CoreError::SafetyViolation(msg) => write!(f, "safety violation: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::BudgetExceeded {
            what: "rack power".into(),
            requested: 40_000.0,
            available: 32_000.0,
        };
        let s = e.to_string();
        assert!(s.contains("rack power") && s.contains("32000"));
        assert!(CoreError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CoreError::SafetyViolation("too hot".into()));
    }
}
