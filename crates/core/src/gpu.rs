//! NVIDIA Tesla P100 (SXM2, NVLink) accelerator model.
//!
//! Envelope numbers from §II-B of the paper and the Pascal whitepaper:
//! 5.3 TFlops FP64 / 10.6 FP32 / 21.2 FP16, HBM2 at 732 GB/s, 16 GB,
//! 300 W TDP, four NVLink links at 40 GB/s bidirectional each.

use crate::dvfs::{p100_table, DvfsTable};
use crate::error::{CoreError, Result};
use crate::units::{Bytes, GBps, Gflops, Watts};
use serde::{Deserialize, Serialize};

/// Floating-point precision selector for peak-rate queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 64-bit IEEE double.
    Fp64,
    /// 32-bit IEEE single.
    Fp32,
    /// 16-bit IEEE half.
    Fp16,
}

/// Static description of a P100-class accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing/model name.
    pub name: String,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// FP64 CUDA cores (P100: 32/SM × 56 SM = 1792).
    pub fp64_cores: u32,
    /// HBM2 capacity.
    pub memory: Bytes,
    /// HBM2 peak bandwidth.
    pub mem_bandwidth: GBps,
    /// Idle power with the part powered but quiescent.
    pub idle_power: Watts,
    /// Board TDP.
    pub tdp: Watts,
    /// NVLink links on the package (P100: 4).
    pub nvlink_links: u32,
    /// Graphics-clock ladder.
    pub dvfs: DvfsTable,
}

impl GpuSpec {
    /// Tesla P100 SXM2 with NVLink, as deployed in D.A.V.I.D.E.
    pub fn p100() -> Self {
        GpuSpec {
            name: "NVIDIA Tesla P100 SXM2 (NVLink)".to_string(),
            sms: 56,
            fp64_cores: 1792,
            memory: Bytes::from_gb(16.0),
            mem_bandwidth: GBps(732.0),
            idle_power: Watts(30.0),
            tdp: Watts(300.0),
            nvlink_links: 4,
            dvfs: p100_table(),
        }
    }

    /// Peak throughput at boost clock for a precision.
    pub fn peak_gflops(&self, prec: Precision) -> Gflops {
        let boost_ghz = self.dvfs.max().freq.ghz();
        // FMA counts as two flops per FP64 core per cycle.
        let fp64 = 2.0 * self.fp64_cores as f64 * boost_ghz;
        Gflops(match prec {
            Precision::Fp64 => fp64,
            Precision::Fp32 => 2.0 * fp64,
            Precision::Fp16 => 4.0 * fp64,
        })
    }
}

/// Runtime state of one accelerator: clock index, powered or gated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Immutable hardware description.
    pub spec: GpuSpec,
    pstate: usize,
    enabled: bool,
}

impl GpuModel {
    /// New accelerator at nominal (base) clock, powered on.
    pub fn new(spec: GpuSpec) -> Self {
        let pstate = spec.dvfs.nominal_index();
        GpuModel {
            spec,
            pstate,
            enabled: true,
        }
    }

    /// Current ladder index.
    #[inline]
    pub fn pstate(&self) -> usize {
        self.pstate
    }

    /// True when the board is powered.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Energy-proportionality API (§IV): power the board on/off on demand.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Set the graphics-clock operating point.
    pub fn set_pstate(&mut self, idx: usize) -> Result<()> {
        if idx >= self.spec.dvfs.len() {
            return Err(CoreError::InvalidConfig(format!(
                "GPU p-state {idx} out of range (table has {})",
                self.spec.dvfs.len()
            )));
        }
        self.pstate = idx;
        Ok(())
    }

    /// Step the clock down one point; returns the new index.
    pub fn throttle(&mut self) -> usize {
        self.pstate = self.spec.dvfs.step_down(self.pstate);
        self.pstate
    }

    /// Step the clock up one point; returns the new index.
    pub fn unthrottle(&mut self) -> usize {
        self.pstate = self.spec.dvfs.step_up(self.pstate);
        self.pstate
    }

    /// Instantaneous board power at utilisation `util ∈ [0,1]`.
    ///
    /// A gated board draws a trickle (3 W of bridge logic); a powered
    /// board draws idle + dynamic·util·V²f.
    pub fn power(&self, util: f64) -> Watts {
        if !self.enabled {
            return Watts(3.0);
        }
        let util = util.clamp(0.0, 1.0);
        let k = self.spec.dvfs.dynamic_power_factor(self.pstate);
        // At boost clock the V²f factor is >1 and the board may transiently
        // exceed TDP before its own power limiter reacts; clamp at 1.1×TDP
        // which matches the P100 power-limit behaviour.
        let p = self.spec.idle_power + (self.spec.tdp - self.spec.idle_power) * (util * k);
        p.min(self.spec.tdp * 1.1)
    }

    /// Achievable FP64 throughput at utilisation `util`.
    pub fn gflops(&self, util: f64) -> Gflops {
        if !self.enabled {
            return Gflops::ZERO;
        }
        let util = util.clamp(0.0, 1.0);
        let f = self.spec.dvfs.state(self.pstate).freq.ghz();
        Gflops(2.0 * self.spec.fp64_cores as f64 * f * util)
    }

    /// Effective HBM2 bandwidth (memory clock is independent of the
    /// graphics ladder on Pascal, so gating is the only modifier).
    pub fn mem_bandwidth(&self) -> GBps {
        if self.enabled {
            self.spec.mem_bandwidth
        } else {
            GBps::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p100_published_peaks() {
        let spec = GpuSpec::p100();
        let fp64 = spec.peak_gflops(Precision::Fp64);
        let fp32 = spec.peak_gflops(Precision::Fp32);
        let fp16 = spec.peak_gflops(Precision::Fp16);
        assert!((fp64.tflops() - 5.3).abs() < 0.1, "fp64={fp64}");
        assert!((fp32.tflops() - 10.6).abs() < 0.2, "fp32={fp32}");
        assert!((fp16.tflops() - 21.2).abs() < 0.4, "fp16={fp16}");
    }

    #[test]
    fn power_envelope() {
        let mut gpu = GpuModel::new(GpuSpec::p100());
        assert_eq!(gpu.power(0.0), Watts(30.0));
        // Full util at base clock stays within TDP.
        assert!(gpu.power(1.0) <= Watts(300.0));
        // Boost clock is limited to 1.1 × TDP.
        gpu.set_pstate(gpu.spec.dvfs.len() - 1).unwrap();
        assert!(gpu.power(1.0) <= Watts(330.0) + Watts(1e-9));
    }

    #[test]
    fn gating_kills_power_and_perf() {
        let mut gpu = GpuModel::new(GpuSpec::p100());
        gpu.set_enabled(false);
        assert_eq!(gpu.power(1.0), Watts(3.0));
        assert_eq!(gpu.gflops(1.0), Gflops::ZERO);
        assert_eq!(gpu.mem_bandwidth(), GBps::ZERO);
        gpu.set_enabled(true);
        assert!(gpu.gflops(1.0) > Gflops::ZERO);
    }

    #[test]
    fn throttle_reduces_both_power_and_perf() {
        let mut gpu = GpuModel::new(GpuSpec::p100());
        let p0 = gpu.power(1.0);
        let g0 = gpu.gflops(1.0);
        gpu.throttle();
        gpu.throttle();
        assert!(gpu.power(1.0) < p0);
        assert!(gpu.gflops(1.0) < g0);
        // HBM bandwidth unaffected by graphics clock.
        assert_eq!(gpu.mem_bandwidth(), GBps(732.0));
    }

    #[test]
    fn pstate_bounds_checked() {
        let mut gpu = GpuModel::new(GpuSpec::p100());
        assert!(gpu.set_pstate(100).is_err());
        assert!(gpu.set_pstate(0).is_ok());
        for _ in 0..20 {
            gpu.throttle();
        }
        assert_eq!(gpu.pstate(), 0);
    }

    #[test]
    fn four_nvlink_links() {
        assert_eq!(GpuSpec::p100().nvlink_links, 4);
    }
}
