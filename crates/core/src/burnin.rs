//! The node burn-in suite.
//!
//! §I: "All the nodes will be assembled and tested using the E4 standard
//! burn-in suite by the end of March [2017]". Burn-in drives each node
//! through staged load patterns and verifies its electrical and thermal
//! envelope: idle floor, per-stage power windows, thermal soak without
//! throttling, and capping-controller response.

use crate::capping::{evaluate, PiCapController};
use crate::node::{ComputeNode, NodeLoad};
use crate::units::{Celsius, Seconds, Watts};

/// One burn-in stage: a load pattern held for a duration, with the
/// acceptance window for node power.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnInStage {
    /// Stage name.
    pub name: &'static str,
    /// Load applied.
    pub load: NodeLoad,
    /// Soak duration, seconds.
    pub duration: Seconds,
    /// Minimum acceptable node power (detects dead components).
    pub min_power: Watts,
    /// Maximum acceptable node power (detects shorts / bad VRMs).
    pub max_power: Watts,
}

/// The standard stage list: idle → CPU-only → GPU-only → memory →
/// full-tilt thermal soak.
pub fn standard_stages() -> Vec<BurnInStage> {
    vec![
        BurnInStage {
            name: "idle-floor",
            load: NodeLoad::IDLE,
            duration: Seconds(120.0),
            min_power: Watts(250.0),
            max_power: Watts(500.0),
        },
        BurnInStage {
            name: "cpu-stress",
            load: NodeLoad {
                cpu: 1.0,
                gpu: 0.0,
                mem: 0.3,
                net: 0.0,
            },
            duration: Seconds(300.0),
            min_power: Watts(550.0),
            max_power: Watts(1000.0),
        },
        BurnInStage {
            name: "gpu-stress",
            load: NodeLoad {
                cpu: 0.2,
                gpu: 1.0,
                mem: 0.4,
                net: 0.0,
            },
            duration: Seconds(300.0),
            min_power: Watts(1400.0),
            max_power: Watts(1900.0),
        },
        BurnInStage {
            name: "memory-stream",
            load: NodeLoad {
                cpu: 0.6,
                gpu: 0.2,
                mem: 1.0,
                net: 0.1,
            },
            duration: Seconds(300.0),
            min_power: Watts(650.0),
            max_power: Watts(1250.0),
        },
        BurnInStage {
            name: "full-soak",
            load: NodeLoad::FULL,
            duration: Seconds(1800.0),
            min_power: Watts(1650.0),
            max_power: Watts(2100.0),
        },
    ]
}

/// Result of one stage on one node.
#[derive(Debug, Clone, PartialEq)]
pub struct StageResult {
    /// Stage name.
    pub stage: &'static str,
    /// Measured node power.
    pub power: Watts,
    /// Hottest die at the end of the soak.
    pub peak_die_temp: Celsius,
    /// Thermal throttle events during the soak.
    pub throttle_events: usize,
    /// Whether the stage passed all checks.
    pub passed: bool,
    /// Failure annotations (empty when passed).
    pub failures: Vec<String>,
}

/// A node's complete burn-in report.
#[derive(Debug, Clone, PartialEq)]
pub struct BurnInReport {
    /// The node tested.
    pub node_id: u32,
    /// Per-stage results.
    pub stages: Vec<StageResult>,
    /// Capping-controller check: settled within the bound.
    pub capping_ok: bool,
    /// Overall verdict.
    pub passed: bool,
}

/// Burn-in configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnInConfig {
    /// Coolant temperature at the cold plates during the run.
    pub coolant: Celsius,
    /// Thermal-step resolution, seconds.
    pub dt: Seconds,
    /// Capping check: the cap to apply.
    pub cap_check: Watts,
    /// Capping check: settle-time bound, steps of `dt`.
    pub cap_settle_steps: usize,
}

impl Default for BurnInConfig {
    fn default() -> Self {
        BurnInConfig {
            coolant: Celsius(37.0),
            dt: Seconds(1.0),
            cap_check: Watts(1500.0),
            cap_settle_steps: 60,
        }
    }
}

/// Run the full suite on a node. The node is consumed-by-mutation (its
/// DVFS state is exercised) and restored to nominal at the end.
pub fn run_burnin(node: &mut ComputeNode, config: BurnInConfig) -> BurnInReport {
    let mut stages = Vec::new();
    let mut all_passed = true;

    for stage in standard_stages() {
        let mut throttles = 0usize;
        let steps = (stage.duration.0 / config.dt.0).ceil() as usize;
        for _ in 0..steps {
            throttles += node.thermal_step(stage.load, config.coolant, config.dt);
        }
        let power = node.power(stage.load);
        let peak = node.max_die_temperature();
        let mut failures = Vec::new();
        if power < stage.min_power {
            failures.push(format!(
                "power {power} below floor {} — dead component?",
                stage.min_power
            ));
        }
        if power > stage.max_power {
            failures.push(format!(
                "power {power} above ceiling {} — electrical fault?",
                stage.max_power
            ));
        }
        if throttles > 0 {
            failures.push(format!("{throttles} thermal throttle events in soak"));
        }
        let passed = failures.is_empty();
        all_passed &= passed;
        stages.push(StageResult {
            stage: stage.name,
            power,
            peak_die_temp: peak,
            throttle_events: throttles,
            passed,
            failures,
        });
        // Recover DVFS state between stages.
        node.set_pstate_all(node.cpus[0].spec.dvfs.nominal_index());
    }

    // Capping response check.
    let mut ctl = PiCapController::new(config.cap_check);
    let traj = ctl.run(node, NodeLoad::FULL, config.dt, config.cap_settle_steps * 2);
    let q = evaluate(&traj, ctl.band);
    let capping_ok = q.settle_steps <= config.cap_settle_steps
        && traj
            .last()
            .is_some_and(|s| s.power <= config.cap_check + ctl.band);
    all_passed &= capping_ok;
    node.set_pstate_all(node.cpus[0].spec.dvfs.nominal_index());

    BurnInReport {
        node_id: node.id,
        stages,
        capping_ok,
        passed: all_passed,
    }
}

/// Burn in a whole batch of nodes; returns the reports of failures only
/// (the healthy case is silent, like a real acceptance run).
pub fn burnin_batch(nodes: &mut [ComputeNode], config: BurnInConfig) -> Vec<BurnInReport> {
    nodes
        .iter_mut()
        .map(|n| run_burnin(n, config))
        .filter(|r| !r.passed)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_liquid_node_passes() {
        let mut node = ComputeNode::davide(7);
        let report = run_burnin(&mut node, BurnInConfig::default());
        assert!(report.passed, "failures: {:#?}", report);
        assert_eq!(report.stages.len(), 5);
        assert!(report.capping_ok);
        for s in &report.stages {
            assert!(s.passed, "{}: {:?}", s.stage, s.failures);
            assert_eq!(s.throttle_events, 0);
        }
        // Node restored to nominal.
        assert_eq!(
            node.cpus[0].pstate(),
            node.cpus[0].spec.dvfs.nominal_index()
        );
    }

    #[test]
    fn air_cooled_node_fails_the_soak() {
        let mut node = ComputeNode::davide_air_cooled(8);
        let report = run_burnin(&mut node, BurnInConfig::default());
        assert!(!report.passed, "air cooling must trip the full soak");
        let soak = report
            .stages
            .iter()
            .find(|s| s.stage == "full-soak")
            .unwrap();
        assert!(soak.throttle_events > 0);
        assert!(!soak.passed);
    }

    #[test]
    fn gpu_failure_detected_as_low_power() {
        let mut node = ComputeNode::davide(9);
        // Simulate two dead GPUs.
        node.gpus[1].set_enabled(false);
        node.gpus[3].set_enabled(false);
        let report = run_burnin(&mut node, BurnInConfig::default());
        assert!(!report.passed);
        let gpu_stage = report
            .stages
            .iter()
            .find(|s| s.stage == "gpu-stress")
            .unwrap();
        assert!(!gpu_stage.passed, "dead GPUs show as missing power");
        assert!(gpu_stage.failures[0].contains("below floor"));
    }

    #[test]
    fn batch_reports_only_failures() {
        let mut nodes: Vec<ComputeNode> = (0..4).map(ComputeNode::davide).collect();
        nodes.push(ComputeNode::davide_air_cooled(99));
        let failures = burnin_batch(&mut nodes, BurnInConfig::default());
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].node_id, 99);
    }

    #[test]
    fn stage_power_windows_are_ordered() {
        for s in standard_stages() {
            assert!(s.min_power < s.max_power, "{}", s.name);
            assert!(s.duration.0 > 0.0);
        }
    }
}
