//! Hierarchical power-budget distribution: site cap → rack caps → node
//! caps.
//!
//! §III-A2 caps the total system power; [34] (Ellsworth et al., "Dynamic
//! Power Sharing for Higher Job Throughput") shows that *how* the budget
//! is split across nodes decides the QoS. Two splitters are provided:
//! uniform (every node gets the same slice) and demand-proportional
//! (idle nodes donate headroom to busy ones), both with a per-node floor
//! so no node is starved below its idle draw.

use crate::capping::PiCapController;
use crate::node::{ComputeNode, NodeLoad};
use crate::units::{Seconds, Watts};

/// Budget-splitting strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPolicy {
    /// Equal slice per node.
    Uniform,
    /// Slices proportional to measured demand, above a common floor.
    DemandProportional,
}

/// Split `total` across nodes with measured `demands` (watts each node
/// would draw uncapped), honouring a per-node `floor`.
///
/// Returns one cap per node; the caps sum to `total` (within float
/// rounding) unless the floors alone exceed it, in which case every
/// node gets exactly the floor (the cap is infeasible and the caller
/// must shed load).
pub fn split_budget(
    total: Watts,
    demands: &[Watts],
    floor: Watts,
    policy: SharingPolicy,
) -> Vec<Watts> {
    let n = demands.len();
    assert!(n > 0, "no nodes to budget");
    let floor_total = floor.0 * n as f64;
    if floor_total >= total.0 {
        return vec![floor; n];
    }
    let distributable = total.0 - floor_total;
    match policy {
        SharingPolicy::Uniform => {
            let share = distributable / n as f64;
            vec![Watts(floor.0 + share); n]
        }
        SharingPolicy::DemandProportional => {
            // Weight by demand above the floor; a node without excess
            // demand keeps only its floor.
            let excess: Vec<f64> = demands.iter().map(|d| (d.0 - floor.0).max(0.0)).collect();
            let total_excess: f64 = excess.iter().sum();
            if total_excess <= 1e-9 {
                let share = distributable / n as f64;
                return vec![Watts(floor.0 + share); n];
            }
            excess
                .iter()
                .map(|e| {
                    // No node needs more than its demand: cap the grant
                    // and let the remainder stay at the site level
                    // (a real controller iterates; one pass is enough
                    // for the experiments' accuracy).
                    Watts(floor.0 + distributable * e / total_excess)
                })
                .collect()
        }
    }
}

/// A cluster-level cap controller: measures per-node demand, splits the
/// site budget, and drives each node's local PI controller at the
/// granted set point.
pub struct ClusterCapController {
    /// Site-level budget.
    pub site_cap: Watts,
    /// Per-node floor (≥ idle draw).
    pub floor: Watts,
    /// Splitting policy.
    pub policy: SharingPolicy,
    node_controllers: Vec<PiCapController>,
}

impl ClusterCapController {
    /// Controller for `n` nodes.
    pub fn new(n: usize, site_cap: Watts, floor: Watts, policy: SharingPolicy) -> Self {
        ClusterCapController {
            site_cap,
            floor,
            policy,
            node_controllers: (0..n).map(|_| PiCapController::new(site_cap)).collect(),
        }
    }

    /// One control period: split the budget from current demands, then
    /// step every node controller. Returns the per-node caps granted.
    pub fn step(
        &mut self,
        nodes: &mut [ComputeNode],
        loads: &[NodeLoad],
        dt: Seconds,
    ) -> Vec<Watts> {
        assert_eq!(nodes.len(), self.node_controllers.len());
        assert_eq!(nodes.len(), loads.len());
        // Demand = what the node would draw unthrottled: probe at the
        // nominal operating point.
        let demands: Vec<Watts> = nodes
            .iter()
            .zip(loads)
            .map(|(n, &l)| {
                let mut probe = n.clone();
                probe.set_pstate_all(probe.cpus[0].spec.dvfs.nominal_index());
                probe.power(l)
            })
            .collect();
        let caps = split_budget(self.site_cap, &demands, self.floor, self.policy);
        for ((node, ctl), (&cap, &load)) in nodes
            .iter_mut()
            .zip(&mut self.node_controllers)
            .zip(caps.iter().zip(loads))
        {
            if (ctl.cap.0 - cap.0).abs() > 1.0 {
                ctl.set_cap(cap);
            }
            ctl.step(node, load, dt);
        }
        caps
    }

    /// Total measured power right now.
    pub fn measured_total(&self, nodes: &[ComputeNode], loads: &[NodeLoad]) -> Watts {
        nodes.iter().zip(loads).map(|(n, &l)| n.power(l)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_split_sums_to_total() {
        let demands = vec![Watts(2000.0); 10];
        let caps = split_budget(
            Watts(15_000.0),
            &demands,
            Watts(400.0),
            SharingPolicy::Uniform,
        );
        let sum: f64 = caps.iter().map(|c| c.0).sum();
        assert!((sum - 15_000.0).abs() < 1e-6);
        assert!(caps.iter().all(|c| (c.0 - 1500.0).abs() < 1e-9));
    }

    #[test]
    fn proportional_gives_busy_nodes_more() {
        let demands = vec![
            Watts(2000.0),
            Watts(2000.0),
            Watts(400.0), // idle node
            Watts(400.0),
        ];
        let caps = split_budget(
            Watts(4_000.0),
            &demands,
            Watts(400.0),
            SharingPolicy::DemandProportional,
        );
        let sum: f64 = caps.iter().map(|c| c.0).sum();
        assert!((sum - 4_000.0).abs() < 1e-6);
        assert!(caps[0] > caps[2], "busy beats idle: {caps:?}");
        assert!((caps[2].0 - 400.0).abs() < 1e-9, "idle keeps only floor");
        // Busy nodes split the surplus evenly: 400 + 2400/2 = 1600.
        assert!((caps[0].0 - 1600.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_budget_returns_floors() {
        let demands = vec![Watts(2000.0); 4];
        let caps = split_budget(
            Watts(1_000.0),
            &demands,
            Watts(400.0),
            SharingPolicy::Uniform,
        );
        assert!(caps.iter().all(|c| *c == Watts(400.0)));
    }

    #[test]
    fn no_excess_demand_falls_back_to_uniform() {
        let demands = vec![Watts(300.0); 5]; // all below floor
        let caps = split_budget(
            Watts(5_000.0),
            &demands,
            Watts(400.0),
            SharingPolicy::DemandProportional,
        );
        let first = caps[0];
        assert!(caps.iter().all(|c| *c == first));
        let sum: f64 = caps.iter().map(|c| c.0).sum();
        assert!((sum - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn cluster_controller_respects_site_cap() {
        let mut nodes: Vec<ComputeNode> = (0..4).map(ComputeNode::davide).collect();
        // Two busy, two idle nodes.
        let loads = vec![
            NodeLoad::FULL,
            NodeLoad::FULL,
            NodeLoad::IDLE,
            NodeLoad::IDLE,
        ];
        // Floor must clear the ~490 W idle draw of a DAVIDE node.
        let site_cap = Watts(4_200.0);
        let mut ctl =
            ClusterCapController::new(4, site_cap, Watts(550.0), SharingPolicy::DemandProportional);
        for _ in 0..100 {
            ctl.step(&mut nodes, &loads, Seconds(0.1));
        }
        let total = ctl.measured_total(&nodes, &loads);
        // Idle nodes draw under their floor grant, so a modest margin
        // over the strict cap check:
        assert!(
            total.0 <= site_cap.0 * 1.02,
            "total {total} vs site cap {site_cap}"
        );
        // Busy nodes got throttled, idle ones did not.
        assert!(nodes[0].cpus[0].pstate() < nodes[2].cpus[0].pstate());
    }

    #[test]
    fn proportional_beats_uniform_on_busy_node_perf() {
        // With half the machine idle, demand-proportional sharing lets
        // the busy half run faster than a uniform split would.
        let run = |policy: SharingPolicy| -> f64 {
            let mut nodes: Vec<ComputeNode> = (0..4).map(ComputeNode::davide).collect();
            let loads = vec![
                NodeLoad::FULL,
                NodeLoad::FULL,
                NodeLoad::IDLE,
                NodeLoad::IDLE,
            ];
            let mut ctl = ClusterCapController::new(4, Watts(5_500.0), Watts(550.0), policy);
            for _ in 0..150 {
                ctl.step(&mut nodes, &loads, Seconds(0.1));
            }
            // Perf factor of the busy nodes.
            nodes[..2]
                .iter()
                .map(|n| n.cpus[0].spec.dvfs.perf_factor(n.cpus[0].pstate()))
                .sum::<f64>()
                / 2.0
        };
        let uniform = run(SharingPolicy::Uniform);
        let proportional = run(SharingPolicy::DemandProportional);
        assert!(
            proportional > uniform,
            "proportional {proportional} !> uniform {uniform}"
        );
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn empty_split_panics() {
        split_budget(Watts(100.0), &[], Watts(1.0), SharingPolicy::Uniform);
    }
}
