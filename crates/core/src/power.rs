//! Power traces: uniformly-sampled power-vs-time series and the numerics
//! used to turn them into energy figures.
//!
//! A [`PowerTrace`] is the lingua franca between the hardware models (which
//! produce them), the telemetry chain (which samples, decimates and
//! re-integrates them) and the scheduler (which accounts energy per job).

use crate::time::SimTime;
use crate::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A uniformly-sampled power time series.
///
/// ```
/// use davide_core::power::PowerTrace;
/// use davide_core::time::SimTime;
///
/// // One second of a 1.5 kW draw sampled at 1 kHz.
/// let trace = PowerTrace::from_fn(SimTime::ZERO, 1e-3, 1000, |_| 1500.0);
/// assert_eq!(trace.mean().0, 1500.0);
/// // Trapezoidal energy over the covered span: ~1498.5 J (999 intervals).
/// assert!((trace.energy().0 - 1500.0 * 0.999).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTrace {
    /// Time of the first sample.
    pub t0: SimTime,
    /// Sample spacing in seconds.
    pub dt: f64,
    /// Power samples in watts.
    pub samples: Vec<f64>,
}

impl PowerTrace {
    /// Create a trace from raw watt samples.
    pub fn new(t0: SimTime, dt: f64, samples: Vec<f64>) -> Self {
        assert!(dt > 0.0, "sample spacing must be positive");
        PowerTrace { t0, dt, samples }
    }

    /// An empty trace starting at `t0` with spacing `dt`.
    pub fn empty(t0: SimTime, dt: f64) -> Self {
        Self::new(t0, dt, Vec::new())
    }

    /// Synthesize a trace by evaluating `f(t_seconds)` at each sample point.
    pub fn from_fn(t0: SimTime, dt: f64, n: usize, mut f: impl FnMut(f64) -> f64) -> Self {
        let base = t0.as_secs_f64();
        let samples = (0..n).map(|i| f(base + i as f64 * dt)).collect();
        Self::new(t0, dt, samples)
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if the trace holds no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sampling rate in Hz.
    #[inline]
    pub fn sample_rate(&self) -> f64 {
        1.0 / self.dt
    }

    /// Total covered duration (`len * dt`).
    #[inline]
    pub fn duration(&self) -> Seconds {
        Seconds(self.samples.len() as f64 * self.dt)
    }

    /// Timestamp of sample `i`.
    #[inline]
    pub fn time_of(&self, i: usize) -> f64 {
        self.t0.as_secs_f64() + i as f64 * self.dt
    }

    /// Mean power over the trace.
    pub fn mean(&self) -> Watts {
        if self.samples.is_empty() {
            return Watts::ZERO;
        }
        Watts(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// Maximum sample.
    pub fn max(&self) -> Watts {
        Watts(
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Minimum sample.
    pub fn min(&self) -> Watts {
        Watts(self.samples.iter().copied().fold(f64::INFINITY, f64::min))
    }

    /// Energy by trapezoidal integration.
    ///
    /// For a trace with fewer than two samples this is zero; callers
    /// integrating telemetry should prefer traces covering whole phases.
    pub fn energy(&self) -> Joules {
        if self.samples.len() < 2 {
            return Joules::ZERO;
        }
        let mut acc = 0.0;
        for w in self.samples.windows(2) {
            acc += 0.5 * (w[0] + w[1]) * self.dt;
        }
        Joules(acc)
    }

    /// Energy by left-rectangle integration — what a naive monitoring
    /// client does with instantaneous readings; used in the E3 error study.
    pub fn energy_rect(&self) -> Joules {
        Joules(self.samples.iter().sum::<f64>() * self.dt)
    }

    /// Point-wise sum of two traces with identical geometry.
    ///
    /// # Panics
    /// Panics when `t0`, `dt` or length differ.
    pub fn add(&self, other: &PowerTrace) -> PowerTrace {
        assert_eq!(self.t0, other.t0, "trace origins differ");
        assert!(
            (self.dt - other.dt).abs() < 1e-15,
            "trace sample spacings differ"
        );
        assert_eq!(self.len(), other.len(), "trace lengths differ");
        let samples = self
            .samples
            .iter()
            .zip(&other.samples)
            .map(|(a, b)| a + b)
            .collect();
        PowerTrace::new(self.t0, self.dt, samples)
    }

    /// Scale every sample by `k` (e.g. PSU conversion loss).
    pub fn scale(&self, k: f64) -> PowerTrace {
        PowerTrace::new(
            self.t0,
            self.dt,
            self.samples.iter().map(|s| s * k).collect(),
        )
    }

    /// Extract the sub-trace covering `[from, to)` in seconds relative to
    /// the trace origin. Clamped to the available range.
    pub fn window(&self, from: f64, to: f64) -> PowerTrace {
        let i0 = ((from / self.dt).floor().max(0.0) as usize).min(self.samples.len());
        let i1 = ((to / self.dt).ceil().max(0.0) as usize).min(self.samples.len());
        let t0 = SimTime::from_secs_f64(self.t0.as_secs_f64() + i0 as f64 * self.dt);
        PowerTrace::new(t0, self.dt, self.samples[i0..i1].to_vec())
    }

    /// Resample to a lower rate by picking the nearest-in-time sample —
    /// models *instantaneous* polling (IPMI-style), which aliases.
    pub fn subsample_instantaneous(&self, new_rate_hz: f64) -> PowerTrace {
        assert!(new_rate_hz > 0.0);
        let new_dt = 1.0 / new_rate_hz;
        let n = (self.duration().0 / new_dt).floor() as usize;
        let samples = (0..n)
            .map(|i| {
                let idx = ((i as f64 * new_dt) / self.dt).round() as usize;
                self.samples[idx.min(self.samples.len() - 1)]
            })
            .collect();
        PowerTrace::new(self.t0, new_dt, samples)
    }

    /// Resample to a lower rate by averaging each window — models hardware
    /// accumulation (the BBB's HW decimation), which does not alias energy.
    pub fn subsample_averaged(&self, new_rate_hz: f64) -> PowerTrace {
        assert!(new_rate_hz > 0.0);
        let ratio = (1.0 / new_rate_hz) / self.dt;
        assert!(
            ratio >= 1.0,
            "cannot average-upsample: target rate above source rate"
        );
        let ratio = ratio.round() as usize;
        let n = self.samples.len() / ratio;
        let samples = (0..n)
            .map(|i| {
                let w = &self.samples[i * ratio..(i + 1) * ratio];
                w.iter().sum::<f64>() / ratio as f64
            })
            .collect();
        PowerTrace::new(self.t0, self.dt * ratio as f64, samples)
    }

    /// Root-mean-square error against a reference trace of identical
    /// geometry (used to quantify sensor-chain distortion).
    pub fn rmse(&self, reference: &PowerTrace) -> f64 {
        assert_eq!(self.len(), reference.len());
        if self.is_empty() {
            return 0.0;
        }
        let sse: f64 = self
            .samples
            .iter()
            .zip(&reference.samples)
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        (sse / self.len() as f64).sqrt()
    }
}

/// Relative error of a measured energy versus ground truth, in percent.
#[inline]
pub fn energy_error_pct(measured: Joules, truth: Joules) -> f64 {
    if truth.0 == 0.0 {
        return 0.0;
    }
    100.0 * (measured.0 - truth.0).abs() / truth.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PowerTrace {
        PowerTrace::from_fn(SimTime::ZERO, 0.1, 11, |t| 100.0 * t)
    }

    #[test]
    fn statistics() {
        let tr = ramp();
        assert_eq!(tr.len(), 11);
        assert!((tr.mean().0 - 50.0).abs() < 1e-9);
        assert_eq!(tr.max(), Watts(100.0));
        assert_eq!(tr.min(), Watts(0.0));
        assert!((tr.duration().0 - 1.1).abs() < 1e-12);
    }

    #[test]
    fn trapezoid_is_exact_for_linear() {
        // ∫0→1 100 t dt = 50 J over the covered [0, 1.0] span.
        let e = ramp().energy();
        assert!((e.0 - 50.0).abs() < 1e-9, "energy={e}");
    }

    #[test]
    fn rect_overestimates_decreasing_signal() {
        let tr = PowerTrace::from_fn(SimTime::ZERO, 0.01, 100, |t| 100.0 - 50.0 * t);
        assert!(tr.energy_rect() > tr.energy());
    }

    #[test]
    fn add_and_scale() {
        let a = ramp();
        let b = ramp();
        let s = a.add(&b);
        assert_eq!(s.max(), Watts(200.0));
        let h = s.scale(0.5);
        assert_eq!(h.samples, a.samples);
    }

    #[test]
    fn window_extracts_correct_span() {
        let tr = ramp();
        let w = tr.window(0.2, 0.5);
        assert_eq!(w.len(), 3);
        assert!((w.samples[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn averaged_subsampling_preserves_mean() {
        let tr = PowerTrace::from_fn(SimTime::ZERO, 1e-4, 10_000, |t| {
            500.0 + 100.0 * (2.0 * std::f64::consts::PI * 50.0 * t).sin()
        });
        let down = tr.subsample_averaged(100.0);
        // 50 Hz tone averages out over 10 ms windows; DC is preserved.
        assert!((down.mean().0 - tr.mean().0).abs() < 1.0);
        assert_eq!(down.sample_rate().round() as u64, 100);
    }

    #[test]
    fn instantaneous_subsampling_aliases() {
        // A 9 Hz tone sampled at 10 Hz aliases to 1 Hz and badly distorts
        // the apparent energy of the AC component.
        let tr = PowerTrace::from_fn(SimTime::ZERO, 1e-4, 100_000, |t| {
            500.0 + 200.0 * (2.0 * std::f64::consts::PI * 9.0 * t).sin()
        });
        let inst = tr.subsample_instantaneous(10.0);
        let avg = tr.subsample_averaged(10.0);
        let truth = tr.energy();
        let err_inst = energy_error_pct(inst.energy_rect(), truth);
        let err_avg = energy_error_pct(avg.energy_rect(), truth);
        assert!(
            err_avg < err_inst,
            "averaged ({err_avg:.3}%) must beat instantaneous ({err_inst:.3}%)"
        );
    }

    #[test]
    fn rmse_zero_for_identical() {
        let tr = ramp();
        assert_eq!(tr.rmse(&tr), 0.0);
    }

    #[test]
    fn energy_error_pct_basics() {
        assert_eq!(energy_error_pct(Joules(110.0), Joules(100.0)), 10.0);
        assert_eq!(energy_error_pct(Joules(90.0), Joules(100.0)), 10.0);
        assert_eq!(energy_error_pct(Joules(5.0), Joules(0.0)), 0.0);
    }

    #[test]
    #[should_panic(expected = "trace lengths differ")]
    fn add_rejects_mismatched() {
        let a = ramp();
        let b = PowerTrace::from_fn(SimTime::ZERO, 0.1, 5, |_| 1.0);
        let _ = a.add(&b);
    }
}
