//! Node-level reactive power capping (§III-A2).
//!
//! When a cap is armed, "local feedback controllers tune the operating
//! points of the internal components in the compute node to track the
//! maximum power set point". Two mechanisms are modelled:
//!
//! * [`PiCapController`] — a DVFS-ladder PI controller, the
//!   frequency-scaling style of capping;
//! * [`RaplWindow`] — a RAPL-style running-average power limit that
//!   enforces the cap over a sliding time window rather than instant by
//!   instant.

use crate::node::{ComputeNode, NodeLoad};
use crate::units::{Seconds, Watts};
use davide_obs::{Counter, Histogram, MetricsRegistry};
use serde::{Deserialize, Serialize};

/// Outcome of one controller step, for logging/metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapStep {
    /// Node power after actuation.
    pub power: Watts,
    /// Cap in force.
    pub cap: Watts,
    /// Ladder movement applied this step (-1 throttle, 0 hold, +1 raise).
    pub action: i32,
    /// Achieved fraction of nominal performance (DVFS perf factor).
    pub perf_factor: f64,
}

/// A proportional-integral controller that walks the node's DVFS ladders
/// to keep measured power at or below a set point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiCapController {
    /// Power set point.
    pub cap: Watts,
    /// Proportional gain (ladder steps per watt of error).
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Hysteresis band: no action while within `±band` of the cap.
    pub band: Watts,
    integral: f64,
}

impl PiCapController {
    /// Controller with gains tuned for the ~9-step POWER8 ladder: a
    /// 100 W overshoot commands roughly one ladder step.
    pub fn new(cap: Watts) -> Self {
        PiCapController {
            cap,
            kp: 0.01,
            ki: 0.002,
            band: Watts(25.0),
            integral: 0.0,
        }
    }

    /// Retarget the set point (e.g. rack manager reallocates budget).
    pub fn set_cap(&mut self, cap: Watts) {
        self.cap = cap;
        self.integral = 0.0;
    }

    /// Run one control period: measure `node` power under `load`,
    /// actuate the DVFS ladders, and report what happened.
    ///
    /// Over-cap the controller throttles one ladder step per period;
    /// under-cap it raises performance only when its internal power model
    /// predicts the higher operating point still fits below
    /// `cap − band` — the guard that prevents limit-cycling around the
    /// set point (real RAPL firmware uses the same trick).
    pub fn step(&mut self, node: &mut ComputeNode, load: NodeLoad, dt: Seconds) -> CapStep {
        let measured = node.power(load);
        let error = measured.0 - self.cap.0; // positive ⇒ over cap
        self.integral = (self.integral + error * dt.0).clamp(-1e4, 1e4);

        let action = if error > 0.0 {
            node.throttle_all();
            -1
        } else {
            // Below the cap: probe one step up against the power model
            // and keep it only when it leaves the hysteresis margin.
            let changed = node.unthrottle_all();
            if changed && node.power(load).0 > self.cap.0 - self.band.0 {
                node.throttle_all();
                0
            } else if changed {
                1
            } else {
                0
            }
        };

        let power = node.power(load);
        let perf_factor = node
            .cpus
            .first()
            .map(|c| c.spec.dvfs.perf_factor(c.pstate()))
            .unwrap_or(1.0);
        CapStep {
            power,
            cap: self.cap,
            action,
            perf_factor,
        }
    }

    /// Drive the controller for `steps` periods of `dt` under a constant
    /// load; returns the trajectory.
    pub fn run(
        &mut self,
        node: &mut ComputeNode,
        load: NodeLoad,
        dt: Seconds,
        steps: usize,
    ) -> Vec<CapStep> {
        (0..steps).map(|_| self.step(node, load, dt)).collect()
    }
}

/// A cap controller over an abstract speed ladder, decoupled from
/// [`ComputeNode`]: the control plane runs one per node against
/// telemetry-measured power, commanding a speed factor the plant applies.
///
/// Semantics per control period:
///
/// * sustained overcap (error above the hysteresis band for
///   `sustain_s`) steps one rung **down** the ladder;
/// * sustained headroom steps **up** only when the projected power at
///   the higher rung still clears `cap − band` (the probe-up guard that
///   prevents limit-cycling);
/// * the error integral is clamped (anti-windup) and zeroed on
///   retargeting, so a long overcap episode cannot keep the node
///   throttled after the cap relaxes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LadderCapController {
    /// Power set point.
    pub cap: Watts,
    /// Hysteresis band: no action while within `±band` of the cap.
    pub band: Watts,
    /// Sustain time before a ladder move, seconds.
    pub sustain_s: f64,
    /// Clamp for the error integral (anti-windup), watt-seconds.
    pub windup_limit: f64,
    ladder: Vec<f64>,
    level: usize,
    integral: f64,
    over_s: f64,
    under_s: f64,
}

impl LadderCapController {
    /// New controller over `ladder`, a descending list of speed factors
    /// starting at 1.0 (nominal).
    ///
    /// # Panics
    /// If the ladder is empty or not strictly descending from 1.0.
    pub fn new(cap: Watts, ladder: Vec<f64>, band: Watts, sustain_s: f64) -> Self {
        assert!(!ladder.is_empty(), "ladder cannot be empty");
        assert!((ladder[0] - 1.0).abs() < 1e-9, "ladder starts at nominal");
        assert!(
            ladder.windows(2).all(|w| w[1] < w[0]),
            "ladder must descend"
        );
        assert!(sustain_s >= 0.0);
        LadderCapController {
            cap,
            band,
            sustain_s,
            windup_limit: 20.0 * band.0.max(1.0) * sustain_s.max(1.0),
            ladder,
            level: 0,
            integral: 0.0,
            over_s: 0.0,
            under_s: 0.0,
        }
    }

    /// Controller over the POWER8 perf-factor ladder (nominal down to
    /// p-safe), the shape the D.A.V.I.D.E. nodes expose.
    pub fn power8(cap: Watts, band: Watts, sustain_s: f64) -> Self {
        let table = crate::dvfs::power8_table();
        let ladder: Vec<f64> = (0..=table.nominal_index())
            .rev()
            .map(|i| table.perf_factor(i))
            .collect();
        Self::new(cap, ladder, band, sustain_s)
    }

    /// Current commanded speed factor.
    pub fn speed(&self) -> f64 {
        self.ladder[self.level]
    }

    /// Current ladder level (0 = nominal).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Clamped error integral, watt-seconds (diagnostics).
    pub fn integral(&self) -> f64 {
        self.integral
    }

    /// Retarget the set point; resets the integral and sustain counters
    /// (anti-windup across cap changes).
    pub fn set_cap(&mut self, cap: Watts) {
        self.cap = cap;
        self.integral = 0.0;
        self.over_s = 0.0;
        self.under_s = 0.0;
    }

    /// [`Self::observe`] with capping instruments: the action and any
    /// overcap excursion land in `obs`'s counters/histograms. Kept as a
    /// separate method (rather than a field) so the controller stays
    /// `PartialEq + Serialize` — checkpointable control state carries
    /// no instrument handles.
    pub fn observe_instrumented(&mut self, measured: Watts, dt: Seconds, obs: &CapObs) -> i32 {
        let error = measured.0 - self.cap.0;
        if error > 0.0 {
            obs.overcap_w.record(error.round() as u64);
        }
        let action = self.observe(measured, dt);
        obs.observations.inc();
        match action {
            -1 => obs.steps_down.inc(),
            1 => obs.steps_up.inc(),
            _ => {}
        }
        action
    }

    /// Feed one measurement covering `dt`; returns the ladder action
    /// taken (−1 step down, 0 hold, +1 step up).
    pub fn observe(&mut self, measured: Watts, dt: Seconds) -> i32 {
        let error = measured.0 - self.cap.0; // positive ⇒ over cap
        self.integral = (self.integral + error * dt.0).clamp(-self.windup_limit, self.windup_limit);

        if error > self.band.0 {
            self.over_s += dt.0;
            self.under_s = 0.0;
            if self.over_s >= self.sustain_s && self.level + 1 < self.ladder.len() {
                self.level += 1;
                self.over_s = 0.0;
                return -1;
            }
        } else if error < -self.band.0 {
            self.under_s += dt.0;
            self.over_s = 0.0;
            if self.under_s >= self.sustain_s && self.level > 0 {
                self.under_s = 0.0;
                // Probe-up guard: project power at the higher rung
                // (dynamic draw scales with speed) and move only when it
                // still clears the hysteresis margin.
                let projected = measured.0 * self.ladder[self.level - 1] / self.ladder[self.level];
                if projected < self.cap.0 - self.band.0 {
                    self.level -= 1;
                    return 1;
                }
            }
        } else {
            self.over_s = 0.0;
            self.under_s = 0.0;
        }
        0
    }
}

/// Capping instruments shared by every [`LadderCapController`] of a
/// deployment: DVFS actuation counts and the overcap-excursion
/// distribution, aggregated cluster-wide in the metrics registry.
#[derive(Clone)]
pub struct CapObs {
    observations: Counter,
    steps_down: Counter,
    steps_up: Counter,
    overcap_w: Histogram,
}

impl CapObs {
    /// Capping instruments registered in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        CapObs {
            observations: registry.counter("cap_observations_total"),
            steps_down: registry.counter("cap_steps_down_total"),
            steps_up: registry.counter("cap_steps_up_total"),
            overcap_w: registry.histogram("cap_overcap_w"),
        }
    }
}

impl std::fmt::Debug for CapObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CapObs").finish_non_exhaustive()
    }
}

/// RAPL-style running-average power limit: the constraint is
/// `mean(P over window) ≤ cap`, allowing short excursions above the cap
/// as long as the window average holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaplWindow {
    /// Average-power limit.
    pub cap: Watts,
    /// Averaging window length.
    pub window: Seconds,
    samples: Vec<(f64, f64)>, // (t, watts)
    now: f64,
}

impl RaplWindow {
    /// New window-average limiter.
    pub fn new(cap: Watts, window: Seconds) -> Self {
        assert!(window.0 > 0.0);
        RaplWindow {
            cap,
            window,
            samples: Vec::new(),
            now: 0.0,
        }
    }

    /// Record a power observation `dt` after the previous one.
    pub fn observe(&mut self, power: Watts, dt: Seconds) {
        self.now += dt.0;
        self.samples.push((self.now, power.0));
        let horizon = self.now - self.window.0;
        self.samples.retain(|&(t, _)| t > horizon);
    }

    /// Current window-average power.
    pub fn average(&self) -> Watts {
        if self.samples.is_empty() {
            return Watts::ZERO;
        }
        Watts(self.samples.iter().map(|&(_, p)| p).sum::<f64>() / self.samples.len() as f64)
    }

    /// Is the running average within the limit?
    pub fn compliant(&self) -> bool {
        self.average() <= self.cap
    }

    /// Headroom left in the window: how much instantaneous power could be
    /// drawn next period while keeping the average at the cap.
    pub fn headroom(&self) -> Watts {
        let n = self.samples.len().max(1) as f64;
        // avg' = (sum + p)/(n+1) ≤ cap  ⇒  p ≤ cap·(n+1) − sum
        let sum: f64 = self.samples.iter().map(|&(_, p)| p).sum();
        Watts((self.cap.0 * (n + 1.0) - sum).max(0.0))
    }
}

/// Quality summary of a capping run: used by E9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapQuality {
    /// Fraction of steps over the cap.
    pub violation_fraction: f64,
    /// Worst overshoot above the cap.
    pub max_overshoot: Watts,
    /// Steps until the trajectory first came within the band and stayed.
    pub settle_steps: usize,
    /// Mean performance factor after settling (the QoS cost of the cap).
    pub mean_perf_after_settle: f64,
}

/// Evaluate a capping trajectory.
pub fn evaluate(trajectory: &[CapStep], band: Watts) -> CapQuality {
    let n = trajectory.len().max(1);
    let violations = trajectory.iter().filter(|s| s.power > s.cap + band).count();
    let max_overshoot = trajectory
        .iter()
        .map(|s| Watts((s.power.0 - s.cap.0).max(0.0)))
        .fold(Watts::ZERO, Watts::max);
    // Settle point: first index after which power never exceeds cap+band.
    let mut settle = trajectory.len();
    for i in (0..trajectory.len()).rev() {
        if trajectory[i].power > trajectory[i].cap + band {
            break;
        }
        settle = i;
    }
    let after: Vec<f64> = trajectory[settle..].iter().map(|s| s.perf_factor).collect();
    let mean_perf = if after.is_empty() {
        0.0
    } else {
        after.iter().sum::<f64>() / after.len() as f64
    };
    CapQuality {
        violation_fraction: violations as f64 / n as f64,
        max_overshoot,
        settle_steps: settle,
        mean_perf_after_settle: mean_perf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ComputeNode;

    fn capped_run(cap_w: f64, steps: usize) -> (Vec<CapStep>, ComputeNode) {
        let mut node = ComputeNode::davide(0);
        let mut ctl = PiCapController::new(Watts(cap_w));
        let traj = ctl.run(&mut node, NodeLoad::FULL, Seconds(0.1), steps);
        (traj, node)
    }

    #[test]
    fn controller_brings_node_under_cap() {
        let (traj, _) = capped_run(1500.0, 200);
        let last = traj.last().unwrap();
        assert!(
            last.power <= Watts(1500.0) + Watts(25.0),
            "settled power {} must respect 1.5 kW cap",
            last.power
        );
        let q = evaluate(&traj, Watts(25.0));
        assert!(q.settle_steps < 50, "settles quickly: {}", q.settle_steps);
        assert!(q.mean_perf_after_settle < 1.0, "capping costs performance");
        assert!(q.mean_perf_after_settle > 0.5, "but not catastrophically");
    }

    #[test]
    fn loose_cap_costs_nothing() {
        let (traj, node) = capped_run(2500.0, 100);
        let q = evaluate(&traj, Watts(25.0));
        assert_eq!(q.violation_fraction, 0.0);
        assert!(
            (q.mean_perf_after_settle - node.cpus[0].spec.dvfs.perf_factor(node.cpus[0].pstate()))
                .abs()
                < 0.2
        );
        assert!(q.mean_perf_after_settle >= 1.0, "no throttling needed");
    }

    #[test]
    fn tighter_cap_costs_more_performance() {
        let (t_loose, _) = capped_run(1800.0, 300);
        let (t_tight, _) = capped_run(1300.0, 300);
        let q_loose = evaluate(&t_loose, Watts(25.0));
        let q_tight = evaluate(&t_tight, Watts(25.0));
        assert!(
            q_tight.mean_perf_after_settle < q_loose.mean_perf_after_settle,
            "tight {} !< loose {}",
            q_tight.mean_perf_after_settle,
            q_loose.mean_perf_after_settle
        );
    }

    #[test]
    fn controller_recovers_when_cap_relaxes() {
        let mut node = ComputeNode::davide(0);
        let mut ctl = PiCapController::new(Watts(1300.0));
        ctl.run(&mut node, NodeLoad::FULL, Seconds(0.1), 200);
        let throttled_perf = node.cpus[0].spec.dvfs.perf_factor(node.cpus[0].pstate());
        ctl.set_cap(Watts(2400.0));
        ctl.run(&mut node, NodeLoad::FULL, Seconds(0.1), 200);
        let relaxed_perf = node.cpus[0].spec.dvfs.perf_factor(node.cpus[0].pstate());
        assert!(relaxed_perf > throttled_perf, "unthrottles after relax");
    }

    #[test]
    fn rapl_window_average_and_headroom() {
        let mut rapl = RaplWindow::new(Watts(1000.0), Seconds(10.0));
        for _ in 0..5 {
            rapl.observe(Watts(800.0), Seconds(1.0));
        }
        assert!(rapl.compliant());
        assert!((rapl.average().0 - 800.0).abs() < 1e-9);
        // Headroom allows a burst above the cap.
        assert!(rapl.headroom() > Watts(1000.0));
        // A long burst eventually violates.
        for _ in 0..20 {
            rapl.observe(Watts(1400.0), Seconds(1.0));
        }
        assert!(!rapl.compliant());
    }

    #[test]
    fn rapl_allows_short_excursions_pi_does_not() {
        // The defining RAPL property: transient spikes are fine if the
        // window average holds.
        let mut rapl = RaplWindow::new(Watts(1000.0), Seconds(10.0));
        for i in 0..10 {
            let p = if i % 2 == 0 { 1300.0 } else { 650.0 };
            rapl.observe(Watts(p), Seconds(1.0));
        }
        assert!(rapl.compliant(), "975 W average under 1 kW cap");
    }

    #[test]
    fn rapl_window_slides() {
        let mut rapl = RaplWindow::new(Watts(1000.0), Seconds(5.0));
        for _ in 0..10 {
            rapl.observe(Watts(2000.0), Seconds(1.0));
        }
        for _ in 0..10 {
            rapl.observe(Watts(100.0), Seconds(1.0));
        }
        // Old hot samples have slid out of the 5 s window.
        assert!((rapl.average().0 - 100.0).abs() < 1e-9);
        assert!(rapl.compliant());
    }

    #[test]
    fn evaluate_on_empty_is_sane() {
        let q = evaluate(&[], Watts(10.0));
        assert_eq!(q.violation_fraction, 0.0);
        assert_eq!(q.settle_steps, 0);
    }

    fn ladder_ctl(cap_w: f64) -> LadderCapController {
        // 2 s sustain, 50 W band over the POWER8 perf ladder.
        LadderCapController::power8(Watts(cap_w), Watts(50.0), 2.0)
    }

    #[test]
    fn ladder_steps_down_only_on_sustained_overcap() {
        let mut ctl = ladder_ctl(1500.0);
        // A single 1 s spike is inside the sustain window: no action.
        assert_eq!(ctl.observe(Watts(1700.0), Seconds(1.0)), 0);
        assert_eq!(ctl.observe(Watts(1400.0), Seconds(1.0)), 0);
        assert_eq!(ctl.level(), 0, "transient spike tolerated");
        // Sustained overcap crosses the threshold and throttles.
        assert_eq!(ctl.observe(Watts(1700.0), Seconds(1.0)), 0);
        assert_eq!(ctl.observe(Watts(1700.0), Seconds(1.0)), -1);
        assert_eq!(ctl.level(), 1);
        assert!(ctl.speed() < 1.0);
    }

    #[test]
    fn ladder_instrumented_observe_matches_plain_and_counts_actions() {
        let registry = MetricsRegistry::new();
        let obs = CapObs::new(&registry);
        let mut plain = ladder_ctl(1500.0);
        let mut inst = ladder_ctl(1500.0);
        let trace = [1700.0, 1400.0, 1700.0, 1700.0, 1200.0, 1200.0, 1200.0];
        for &w in &trace {
            let a = plain.observe(Watts(w), Seconds(1.0));
            let b = inst.observe_instrumented(Watts(w), Seconds(1.0), &obs);
            assert_eq!(a, b, "instruments must not change control decisions");
        }
        assert_eq!(plain, inst, "controller state identical either way");
        let count = |name: &str| registry.find_counter(name).unwrap().get();
        assert_eq!(count("cap_observations_total"), trace.len() as u64);
        assert_eq!(count("cap_steps_down_total"), 1);
        assert_eq!(count("cap_steps_up_total"), 1);
        let over = registry.find_histogram("cap_overcap_w").unwrap().snapshot();
        assert_eq!(over.count, 3, "three samples exceeded the 1500 W cap");
        assert_eq!(over.max, 200);
    }

    #[test]
    fn ladder_probe_up_guard_prevents_limit_cycle() {
        let mut ctl = ladder_ctl(1500.0);
        for _ in 0..4 {
            ctl.observe(Watts(1800.0), Seconds(1.0));
        }
        assert!(ctl.level() > 0);
        let level = ctl.level();
        // 1400 W has real headroom, but stepping up projects ~1530 W —
        // above cap − band, so the controller holds.
        for _ in 0..8 {
            let action = ctl.observe(Watts(1400.0), Seconds(1.0));
            assert_eq!(action, 0, "projected power blocks the raise");
        }
        assert_eq!(ctl.level(), level);
        // Deep headroom passes the projection and steps back up.
        let mut raised = false;
        for _ in 0..4 {
            raised |= ctl.observe(Watts(1100.0), Seconds(1.0)) == 1;
        }
        assert!(raised, "sustained headroom raises the rung");
    }

    #[test]
    fn ladder_integral_clamped_and_reset_on_retarget() {
        let mut ctl = ladder_ctl(1500.0);
        for _ in 0..10_000 {
            ctl.observe(Watts(2300.0), Seconds(1.0));
        }
        assert!(
            ctl.integral() <= ctl.windup_limit,
            "anti-windup clamp holds"
        );
        assert_eq!(ctl.speed(), ctl.ladder[ctl.ladder.len() - 1]);
        ctl.set_cap(Watts(2400.0));
        assert_eq!(ctl.integral(), 0.0, "retarget discharges the integral");
        // With the relaxed cap the node recovers to nominal promptly.
        let mut steps = 0;
        while ctl.level() > 0 && steps < 100 {
            ctl.observe(Watts(1600.0), Seconds(1.0));
            steps += 1;
        }
        assert_eq!(ctl.level(), 0, "recovers after relax");
        assert!(steps <= 5 * 2 * 3, "no windup-induced stall: {steps} steps");
    }

    #[test]
    fn ladder_boundary_error_is_in_band_and_resets_timers() {
        let mut ctl =
            LadderCapController::new(Watts(1000.0), vec![1.0, 0.8, 0.6], Watts(10.0), 2.0);
        // 1 s of overcap accrued…
        assert_eq!(ctl.observe(Watts(1011.0), Seconds(1.0)), 0);
        // …then an error of exactly +band: inside the hysteresis band,
        // so the sustain timer clears and the next step down needs the
        // full 2 s again.
        assert_eq!(ctl.observe(Watts(1010.0), Seconds(1.0)), 0);
        assert_eq!(ctl.observe(Watts(1011.0), Seconds(1.0)), 0);
        assert_eq!(ctl.level(), 0, "boundary sample cleared the overcap timer");
        assert_eq!(ctl.observe(Watts(1011.0), Seconds(1.0)), -1);
        assert_eq!(ctl.level(), 1);

        // Same at the lower edge: exactly −band is in-band and clears
        // the headroom timer.
        assert_eq!(ctl.observe(Watts(700.0), Seconds(1.0)), 0);
        assert_eq!(ctl.observe(Watts(990.0), Seconds(1.0)), 0);
        assert_eq!(ctl.observe(Watts(700.0), Seconds(1.0)), 0);
        assert_eq!(ctl.level(), 1, "boundary sample cleared the headroom timer");
        assert_eq!(ctl.observe(Watts(700.0), Seconds(1.0)), 1);
        assert_eq!(ctl.level(), 0);
    }

    #[test]
    fn ladder_windup_clamp_rails_are_exact_and_recovery_is_prompt() {
        let mut ctl = LadderCapController::new(Watts(1000.0), vec![1.0, 0.5], Watts(10.0), 1.0);
        // Hours over cap: the integral saturates exactly at the clamp.
        for _ in 0..100_000 {
            ctl.observe(Watts(3000.0), Seconds(1.0));
        }
        assert_eq!(ctl.integral(), ctl.windup_limit, "positive rail");
        assert_eq!(ctl.level(), 1);
        // The saturated integral must not delay recovery: one sustain
        // period of deep headroom steps straight back up.
        assert_eq!(ctl.observe(Watts(400.0), Seconds(1.0)), 1);
        assert_eq!(ctl.level(), 0);
        // Hours of idle discharge it to the negative rail, exactly.
        for _ in 0..100_000 {
            ctl.observe(Watts(0.0), Seconds(1.0));
        }
        assert_eq!(ctl.integral(), -ctl.windup_limit, "negative rail");
    }

    #[test]
    fn ladder_probe_up_guard_holds_after_cap_drop() {
        let mut ctl =
            LadderCapController::new(Watts(1000.0), vec![1.0, 0.8, 0.6], Watts(10.0), 2.0);
        // Drive to the bottom rung at 1200 W under a 1000 W cap.
        for _ in 0..8 {
            ctl.observe(Watts(1200.0), Seconds(1.0));
        }
        assert_eq!(ctl.level(), 2);
        // The rack manager drops the budget. 700 W now reads as
        // headroom (error −60 < −band), but the projection at the next
        // rung — 700 · 0.8/0.6 ≈ 933 W — does not clear 760 − 10 W, so
        // the guard holds no matter how long the headroom sustains.
        ctl.set_cap(Watts(760.0));
        for _ in 0..10 {
            assert_eq!(ctl.observe(Watts(700.0), Seconds(1.0)), 0);
        }
        assert_eq!(ctl.level(), 2, "probe-up guard holds after the drop");
        // A genuinely loose cap lets the same measurements climb back.
        ctl.set_cap(Watts(1300.0));
        let climbed: i32 = (0..6)
            .map(|_| ctl.observe(Watts(700.0), Seconds(1.0)))
            .sum();
        assert_eq!(climbed, 2, "climbs one rung per sustain period");
        assert_eq!(ctl.level(), 0);
    }

    #[test]
    fn ladder_floor_is_respected() {
        let mut ctl = LadderCapController::new(Watts(500.0), vec![1.0, 0.7, 0.5], Watts(10.0), 0.0);
        for _ in 0..10 {
            ctl.observe(Watts(2000.0), Seconds(1.0));
        }
        assert_eq!(ctl.speed(), 0.5, "clamped at the ladder bottom");
    }
}
