//! Node-internal and cluster-level interconnect models.
//!
//! §II-B/D/H of the paper: inside a node, each POWER8+ socket talks to its
//! two P100s over NVLink (two ganged links per peer pair → 80 GB/s
//! bidirectional), while PCIe gen3 carries power/management traffic; a
//! 16× PCIe gen3 slot per socket hosts an EDR InfiniBand HCA (dual-plane,
//! 2 × 100 Gb/s per node) into a non-oversubscribed fat-tree.

use crate::units::{Bytes, GBps, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Classes of point-to-point links present in a D.A.V.I.D.E. node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// NVIDIA NVLink 1.0 (per-link 40 GB/s bidirectional).
    NvLink,
    /// PCI Express generation 3.
    PcieGen3,
    /// Mellanox EDR InfiniBand (100 Gb/s per port).
    EdrInfiniband,
    /// POWER8 SMP interconnect between the two sockets.
    SmpBus,
}

/// A point-to-point transfer channel with latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Link technology.
    pub kind: LinkKind,
    /// Unidirectional data bandwidth.
    pub bandwidth: GBps,
    /// One-way latency.
    pub latency: Seconds,
    /// Active-link power draw.
    pub power: Watts,
}

impl Link {
    /// An NVLink *gang* of `links` links (D.A.V.I.D.E. uses gangs of 2 for
    /// 80 GB/s bidirectional = 40 GB/s per direction ganged ×2).
    pub fn nvlink_gang(links: u32) -> Self {
        assert!((1..=4).contains(&links), "P100 supports gangs of 1..=4");
        Link {
            kind: LinkKind::NvLink,
            // 20 GB/s per direction per link (NVHS 8 lanes @ 20 Gb/s).
            bandwidth: GBps(20.0 * links as f64),
            latency: Seconds(1.3e-6),
            power: Watts(4.0 * links as f64),
        }
    }

    /// PCIe gen3 with `lanes` lanes (~0.985 GB/s per lane effective).
    pub fn pcie_gen3(lanes: u32) -> Self {
        Link {
            kind: LinkKind::PcieGen3,
            bandwidth: GBps(0.985 * lanes as f64),
            latency: Seconds(1.0e-6),
            power: Watts(0.4 * lanes as f64),
        }
    }

    /// One EDR InfiniBand port: 100 Gb/s ≈ 12.1 GB/s effective after
    /// 64b/66b encoding and transport overhead.
    pub fn edr_port() -> Self {
        Link {
            kind: LinkKind::EdrInfiniband,
            bandwidth: GBps(12.1),
            latency: Seconds(0.6e-6),
            power: Watts(14.0),
        }
    }

    /// The POWER8 SMP bus between sockets.
    pub fn smp_bus() -> Self {
        Link {
            kind: LinkKind::SmpBus,
            bandwidth: GBps(38.4),
            latency: Seconds(0.15e-6),
            power: Watts(6.0),
        }
    }

    /// Time to move `size` bytes one way: latency + size/bandwidth.
    pub fn transfer_time(&self, size: Bytes) -> Seconds {
        Seconds(self.latency.0 + size.0 / (self.bandwidth.0 * 1e9))
    }

    /// Effective bandwidth achieved for a message of `size` bytes
    /// (latency-degraded; approaches line rate for large messages).
    pub fn effective_bandwidth(&self, size: Bytes) -> GBps {
        GBps(size.0 / 1e9 / self.transfer_time(size).0)
    }
}

/// The intra-node wiring of a D.A.V.I.D.E. compute node: which link class
/// connects each pair of endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodePath {
    /// CPU socket to one of its two local GPUs.
    CpuToLocalGpu,
    /// The two GPUs attached to the same socket.
    GpuToGpuSameSocket,
    /// GPUs attached to different sockets (must cross the SMP bus).
    GpuToGpuCrossSocket,
    /// CPU socket to the other socket.
    CpuToCpu,
    /// CPU socket to its InfiniBand HCA.
    CpuToHca,
    /// Management/bulk path CPU↔GPU over PCIe (pre-NVLink baseline).
    CpuToGpuPcie,
}

/// Resolve the link used for an intra-node path in the D.A.V.I.D.E.
/// wiring (§II-D): NVLink gangs of 2 between CPU↔GPU and GPU↔GPU on the
/// same socket; PCIe for management; SMP for cross-socket.
pub fn davide_node_link(path: NodePath) -> Link {
    match path {
        NodePath::CpuToLocalGpu | NodePath::GpuToGpuSameSocket => Link::nvlink_gang(2),
        NodePath::GpuToGpuCrossSocket | NodePath::CpuToCpu => Link::smp_bus(),
        NodePath::CpuToHca => Link::pcie_gen3(16),
        NodePath::CpuToGpuPcie => Link::pcie_gen3(16),
    }
}

/// A non-oversubscribed fat-tree EDR fabric (§II-H: dual-plane, fat-tree,
/// no oversubscription).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FatTree {
    /// Number of end nodes.
    pub nodes: u32,
    /// Independent rails/planes (D.A.V.I.D.E.: 2).
    pub planes: u32,
    /// Switch radix (EDR: typically 36).
    pub radix: u32,
    /// Per-hop switch latency.
    pub hop_latency: Seconds,
    /// Per-port link model.
    pub port: Link,
}

impl FatTree {
    /// The D.A.V.I.D.E. fabric: dual-plane EDR fat-tree for `nodes` nodes.
    pub fn davide(nodes: u32) -> Self {
        FatTree {
            nodes,
            planes: 2,
            radix: 36,
            hop_latency: Seconds(0.09e-6),
            port: Link::edr_port(),
        }
    }

    /// Number of tree levels needed (radix/2 down-ports per switch).
    pub fn levels(&self) -> u32 {
        let down = (self.radix / 2).max(1) as u64;
        let mut cap = down;
        let mut levels = 1;
        while cap < self.nodes as u64 {
            cap *= down;
            levels += 1;
        }
        levels
    }

    /// Switch hops between two distinct nodes (up to the common ancestor
    /// and down; worst case `2·levels`, best case 2 under one leaf).
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        if a == b {
            return 0;
        }
        let down = (self.radix / 2).max(1);
        let mut ga = a / down;
        let mut gb = b / down;
        let mut h = 2;
        while ga != gb {
            ga /= down;
            gb /= down;
            h += 2;
        }
        h
    }

    /// Aggregate injection bandwidth per node across all planes.
    pub fn node_bandwidth(&self) -> GBps {
        self.port.bandwidth * self.planes as f64
    }

    /// End-to-end time for a message of `size` bytes between nodes `a`
    /// and `b`, striped across the planes.
    pub fn message_time(&self, a: u32, b: u32, size: Bytes) -> Seconds {
        if a == b {
            return Seconds(0.0);
        }
        let hops = self.hops(a, b) as f64;
        let wire = self.port.latency.0 + hops * self.hop_latency.0;
        let serialisation = size.0 / (self.node_bandwidth().0 * 1e9);
        Seconds(wire + serialisation)
    }

    /// Full-bisection check: a non-oversubscribed fat-tree's bisection
    /// bandwidth equals half the aggregate injection bandwidth.
    pub fn bisection_bandwidth(&self) -> GBps {
        self.node_bandwidth() * (self.nodes as f64 / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvlink_gang_bandwidths() {
        // Single link: 40 GB/s bidirectional = 20 GB/s per direction.
        assert_eq!(Link::nvlink_gang(1).bandwidth, GBps(20.0));
        // D.A.V.I.D.E. gang of two: 80 GB/s bidirectional.
        assert_eq!(Link::nvlink_gang(2).bandwidth, GBps(40.0));
        // Max gang of 4: 160 GB/s bidirectional aggregate.
        assert_eq!(Link::nvlink_gang(4).bandwidth, GBps(80.0));
    }

    #[test]
    #[should_panic(expected = "gangs of 1..=4")]
    fn nvlink_gang_bounds() {
        Link::nvlink_gang(5);
    }

    #[test]
    fn nvlink_beats_pcie_for_bulk() {
        let nv = davide_node_link(NodePath::CpuToLocalGpu);
        let pcie = davide_node_link(NodePath::CpuToGpuPcie);
        let msg = Bytes::from_gb(1.0);
        assert!(nv.transfer_time(msg) < pcie.transfer_time(msg));
        let speedup = pcie.transfer_time(msg).0 / nv.transfer_time(msg).0;
        assert!(speedup > 2.0, "NVLink ≥2.5× PCIe x16, got {speedup:.2}×");
    }

    #[test]
    fn small_messages_latency_bound() {
        let nv = Link::nvlink_gang(2);
        let tiny = Bytes(64.0);
        let eff = nv.effective_bandwidth(tiny);
        assert!(eff.0 < 1.0, "64-byte messages nowhere near line rate");
        let big = Bytes::from_gb(1.0);
        assert!(nv.effective_bandwidth(big).0 > 39.0);
    }

    #[test]
    fn edr_dual_plane_node_bandwidth() {
        let ft = FatTree::davide(45);
        // 2 × 100 Gb/s ≈ 24.2 GB/s effective per node (paper: 200 Gb/s).
        assert!((ft.node_bandwidth().0 - 24.2).abs() < 0.01);
    }

    #[test]
    fn fat_tree_levels_and_hops() {
        let ft = FatTree::davide(45);
        // 45 nodes fit under 18-port leaves in two levels.
        assert_eq!(ft.levels(), 2);
        assert_eq!(ft.hops(0, 0), 0);
        assert_eq!(ft.hops(0, 1), 2, "same leaf");
        assert_eq!(ft.hops(0, 20), 4, "different leaves");
        // Symmetry.
        assert_eq!(ft.hops(3, 40), ft.hops(40, 3));
    }

    #[test]
    fn message_time_scales_with_size_and_distance() {
        let ft = FatTree::davide(45);
        let small = ft.message_time(0, 1, Bytes(1024.0));
        let large = ft.message_time(0, 1, Bytes::from_gb(1.0));
        assert!(large > small);
        let near = ft.message_time(0, 1, Bytes(1024.0));
        let far = ft.message_time(0, 44, Bytes(1024.0));
        assert!(far > near, "more hops add latency");
        assert_eq!(ft.message_time(7, 7, Bytes(1e6)), Seconds(0.0));
    }

    #[test]
    fn bisection_is_full() {
        let ft = FatTree::davide(45);
        let per_node = ft.node_bandwidth();
        assert!((ft.bisection_bandwidth().0 - per_node.0 * 22.5).abs() < 1e-9);
    }

    #[test]
    fn davide_wiring_matches_paper() {
        assert_eq!(
            davide_node_link(NodePath::CpuToLocalGpu).kind,
            LinkKind::NvLink
        );
        assert_eq!(
            davide_node_link(NodePath::GpuToGpuCrossSocket).kind,
            LinkKind::SmpBus
        );
        assert_eq!(
            davide_node_link(NodePath::CpuToHca).kind,
            LinkKind::PcieGen3
        );
        // The 16× PCIe gen3 slot gives ~15.8 GB/s.
        assert!((davide_node_link(NodePath::CpuToHca).bandwidth.0 - 15.76).abs() < 0.01);
    }
}
