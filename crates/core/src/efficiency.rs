//! Top500/Green500 context data and efficiency arithmetic (§I, §V-A).
//!
//! The paper motivates the design with the November-2016 lists: the power
//! wall at Tianhe-2, TaihuLight's 3× efficiency jump, and the P100-based
//! DGX SaturnV / Piz Daint topping the Green500. These published numbers
//! are reproduced here as a static table so E2 can regenerate the
//! comparison against the simulated D.A.V.I.D.E.

use crate::units::{gflops_per_watt, Gflops, Watts};
use serde::{Deserialize, Serialize};

/// A supercomputer as it appears on the lists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineEntry {
    /// List name.
    pub name: &'static str,
    /// Linpack Rmax.
    pub rmax: Gflops,
    /// Measured IT power during the run.
    pub power: Watts,
    /// Whether the design couples CPUs with accelerators.
    pub heterogeneous: bool,
    /// Year of the listed configuration.
    pub year: u32,
}

impl MachineEntry {
    /// Green500 metric for this entry.
    pub fn efficiency(&self) -> f64 {
        gflops_per_watt(self.rmax, self.power)
    }
}

/// The machines the paper cites, with their published Rmax/power.
pub fn reference_machines() -> Vec<MachineEntry> {
    vec![
        MachineEntry {
            name: "Sunway TaihuLight",
            rmax: Gflops(93.0e6),
            power: Watts(15.4e6),
            heterogeneous: false,
            year: 2016,
        },
        MachineEntry {
            name: "Tianhe-2",
            rmax: Gflops(33.8e6),
            power: Watts(17.8e6),
            heterogeneous: true,
            year: 2013,
        },
        MachineEntry {
            name: "DGX SaturnV",
            rmax: Gflops(3_307.0e3),
            power: Watts(349.5e3),
            heterogeneous: true,
            year: 2016,
        },
        MachineEntry {
            name: "Piz Daint",
            rmax: Gflops(9_779.0e3),
            power: Watts(1_312.0e3),
            heterogeneous: true,
            year: 2016,
        },
    ]
}

/// Ratio of two machines' efficiencies (`a` relative to `b`).
pub fn efficiency_ratio(a: &MachineEntry, b: &MachineEntry) -> f64 {
    a.efficiency() / b.efficiency()
}

/// Estimate a Linpack Rmax from an architectural peak: GPU-dense systems
/// of the P100 era sustained ~75–85 % of Rpeak on HPL.
pub fn estimated_rmax(rpeak: Gflops, hpl_efficiency: f64) -> Gflops {
    assert!((0.0..=1.0).contains(&hpl_efficiency));
    rpeak * hpl_efficiency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_efficiencies() {
        let machines = reference_machines();
        let taihu = &machines[0];
        let tianhe = &machines[1];
        let saturnv = &machines[2];
        let daint = &machines[3];
        // §I: TaihuLight ≈ 6 GFlops/W, Tianhe-2 ≈ 2 GFlops/W.
        assert!((taihu.efficiency() - 6.0).abs() < 0.1);
        assert!((tianhe.efficiency() - 1.9).abs() < 0.1);
        // §I: "energy efficiency increment of 3x w.r.t. Tianhe-2".
        let ratio = efficiency_ratio(taihu, tianhe);
        assert!((ratio - 3.2).abs() < 0.2, "ratio={ratio}");
        // §I: SaturnV 9.5 and Piz Daint 7.5 GFlops/W.
        assert!((saturnv.efficiency() - 9.5).abs() < 0.2);
        assert!((daint.efficiency() - 7.5).abs() < 0.2);
    }

    #[test]
    fn p100_machines_top_the_ranking() {
        let mut machines = reference_machines();
        machines.sort_by(|a, b| b.efficiency().partial_cmp(&a.efficiency()).unwrap());
        assert_eq!(machines[0].name, "DGX SaturnV");
        assert_eq!(machines[1].name, "Piz Daint");
    }

    #[test]
    fn rmax_estimation() {
        let rpeak = Gflops::from_tflops(990.0);
        let rmax = estimated_rmax(rpeak, 0.8);
        assert!((rmax.tflops() - 792.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rmax_estimation_rejects_bad_fraction() {
        estimated_rmax(Gflops(1.0), 1.5);
    }
}
