//! Dynamic voltage and frequency scaling (DVFS) support.
//!
//! Both the POWER8 sockets and the P100 accelerators expose a ladder of
//! operating points. Reactive power capping ([`crate::capping`]) walks this
//! ladder; the energy-proportionality APIs (§IV of the paper) pin it.

use crate::units::Hertz;
use serde::{Deserialize, Serialize};

/// A single DVFS operating point: a frequency/voltage pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PState {
    /// Core clock.
    pub freq: Hertz,
    /// Supply voltage in volts.
    pub voltage: f64,
}

/// An ordered ladder of operating points (ascending frequency).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    states: Vec<PState>,
    /// Index of the nominal (default) state.
    nominal: usize,
}

impl DvfsTable {
    /// Build a table from `(ghz, volts)` pairs; `nominal` indexes the
    /// default operating point.
    ///
    /// # Panics
    /// Panics if the list is empty, unsorted in frequency, or `nominal`
    /// is out of range.
    pub fn new(points: &[(f64, f64)], nominal: usize) -> Self {
        assert!(!points.is_empty(), "DVFS table cannot be empty");
        assert!(nominal < points.len(), "nominal index out of range");
        let states: Vec<PState> = points
            .iter()
            .map(|&(ghz, v)| PState {
                freq: Hertz::from_ghz(ghz),
                voltage: v,
            })
            .collect();
        assert!(
            states.windows(2).all(|w| w[0].freq < w[1].freq),
            "DVFS table must be sorted by ascending frequency"
        );
        DvfsTable { states, nominal }
    }

    /// Linearly-spaced ladder from `(f_min, v_min)` to `(f_max, v_max)`
    /// with `n` steps — a good model of vendor tables.
    pub fn linear(f_min_ghz: f64, v_min: f64, f_max_ghz: f64, v_max: f64, n: usize) -> Self {
        assert!(n >= 2, "need at least two operating points");
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let a = i as f64 / (n - 1) as f64;
                (
                    f_min_ghz + a * (f_max_ghz - f_min_ghz),
                    v_min + a * (v_max - v_min),
                )
            })
            .collect();
        DvfsTable::new(&pts, n - 1)
    }

    /// Number of operating points.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always false: construction rejects empty tables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Operating point at `idx`.
    #[inline]
    pub fn state(&self, idx: usize) -> PState {
        self.states[idx]
    }

    /// Index of the nominal operating point.
    #[inline]
    pub fn nominal_index(&self) -> usize {
        self.nominal
    }

    /// The nominal operating point.
    #[inline]
    pub fn nominal(&self) -> PState {
        self.states[self.nominal]
    }

    /// Highest operating point.
    #[inline]
    pub fn max(&self) -> PState {
        *self.states.last().expect("non-empty by construction")
    }

    /// Lowest operating point.
    #[inline]
    pub fn min(&self) -> PState {
        self.states[0]
    }

    /// One step down the ladder from `idx` (clamped at the bottom).
    #[inline]
    pub fn step_down(&self, idx: usize) -> usize {
        idx.saturating_sub(1)
    }

    /// One step up the ladder from `idx` (clamped at the top).
    #[inline]
    pub fn step_up(&self, idx: usize) -> usize {
        (idx + 1).min(self.states.len() - 1)
    }

    /// Dynamic-power scaling factor of state `idx` relative to the nominal
    /// point: `(V/Vn)² · (f/fn)` — the classic CMOS model.
    pub fn dynamic_power_factor(&self, idx: usize) -> f64 {
        let s = self.states[idx];
        let n = self.nominal();
        (s.voltage / n.voltage).powi(2) * (s.freq / n.freq)
    }

    /// Compute-bound performance scaling factor relative to nominal
    /// (linear in frequency).
    pub fn perf_factor(&self, idx: usize) -> f64 {
        self.states[idx].freq / self.nominal().freq
    }
}

/// The POWER8+ socket ladder used in D.A.V.I.D.E. (8-core part, turbo
/// ≈ 4.0 GHz, nominal 3.26 GHz, p-safe 2.06 GHz).
pub fn power8_table() -> DvfsTable {
    DvfsTable::new(
        &[
            (2.06, 0.85),
            (2.30, 0.89),
            (2.56, 0.93),
            (2.80, 0.97),
            (3.06, 1.01),
            (3.26, 1.05), // nominal
            (3.50, 1.09),
            (3.76, 1.13),
            (4.02, 1.17), // turbo
        ],
        5,
    )
}

/// The Tesla P100 (SXM2) graphics-clock ladder: 544 MHz floor to 1480 MHz
/// boost, nominal at the 1328 MHz base clock.
pub fn p100_table() -> DvfsTable {
    DvfsTable::new(
        &[
            (0.544, 0.70),
            (0.696, 0.74),
            (0.848, 0.78),
            (1.000, 0.83),
            (1.152, 0.88),
            (1.328, 0.95), // base/nominal
            (1.480, 1.00), // boost
        ],
        5,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_ordered_and_nominal_valid() {
        for table in [power8_table(), p100_table()] {
            assert!(table.len() >= 5);
            for i in 1..table.len() {
                assert!(table.state(i).freq > table.state(i - 1).freq);
                assert!(table.state(i).voltage >= table.state(i - 1).voltage);
            }
            assert!(table.nominal_index() < table.len());
        }
    }

    #[test]
    fn stepping_clamps() {
        let t = power8_table();
        assert_eq!(t.step_down(0), 0);
        assert_eq!(t.step_up(t.len() - 1), t.len() - 1);
        assert_eq!(t.step_down(3), 2);
        assert_eq!(t.step_up(3), 4);
    }

    #[test]
    fn nominal_factors_are_unity() {
        let t = power8_table();
        let n = t.nominal_index();
        assert!((t.dynamic_power_factor(n) - 1.0).abs() < 1e-12);
        assert!((t.perf_factor(n) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_factor_superlinear_in_frequency() {
        // V scales with f, so dynamic power should fall faster than perf
        // as we step down — the whole point of DVFS energy savings.
        let t = power8_table();
        let n = t.nominal_index();
        let p = t.dynamic_power_factor(n - 2);
        let s = t.perf_factor(n - 2);
        assert!(p < s, "power factor {p} must drop below perf factor {s}");
    }

    #[test]
    fn linear_builder() {
        let t = DvfsTable::linear(1.0, 0.8, 2.0, 1.0, 5);
        assert_eq!(t.len(), 5);
        assert!((t.state(2).freq.ghz() - 1.5).abs() < 1e-12);
        assert!((t.state(2).voltage - 0.9).abs() < 1e-12);
        assert_eq!(t.nominal_index(), 4);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_table_rejected() {
        DvfsTable::new(&[(2.0, 0.9), (1.0, 0.8)], 0);
    }

    #[test]
    fn p100_turbo_reaches_1480() {
        let t = p100_table();
        assert!((t.max().freq.ghz() - 1.48).abs() < 1e-9);
    }
}
