//! Simulated time.
//!
//! The discrete-event engine counts time in integer nanoseconds so that
//! event ordering is exact and runs are bit-reproducible; conversions to
//! [`Seconds`](crate::units::Seconds) are provided at the edges.

use crate::units::Seconds;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since t=0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest ns).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * 1e9).round() as u64)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value as a [`Seconds`] quantity.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds(self.as_secs_f64())
    }

    /// Duration since an earlier instant; saturates at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of a duration.
    #[inline]
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (rounded to the nearest ns).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimDuration cannot be negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Value in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value as a [`Seconds`] quantity.
    #[inline]
    pub fn as_seconds(self) -> Seconds {
        Seconds(self.as_secs_f64())
    }

    /// Scale by a dimensionless factor (rounded to the nearest ns).
    #[inline]
    pub fn mul_f64(self, k: f64) -> Self {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2), SimTime(2_000_000_000));
        assert_eq!(SimTime::from_millis(1), SimTime(1_000_000));
        assert_eq!(SimTime::from_micros(1), SimTime(1_000));
        assert_eq!(SimTime::from_secs_f64(1.5).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_secs_f64(), 0.25);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_millis(500),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(5);
        let late = SimTime::from_secs(8);
        assert_eq!(late.since(early), SimDuration::from_secs(3));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn scaling() {
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(0.5),
            SimDuration::from_secs(5)
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![SimTime::from_secs(3), SimTime::ZERO, SimTime::from_secs(1)];
        v.sort();
        assert_eq!(
            v,
            vec![SimTime::ZERO, SimTime::from_secs(1), SimTime::from_secs(3)]
        );
    }
}
