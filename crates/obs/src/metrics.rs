//! Lock-free metrics registry: counters, gauges, log₂ histograms.
//!
//! Registration (naming a metric, getting a handle) takes a lock once;
//! after that every operation on the returned handle is a relaxed
//! atomic — no locks, no allocation — so handles are safe to use from
//! the zero-alloc ingest hot path. [`MetricsRegistry::render_text`]
//! walks the registry and emits a Prometheus-style text exposition.

use parking_lot::RwLock;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: bucket 0 holds value 0, bucket `k`
/// (1..=64) holds values whose highest set bit is bit `k-1`, i.e.
/// `2^(k-1) <= v < 2^k`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value: 0 for 0, else `64 - leading_zeros`,
/// so exact powers of two `2^k` land deterministically in bucket `k + 1`
/// (the half-open range `[2^k, 2^(k+1))`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket, used as the deterministic
/// quantile estimate: bucket 0 → 0, bucket `k` → `2^k - 1`.
#[inline]
pub fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// Monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge handle (f64 bits in an atomic). Cloning shares the
/// underlying cell.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add a delta (read-modify-write loop; gauges are not hot-path).
    #[inline]
    pub fn add(&self, d: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + d).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed histogram handle for non-negative integer samples
/// (conventionally nanoseconds). Cloning shares the underlying cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one sample. Pure relaxed atomics; zero-alloc.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time copy of the bucket array and summary
    /// stats. (Buckets are read individually; under concurrent writers
    /// the snapshot is approximate, which is fine for exposition.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| c.buckets[i].load(Ordering::Relaxed)),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time histogram readout.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Deterministic quantile estimate: the inclusive upper bound of the
    /// first bucket whose cumulative count reaches `q * count`. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                // The max is a tighter bound than the top bucket's edge.
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean sample value, 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Escape one raw label value for Prometheus text exposition:
/// `\` → `\\`, `"` → `\"`, newline → `\n`. The registry stores values
/// raw; [`MetricsRegistry::render_text`] applies this at exposition
/// time, and renderers that format label values themselves (the query
/// front-end, the self-telemetry bridge) should do the same.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape the inside of a rendered `{...}` label section. Values were
/// stored raw, so a `"` is a closing delimiter only when followed by
/// `,` or the end of the section; everything else inside a value is
/// content and gets escaped.
fn escape_label_section(inner: &str) -> String {
    let chars: Vec<char> = inner.chars().collect();
    let mut out = String::with_capacity(inner.len());
    let mut in_value = false;
    for (i, &c) in chars.iter().enumerate() {
        if !in_value {
            out.push(c);
            if c == '"' {
                in_value = true;
            }
            continue;
        }
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '"' => match chars.get(i + 1) {
                None | Some(',') => {
                    out.push('"');
                    in_value = false;
                }
                _ => out.push_str("\\\""),
            },
            _ => out.push(c),
        }
    }
    out
}

/// The exposition form of a stored metric name: label values escaped,
/// bare names passed through unchanged.
fn render_name(name: &str) -> Cow<'_, str> {
    match name.find('{') {
        Some(open) if name.ends_with('}') => {
            let inner = &name[open + 1..name.len() - 1];
            let escaped = escape_label_section(inner);
            if escaped == inner {
                Cow::Borrowed(name)
            } else {
                Cow::Owned(format!("{}{{{escaped}}}", &name[..open]))
            }
        }
        _ => Cow::Borrowed(name),
    }
}

/// Federation-wide rollup: sum every *counter* across the given rack
/// registries, keyed by metric name, in sorted name order. Counters are
/// the only kind whose site-level value is the plain sum of the rack
/// values, which makes the rollup deterministic — gauges and histogram
/// quantiles stay per-rack.
pub fn rollup_counters<'a>(
    registries: impl IntoIterator<Item = &'a MetricsRegistry>,
) -> Vec<(String, u64)> {
    let mut sums: BTreeMap<String, u64> = BTreeMap::new();
    for r in registries {
        let g = r.inner.read();
        for (name, m) in &g.by_name {
            if let Metric::Counter(c) = m {
                *sums.entry(name.clone()).or_insert(0) += c.get();
            }
        }
    }
    sums.into_iter().collect()
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Default)]
struct Inner {
    by_name: HashMap<String, Metric>,
}

/// Registry of named metrics. Registration is idempotent: asking for an
/// existing name returns a handle to the same cells (panics if the kind
/// differs — that is a wiring bug).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or fetch) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.inner.write();
        match g
            .by_name
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.inner.write();
        match g
            .by_name
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.inner.write();
        match g
            .by_name
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram(Arc::new(HistogramCore::new()))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Look up an already-registered histogram without creating it.
    pub fn find_histogram(&self, name: &str) -> Option<Histogram> {
        match self.inner.read().by_name.get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Look up an already-registered counter without creating it.
    pub fn find_counter(&self, name: &str) -> Option<Counter> {
        match self.inner.read().by_name.get(name) {
            Some(Metric::Counter(c)) => Some(c.clone()),
            _ => None,
        }
    }

    /// Visit every metric as flat `(series_name, value)` samples, in
    /// sorted name order — the feed for the self-telemetry bridge.
    /// Histograms expand to `_count`/`_sum`/`_max`/`_p50`/`_p95`/`_p99`.
    pub fn visit_samples(&self, mut f: impl FnMut(&str, f64)) {
        let g = self.inner.read();
        let mut names: Vec<&String> = g.by_name.keys().collect();
        names.sort();
        let mut scratch = String::new();
        for name in names {
            match &g.by_name[name.as_str()] {
                Metric::Counter(c) => f(name, c.get() as f64),
                Metric::Gauge(gg) => f(name, gg.get()),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    for (suffix, v) in [
                        ("_count", s.count as f64),
                        ("_sum", s.sum as f64),
                        ("_max", s.max as f64),
                        ("_p50", s.quantile(0.50) as f64),
                        ("_p95", s.quantile(0.95) as f64),
                        ("_p99", s.quantile(0.99) as f64),
                    ] {
                        scratch.clear();
                        scratch.push_str(name);
                        scratch.push_str(suffix);
                        f(&scratch, v);
                    }
                }
            }
        }
    }

    /// Prometheus-style text exposition. Metrics are emitted in sorted
    /// name order; `# TYPE` lines are emitted once per base name (the
    /// part before any `{label}` suffix), so per-topic gauge families
    /// share one TYPE line.
    pub fn render_text(&self) -> String {
        let g = self.inner.read();
        let mut names: Vec<&String> = g.by_name.keys().collect();
        names.sort();
        let mut out = String::new();
        let mut last_base = String::new();
        for name in names {
            let base = name.split('{').next().unwrap_or(name);
            let metric = &g.by_name[name.as_str()];
            if base != last_base {
                let ty = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {base} {ty}\n"));
                last_base = base.to_string();
            }
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{} {}\n", render_name(name), c.get())),
                Metric::Gauge(gg) => out.push_str(&format!("{} {}\n", render_name(name), gg.get())),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let mut cum = 0u64;
                    for (i, &b) in s.buckets.iter().enumerate() {
                        if b == 0 {
                            continue;
                        }
                        cum += b;
                        out.push_str(&format!(
                            "{base}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_upper_bound(i)
                        ));
                    }
                    out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", s.count));
                    out.push_str(&format!("{base}_sum {}\n", s.sum));
                    out.push_str(&format!("{base}_count {}\n", s.count));
                    out.push_str(&format!("{base}_max {}\n", s.max));
                    for (q, label) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
                        out.push_str(&format!("{base}_{label} {}\n", s.quantile(q)));
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("metrics", &self.inner.read().by_name.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = MetricsRegistry::new();
        let c = r.counter("frames_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registering returns the same cell.
        assert_eq!(r.counter("frames_total").get(), 5);

        let g = r.gauge("cap_w");
        g.set(9000.0);
        g.add(-500.0);
        assert_eq!(g.get(), 8500.0);
    }

    /// Satellite test: exact powers of two land in a deterministic
    /// bucket — `2^k` goes to bucket `k + 1`, the low edge of
    /// `[2^k, 2^(k+1))`, and `2^k - 1` stays in bucket `k`.
    #[test]
    fn histogram_power_of_two_boundaries() {
        assert_eq!(bucket_index(0), 0);
        for k in 0..63u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1, "2^{k} bucket");
            if v > 1 {
                assert_eq!(bucket_index(v - 1), k as usize, "2^{k}-1 bucket");
            }
            assert_eq!(bucket_index(v + (v >> 1)), k as usize + 1, "1.5*2^{k}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);

        // And the recorded histogram reflects exactly those buckets.
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_ns");
        h.record(0);
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 1024);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let r = MetricsRegistry::new();
        let h = r.histogram("q");
        for _ in 0..99 {
            h.record(100); // bucket 7, upper bound 127
        }
        h.record(1_000_000); // bucket 20, upper bound 1048575
        let s = h.snapshot();
        assert_eq!(s.quantile(0.50), 127);
        assert_eq!(s.quantile(0.99), 127);
        // The single outlier is the max, which tightens the top bucket.
        assert_eq!(s.quantile(1.0), 1_000_000);
        assert_eq!(s.max, 1_000_000);
        assert!(s.mean() > 100.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let r = MetricsRegistry::new();
        let h = r.histogram("empty");
        assert_eq!(h.snapshot().quantile(0.99), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn render_text_dedupes_type_lines_per_base_name() {
        let r = MetricsRegistry::new();
        r.counter("mqtt_topic_published{topic=\"a\"}").inc();
        r.counter("mqtt_topic_published{topic=\"b\"}").add(2);
        r.gauge("speed").set(0.5);
        let text = r.render_text();
        assert_eq!(
            text.matches("# TYPE mqtt_topic_published counter").count(),
            1
        );
        assert!(text.contains("mqtt_topic_published{topic=\"a\"} 1\n"));
        assert!(text.contains("mqtt_topic_published{topic=\"b\"} 2\n"));
        assert!(text.contains("# TYPE speed gauge\n"));
        assert!(text.contains("speed 0.5\n"));
    }

    /// Satellite regression: label values holding `"`, `\n` or `\` must
    /// render escaped (Prometheus text-format conformance) — a raw
    /// newline would split the sample line, a raw quote would truncate
    /// the value.
    #[test]
    fn render_text_escapes_label_values() {
        let r = MetricsRegistry::new();
        r.counter("mqtt_topic_published{topic=\"a\"b\"}").inc();
        r.counter("mqtt_topic_published{topic=\"line\nbreak\"}")
            .inc();
        r.gauge("speed{node=\"back\\slash\"}").set(0.5);
        let text = r.render_text();
        assert!(
            text.contains("mqtt_topic_published{topic=\"a\\\"b\"} 1\n"),
            "quote must escape: {text}"
        );
        assert!(
            text.contains("mqtt_topic_published{topic=\"line\\nbreak\"} 1\n"),
            "newline must escape: {text}"
        );
        assert!(
            text.contains("speed{node=\"back\\\\slash\"} 0.5\n"),
            "backslash must escape: {text}"
        );
        // Every sample stays on exactly one line.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
        assert_eq!(text.matches('\n').count(), text.lines().count());
        // Clean names render unchanged (borrowed path).
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\nc\\d"), "a\\\"b\\nc\\\\d");
    }

    #[test]
    fn rollup_counters_sums_across_registries_sorted() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("jobs_total").add(3);
        b.counter("jobs_total").add(4);
        b.counter("aborts_total").inc();
        a.gauge("cap_w").set(9000.0); // gauges never roll up
        let rolled = rollup_counters([&a, &b]);
        assert_eq!(
            rolled,
            vec![
                ("aborts_total".to_string(), 1),
                ("jobs_total".to_string(), 7)
            ]
        );
    }

    #[test]
    fn visit_samples_expands_histograms() {
        let r = MetricsRegistry::new();
        r.counter("c").inc();
        let h = r.histogram("h");
        h.record(8);
        let mut seen = Vec::new();
        r.visit_samples(|name, v| seen.push((name.to_string(), v)));
        let names: Vec<&str> = seen.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            ["c", "h_count", "h_sum", "h_max", "h_p50", "h_p95", "h_p99"]
        );
        assert_eq!(seen[0].1, 1.0);
        assert_eq!(seen[1].1, 1.0); // count
        assert_eq!(seen[2].1, 8.0); // sum
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }
}
