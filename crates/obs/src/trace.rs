//! Causal frame tracing across the telemetry → control pipeline.
//!
//! Each `SampleFrame` publication gets a deterministic trace id
//! ([`frame_trace_id`], FNV-1a over topic + payload head) that every
//! stage can recompute from data it already holds — no id field travels
//! on the wire, so frame encoding and per-seed digests are untouched.
//! Stages stamp timestamps into a fixed-capacity slot table; closing a
//! trace folds its stage-to-stage lags into histograms and bumps a
//! completion counter, while traces that never complete are counted by
//! the furthest stage they reached — a per-stage frame-loss readout.

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use parking_lot::Mutex;

/// Pipeline stages a frame passes through, in causal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Broker accepted the publish.
    BrokerPublish = 0,
    /// A session queue received the fan-out copy.
    SessionDeliver = 1,
    /// Ingest decoded and appended the frame to the TsDb.
    IngestAppend = 2,
    /// The predictor consumed the window containing the frame.
    PredictorUpdate = 3,
    /// The scheduler tick that acted on the window ran.
    SchedulerTick = 4,
    /// The resulting DVFS command was published.
    DvfsPublish = 5,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 6;

/// Stage names as they appear in metric labels.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = [
    "broker_publish",
    "session_deliver",
    "ingest_append",
    "predictor_update",
    "scheduler_tick",
    "dvfs_publish",
];

/// How many payload bytes participate in the trace id. 24 bytes covers
/// the `SampleFrame` wire header (magic, version, t0, dt, n), which is
/// unique per (topic, frame) in any sane stream.
pub const TRACE_ID_PAYLOAD_BYTES: usize = 24;

/// Deterministic trace id for a frame publication: FNV-1a over the
/// topic bytes, a 0xFF separator (valid topics are UTF-8, so this
/// cannot collide with topic content), and the first
/// [`TRACE_ID_PAYLOAD_BYTES`] payload bytes. Both the broker (raw
/// publish) and ingest (raw delivered payload) hold exactly these
/// inputs, so the id links the two without wire changes.
pub fn frame_trace_id(topic: &str, payload: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in topic.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h = (h ^ 0xFF).wrapping_mul(FNV_PRIME);
    for &b in payload.iter().take(TRACE_ID_PAYLOAD_BYTES) {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A finalised trace's payload, copied out of the table under the lock.
#[derive(Clone, Copy)]
struct Slot {
    seen: u8,
    t_ns: [u64; STAGE_COUNT],
}

/// Slot-table capacity (power of two). Bounded so the tracer never
/// allocates after construction; a full probe window evicts the oldest
/// resident, finalising it as lost.
const CAPACITY: usize = 4096;
const PROBE: usize = 16;

/// Struct-of-arrays slot table: probing scans the packed `seen`/`ids`
/// arrays (64 and 8 entries per cache line), so a stamp on the ingest
/// hot path touches one or two lines instead of one per probed slot.
struct Table {
    seen: Box<[u8]>,
    ids: Box<[u64]>,
    t_ns: Box<[[u64; STAGE_COUNT]]>,
}

impl Table {
    fn take(&mut self, i: usize) -> Slot {
        let s = Slot {
            seen: self.seen[i],
            t_ns: self.t_ns[i],
        };
        self.seen[i] = 0;
        s
    }
}

/// Fixed-capacity causal tracer. All histograms and counters live in
/// the [`MetricsRegistry`] passed at construction:
///
/// * `obs_trace_e2e_ns` — first-stamp to last-stamp latency of
///   completed traces (the control-loop latency histogram).
/// * `obs_trace_stage_ns{from=..,to=..}` — lag between consecutive
///   stamped stages.
/// * `obs_trace_completed_total` — traces closed normally.
/// * `obs_trace_lost_total{last=..}` — traces that never completed,
///   keyed by the furthest stage they reached.
pub struct FrameTracer {
    table: Mutex<Table>,
    e2e: Histogram,
    stage_lag: [Histogram; STAGE_COUNT - 1],
    completed: Counter,
    lost: [Counter; STAGE_COUNT],
}

impl FrameTracer {
    /// A tracer registering its metrics in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        let stage_lag = std::array::from_fn(|i| {
            registry.histogram(&format!(
                "obs_trace_stage_ns{{from=\"{}\",to=\"{}\"}}",
                STAGE_NAMES[i],
                STAGE_NAMES[i + 1]
            ))
        });
        let lost = std::array::from_fn(|i| {
            registry.counter(&format!(
                "obs_trace_lost_total{{last=\"{}\"}}",
                STAGE_NAMES[i]
            ))
        });
        // Touch every page at construction: the zeroed allocations are
        // otherwise backed lazily, and the page faults would land in
        // the first few thousand stamp() calls on the ingest hot path.
        let mut seen = vec![0u8; CAPACITY].into_boxed_slice();
        let mut ids = vec![0u64; CAPACITY].into_boxed_slice();
        let mut t_ns = vec![[0u64; STAGE_COUNT]; CAPACITY].into_boxed_slice();
        unsafe {
            for s in seen.iter_mut() {
                std::ptr::write_volatile(s, 0);
            }
            for id in ids.iter_mut() {
                std::ptr::write_volatile(id, 0);
            }
            for row in t_ns.iter_mut() {
                std::ptr::write_volatile(&mut row[0], 0);
            }
        }
        FrameTracer {
            table: Mutex::new(Table { seen, ids, t_ns }),
            e2e: registry.histogram("obs_trace_e2e_ns"),
            stage_lag,
            completed: registry.counter("obs_trace_completed_total"),
            lost,
        }
    }

    /// Stamp `stage` of trace `id` at `now_s` (clock seconds; stored as
    /// integer nanoseconds). Creates the trace on first stamp; if the
    /// probe window is full the displaced resident is finalised as lost.
    pub fn stamp(&self, id: u64, stage: Stage, now_s: f64) {
        let now_ns = (now_s * 1e9).round().max(0.0) as u64;
        let lost_slot = {
            let mut g = self.table.lock();
            Self::stamp_in(&mut g, id, stage, now_ns)
        };
        if let Some(s) = lost_slot {
            self.finalize_lost(&s);
        }
    }

    /// Stamp `stage` for every id in `ids` at one shared timestamp,
    /// taking the table lock once for the whole batch — the ingest
    /// hot-path amortisation (a drained batch shares one drain instant
    /// anyway). Displaced residents are finalised inline; the loss
    /// counters are plain atomics, so no lock ordering is at stake.
    pub fn stamp_batch(&self, stage: Stage, now_s: f64, ids: impl IntoIterator<Item = u64>) {
        let now_ns = (now_s * 1e9).round().max(0.0) as u64;
        let mut g = self.table.lock();
        for id in ids {
            if let Some(s) = Self::stamp_in(&mut g, id, stage, now_ns) {
                self.finalize_lost(&s);
            }
        }
    }

    /// The probe/insert body shared by [`stamp`](Self::stamp) and
    /// [`stamp_batch`](Self::stamp_batch); returns a displaced resident
    /// for the caller to finalise as lost.
    fn stamp_in(g: &mut Table, id: u64, stage: Stage, now_ns: u64) -> Option<Slot> {
        let mask = CAPACITY - 1;
        let start = (id as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as usize) & mask;
        let mut lost_slot = None;
        let mut free: Option<usize> = None;
        let mut found: Option<usize> = None;
        for k in 0..PROBE {
            let i = (start + k) & mask;
            if g.seen[i] == 0 {
                if free.is_none() {
                    free = Some(i);
                }
            } else if g.ids[i] == id {
                found = Some(i);
                break;
            }
        }
        let i = match found {
            Some(i) => i,
            None => {
                let i = free.unwrap_or(start);
                if g.seen[i] != 0 {
                    lost_slot = Some(g.take(i));
                }
                g.ids[i] = id;
                g.seen[i] = 0;
                i
            }
        };
        if g.seen[i] & (1 << stage as usize) == 0 {
            g.seen[i] |= 1 << stage as usize;
            g.t_ns[i][stage as usize] = now_ns;
        }
        lost_slot
    }

    /// Whether trace `id` is currently resident (stamped, not closed).
    pub fn is_resident(&self, id: u64) -> bool {
        let g = self.table.lock();
        let mask = CAPACITY - 1;
        let start = (id as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as usize) & mask;
        (0..PROBE).any(|k| {
            let i = (start + k) & mask;
            g.seen[i] != 0 && g.ids[i] == id
        })
    }

    /// Close trace `id`: fold its lags into the histograms and count it
    /// completed. No-op if the trace is not resident (already evicted).
    pub fn close(&self, id: u64) {
        let slot = {
            let mut g = self.table.lock();
            let mask = CAPACITY - 1;
            let start = (id as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15_u64 as usize) & mask;
            let mut taken = None;
            for k in 0..PROBE {
                let i = (start + k) & mask;
                if g.seen[i] != 0 && g.ids[i] == id {
                    taken = Some(g.take(i));
                    break;
                }
            }
            taken
        };
        if let Some(s) = slot {
            self.finalize_completed(&s);
        }
    }

    /// Finalise every resident trace as lost (end-of-run accounting:
    /// anything still open never made it through the loop).
    pub fn flush(&self) {
        let residents: Vec<Slot> = {
            let mut g = self.table.lock();
            let mut v = Vec::new();
            for i in 0..CAPACITY {
                if g.seen[i] != 0 {
                    v.push(g.take(i));
                }
            }
            v
        };
        for s in &residents {
            self.finalize_lost(s);
        }
    }

    /// Completed-trace count (readout convenience).
    pub fn completed(&self) -> u64 {
        self.completed.get()
    }

    fn finalize_completed(&self, s: &Slot) {
        let mut first = None;
        let mut last = None;
        let mut prev: Option<usize> = None;
        for i in 0..STAGE_COUNT {
            if s.seen & (1 << i) == 0 {
                continue;
            }
            if first.is_none() {
                first = Some(s.t_ns[i]);
            }
            last = Some(s.t_ns[i]);
            if let Some(p) = prev {
                // Consecutive stamped pair: attribute the lag to the
                // (p, p+1) edge when adjacent; skipped stages fold the
                // whole gap into the edge leaving the earlier stage.
                let lag = s.t_ns[i].saturating_sub(s.t_ns[p]);
                self.stage_lag[p.min(STAGE_COUNT - 2)].record(lag);
            }
            prev = Some(i);
        }
        if let (Some(a), Some(b)) = (first, last) {
            self.e2e.record(b.saturating_sub(a));
        }
        self.completed.inc();
    }

    fn finalize_lost(&self, s: &Slot) {
        let furthest = (0..STAGE_COUNT).rev().find(|&i| s.seen & (1 << i) != 0);
        if let Some(i) = furthest {
            self.lost[i].inc();
        }
    }
}

impl std::fmt::Debug for FrameTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameTracer")
            .field("completed", &self.completed.get())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn trace_id_is_deterministic_and_topic_sensitive() {
        let p = [0xD5u8; 32];
        let a = frame_trace_id("davide/node00/power/node", &p);
        let b = frame_trace_id("davide/node00/power/node", &p);
        let c = frame_trace_id("davide/node01/power/node", &p);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Only the first 24 payload bytes matter (the frame header).
        let mut p2 = p;
        p2[30] = 0;
        assert_eq!(a, frame_trace_id("davide/node00/power/node", &p2));
        let mut p3 = p;
        p3[3] = 0;
        assert_ne!(a, frame_trace_id("davide/node00/power/node", &p3));
    }

    #[test]
    fn complete_trace_records_e2e_and_stage_lags() {
        let r = Arc::new(MetricsRegistry::new());
        let t = FrameTracer::new(&r);
        let id = frame_trace_id("t", b"payload-header-bytes-....");
        t.stamp(id, Stage::BrokerPublish, 1.0);
        t.stamp(id, Stage::SessionDeliver, 1.0);
        t.stamp(id, Stage::IngestAppend, 2.0);
        t.stamp(id, Stage::SchedulerTick, 2.0);
        t.stamp(id, Stage::DvfsPublish, 2.0);
        assert!(t.is_resident(id));
        t.close(id);
        assert!(!t.is_resident(id));
        assert_eq!(t.completed(), 1);
        let e2e = r.find_histogram("obs_trace_e2e_ns").unwrap().snapshot();
        assert_eq!(e2e.count, 1);
        assert_eq!(e2e.max, 1_000_000_000);
        // deliver → ingest carries the 1 s hop.
        let lag = r
            .find_histogram("obs_trace_stage_ns{from=\"session_deliver\",to=\"ingest_append\"}")
            .unwrap()
            .snapshot();
        assert_eq!(lag.count, 1);
        assert_eq!(lag.max, 1_000_000_000);
    }

    #[test]
    fn duplicate_stamp_keeps_first_timestamp() {
        let r = Arc::new(MetricsRegistry::new());
        let t = FrameTracer::new(&r);
        t.stamp(7, Stage::BrokerPublish, 1.0);
        t.stamp(7, Stage::BrokerPublish, 5.0);
        t.stamp(7, Stage::DvfsPublish, 2.0);
        t.close(7);
        let e2e = r.find_histogram("obs_trace_e2e_ns").unwrap().snapshot();
        assert_eq!(e2e.max, 1_000_000_000);
    }

    #[test]
    fn flush_counts_unclosed_traces_as_lost_by_furthest_stage() {
        let r = Arc::new(MetricsRegistry::new());
        let t = FrameTracer::new(&r);
        t.stamp(1, Stage::BrokerPublish, 0.0);
        t.stamp(2, Stage::BrokerPublish, 0.0);
        t.stamp(2, Stage::SessionDeliver, 0.1);
        t.flush();
        assert_eq!(
            r.find_counter("obs_trace_lost_total{last=\"broker_publish\"}")
                .unwrap()
                .get(),
            1
        );
        assert_eq!(
            r.find_counter("obs_trace_lost_total{last=\"session_deliver\"}")
                .unwrap()
                .get(),
            1
        );
        assert_eq!(t.completed(), 0);
        // Flushed slots are gone.
        assert!(!t.is_resident(1));
        t.flush();
        assert_eq!(
            r.find_counter("obs_trace_lost_total{last=\"broker_publish\"}")
                .unwrap()
                .get(),
            1
        );
    }

    #[test]
    fn table_eviction_finalizes_displaced_trace_as_lost() {
        let r = Arc::new(MetricsRegistry::new());
        let t = FrameTracer::new(&r);
        // Far more traces than capacity: evictions must not panic and
        // must account every displaced trace as lost.
        for id in 0..(2 * CAPACITY as u64) {
            t.stamp(id, Stage::BrokerPublish, id as f64 * 1e-3);
        }
        t.flush();
        let lost = r
            .find_counter("obs_trace_lost_total{last=\"broker_publish\"}")
            .unwrap()
            .get();
        assert_eq!(lost, 2 * CAPACITY as u64);
    }
}
