//! Causal spans for federation cap grants.
//!
//! A federated deployment's control loop crosses *machines*: the site
//! federator splits the global budget, publishes a retained
//! `fed/rackNN/cap` grant, a downlink bridge carries it onto the rack
//! broker, the rack's cap-watch drains it into the control plane, the
//! reactive ladder retargets, and — eventually — the observed node
//! power crosses under the new cap. [`GrantTracer`] follows each grant
//! through those hops as one span, stitched by the grant sequence
//! number the federator embeds in the payload (`"<watts> <seq>"`), and
//! folds the hop-to-hop lags into latency histograms:
//!
//! * `obs_grant_stage_ns{from=..,to=..}` — lag between consecutive
//!   stamped stages;
//! * `obs_grant_apply_ns` — grant split → controller cap command;
//! * `obs_grant_e2e_ns` — grant split → observed power crossing (the
//!   grant-to-actuation latency the paper's reaction-time argument
//!   turns on);
//! * `obs_grant_completed_total` / `obs_grant_lost_total{last=..}`.
//!
//! One tracer per rack (it lives in the rack's [`ObsHub`]); sequence
//! numbers are per-rack, so the span id *is* the grant seq. Stamps are
//! first-write-wins, which makes retained-replay re-deliveries after a
//! broker restart harmless. Like the frame tracer, all timestamps come
//! through the hub's injectable clock, so tracing never perturbs
//! per-seed digests.
//!
//! [`ObsHub`]: crate::ObsHub

use crate::metrics::{Counter, Histogram, MetricsRegistry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};

/// The hops a cap grant takes from the federator's budget split to an
/// observed node-power change. Values are stage indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum GrantStage {
    /// The federator computed this rack's share and published the
    /// retained grant on the site broker.
    FedSplit = 0,
    /// The downlink bridge forwarded the grant onto the rack broker.
    BridgeDeliver = 1,
    /// The rack's cap-watch subscriber drained the grant.
    RackReceive = 2,
    /// The control plane swapped its cap schedule (the ladder and the
    /// admission envelope now read the new cap).
    CapCommand = 3,
    /// The plant's observed system power first measured at or under the
    /// granted cap — actuation, as the invariant checker would see it.
    PowerCrossing = 4,
}

/// Number of grant stages.
pub const GRANT_STAGE_COUNT: usize = 5;

/// Stage names, indexed by [`GrantStage`] — also the flight-recorder
/// event kinds for grant events.
pub const GRANT_STAGE_NAMES: [&str; GRANT_STAGE_COUNT] = [
    "fed_split",
    "bridge_deliver",
    "rack_receive",
    "cap_command",
    "power_crossing",
];

const CAPACITY: usize = 256;
const PROBE: usize = 16;

/// One in-flight grant span: which stages have stamped, and when.
#[derive(Clone, Copy)]
struct Slot {
    /// Grant sequence number; the span id.
    seq: u64,
    /// Bitmask of stamped stages.
    seen: u8,
    /// First-write-wins stamp per stage, nanoseconds of hub-clock time.
    t_ns: [u64; GRANT_STAGE_COUNT],
    live: bool,
}

const EMPTY: Slot = Slot {
    seq: 0,
    seen: 0,
    t_ns: [0; GRANT_STAGE_COUNT],
    live: false,
};

struct Table {
    slots: Box<[Slot]>,
}

/// Span tracer for federation cap grants; see the module docs. Grants
/// are low-rate (one per rack per rebalance at most), so the table is
/// small and the per-stamp cost is a short mutex hold.
pub struct GrantTracer {
    enabled: AtomicBool,
    table: Mutex<Table>,
    stage_lag: [Histogram; GRANT_STAGE_COUNT - 1],
    apply_ns: Histogram,
    e2e_ns: Histogram,
    completed: Counter,
    lost: [Counter; GRANT_STAGE_COUNT],
}

impl GrantTracer {
    /// A tracer registering its metrics in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        let stage_lag = std::array::from_fn(|i| {
            registry.histogram(&format!(
                "obs_grant_stage_ns{{from=\"{}\",to=\"{}\"}}",
                GRANT_STAGE_NAMES[i],
                GRANT_STAGE_NAMES[i + 1]
            ))
        });
        let lost = std::array::from_fn(|i| {
            registry.counter(&format!(
                "obs_grant_lost_total{{last=\"{}\"}}",
                GRANT_STAGE_NAMES[i]
            ))
        });
        GrantTracer {
            enabled: AtomicBool::new(true),
            table: Mutex::new(Table {
                slots: vec![EMPTY; CAPACITY].into_boxed_slice(),
            }),
            stage_lag,
            apply_ns: registry.histogram("obs_grant_apply_ns"),
            e2e_ns: registry.histogram("obs_grant_e2e_ns"),
            completed: registry.counter("obs_grant_completed_total"),
            lost,
        }
    }

    /// Disable (or re-enable) stamping; a disabled tracer's methods are
    /// cheap no-ops. Used by overhead A/B measurements.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether stamping is active.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn slot_index(&self, table: &mut Table, seq: u64) -> Option<usize> {
        let mask = CAPACITY - 1;
        let start = (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize) & mask;
        let mut free = None;
        for p in 0..PROBE {
            let i = (start + p) & mask;
            let s = &table.slots[i];
            if s.live && s.seq == seq {
                return Some(i);
            }
            if !s.live && free.is_none() {
                free = Some(i);
            }
        }
        // No resident and no free slot in the probe window: evict the
        // first resident deterministically, finalizing it as lost.
        let i = free.unwrap_or(start);
        if table.slots[i].live {
            let victim = table.slots[i];
            self.finalize_lost(&victim);
        }
        table.slots[i] = Slot {
            seq,
            seen: 0,
            t_ns: [0; GRANT_STAGE_COUNT],
            live: true,
        };
        Some(i)
    }

    /// Stamp `stage` on grant `seq` at hub-clock time `now_s` (seconds;
    /// stored as integer nanoseconds). First write per stage wins.
    pub fn stamp(&self, seq: u64, stage: GrantStage, now_s: f64) {
        if !self.enabled() {
            return;
        }
        let mut g = self.table.lock();
        let Some(i) = self.slot_index(&mut g, seq) else {
            return;
        };
        let bit = 1u8 << (stage as usize);
        let s = &mut g.slots[i];
        if s.seen & bit == 0 {
            s.seen |= bit;
            s.t_ns[stage as usize] = (now_s * 1e9).round() as u64;
        }
    }

    /// Close grant `seq`: fold its stage lags, apply latency (fed split
    /// → cap command) and end-to-end latency (fed split → power
    /// crossing) into the histograms and retire the span.
    pub fn close(&self, seq: u64) {
        if !self.enabled() {
            return;
        }
        let mut g = self.table.lock();
        let mask = CAPACITY - 1;
        let start = (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize) & mask;
        for p in 0..PROBE {
            let i = (start + p) & mask;
            let s = g.slots[i];
            if s.live && s.seq == seq {
                g.slots[i] = EMPTY;
                drop(g);
                self.finalize_closed(&s);
                return;
            }
        }
    }

    /// Finalize every resident span as lost at its furthest stamped
    /// stage. Call at end of run so interrupted grants are accounted.
    pub fn flush(&self) {
        let mut g = self.table.lock();
        let residents: Vec<Slot> = g.slots.iter().copied().filter(|s| s.live).collect();
        for s in g.slots.iter_mut() {
            *s = EMPTY;
        }
        drop(g);
        for s in &residents {
            self.finalize_lost(s);
        }
    }

    fn finalize_closed(&self, s: &Slot) {
        let mut prev: Option<usize> = None;
        for stage in 0..GRANT_STAGE_COUNT {
            if s.seen & (1 << stage) == 0 {
                continue;
            }
            if let Some(p) = prev {
                // Consecutive stamped stages fold into the edge between
                // them; a skipped stage attributes the whole lag to the
                // last observed edge before it.
                let edge = p.min(GRANT_STAGE_COUNT - 2);
                self.stage_lag[edge].record(s.t_ns[stage].saturating_sub(s.t_ns[p]));
            }
            prev = Some(stage);
        }
        let split = GrantStage::FedSplit as usize;
        let cmd = GrantStage::CapCommand as usize;
        let cross = GrantStage::PowerCrossing as usize;
        if s.seen & (1 << split) != 0 {
            if s.seen & (1 << cmd) != 0 {
                self.apply_ns
                    .record(s.t_ns[cmd].saturating_sub(s.t_ns[split]));
            }
            if s.seen & (1 << cross) != 0 {
                self.e2e_ns
                    .record(s.t_ns[cross].saturating_sub(s.t_ns[split]));
            }
        }
        self.completed.inc();
    }

    fn finalize_lost(&self, s: &Slot) {
        let last = (0..GRANT_STAGE_COUNT)
            .rev()
            .find(|&i| s.seen & (1 << i) != 0)
            .unwrap_or(0);
        self.lost[last].inc();
    }
}

impl std::fmt::Debug for GrantTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrantTracer")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_span_records_apply_and_e2e_latency() {
        let r = MetricsRegistry::new();
        let t = GrantTracer::new(&r);
        t.stamp(7, GrantStage::FedSplit, 100.0);
        t.stamp(7, GrantStage::BridgeDeliver, 100.0);
        t.stamp(7, GrantStage::RackReceive, 130.0);
        t.stamp(7, GrantStage::CapCommand, 130.0);
        t.stamp(7, GrantStage::PowerCrossing, 160.0);
        t.close(7);
        assert_eq!(
            r.find_counter("obs_grant_completed_total").unwrap().get(),
            1
        );
        let apply = r.find_histogram("obs_grant_apply_ns").unwrap().snapshot();
        assert_eq!(apply.count, 1);
        assert_eq!(apply.sum, 30_000_000_000);
        let e2e = r.find_histogram("obs_grant_e2e_ns").unwrap().snapshot();
        assert_eq!(e2e.sum, 60_000_000_000);
    }

    #[test]
    fn first_stamp_wins_over_retained_replay() {
        let r = MetricsRegistry::new();
        let t = GrantTracer::new(&r);
        t.stamp(3, GrantStage::FedSplit, 10.0);
        t.stamp(3, GrantStage::RackReceive, 40.0);
        // A broker restart replays the retained grant; the duplicate
        // stamp must not move the timestamp.
        t.stamp(3, GrantStage::RackReceive, 70.0);
        t.stamp(3, GrantStage::PowerCrossing, 50.0);
        t.close(3);
        let e2e = r.find_histogram("obs_grant_e2e_ns").unwrap().snapshot();
        assert_eq!(e2e.sum, 40_000_000_000);
    }

    #[test]
    fn flush_accounts_unactuated_grants_as_lost() {
        let r = MetricsRegistry::new();
        let t = GrantTracer::new(&r);
        t.stamp(1, GrantStage::FedSplit, 1.0);
        t.stamp(1, GrantStage::CapCommand, 2.0);
        t.stamp(2, GrantStage::FedSplit, 3.0);
        t.flush();
        assert_eq!(
            r.find_counter("obs_grant_lost_total{last=\"cap_command\"}")
                .unwrap()
                .get(),
            1
        );
        assert_eq!(
            r.find_counter("obs_grant_lost_total{last=\"fed_split\"}")
                .unwrap()
                .get(),
            1
        );
        assert_eq!(
            r.find_counter("obs_grant_completed_total").unwrap().get(),
            0
        );
    }

    #[test]
    fn disabled_tracer_stamps_nothing() {
        let r = MetricsRegistry::new();
        let t = GrantTracer::new(&r);
        t.set_enabled(false);
        t.stamp(9, GrantStage::FedSplit, 1.0);
        t.stamp(9, GrantStage::PowerCrossing, 2.0);
        t.close(9);
        t.flush();
        assert_eq!(
            r.find_counter("obs_grant_completed_total").unwrap().get(),
            0
        );
        assert!(!t.enabled());
    }
}
