//! # davide-obs
//!
//! The stack's self-observability layer. D.A.V.I.D.E. is itself a
//! monitoring system — energy gateways stream 50 kS/s power telemetry
//! over MQTT to aggregators, profilers and the power-aware scheduler —
//! and this crate lets that pipeline watch *itself* with the same
//! rigour it offers applications:
//!
//! * [`MetricsRegistry`] — a lock-free registry of atomic counters,
//!   gauges and log₂-bucketed histograms. Handles are pre-registered
//!   (interned, like `SeriesId`s in the TsDb) so the hot path is pure
//!   atomics: no locks, no allocation. [`MetricsRegistry::render_text`]
//!   produces a Prometheus-style text exposition.
//! * [`FrameTracer`] — causal tracing for `SampleFrame` batches. Every
//!   frame gets a deterministic trace id derived from its topic and
//!   wire header ([`frame_trace_id`]); each pipeline stage (broker
//!   publish → session deliver → ingest append → predictor update →
//!   scheduler tick → DVFS command publish) stamps a timestamp, and
//!   closing a trace folds the stage-to-stage lags into histograms, so
//!   end-to-end control-loop latency is a measured distribution, not a
//!   guess.
//! * [`GrantTracer`] — causal tracing for federation cap grants: the
//!   federator's budget split, the retained grant publish, the downlink
//!   bridge hop, the rack's cap-watch drain, the controller command and
//!   the observed power crossing are stitched into one span per
//!   (rack, grant seq), folding grant-to-actuation latency into
//!   histograms.
//! * [`FlightRecorder`] — a bounded lock-free ring of recent
//!   control-loop events, snapshotted into a deterministic text dump
//!   the instant an invariant fires.
//! * [`SelfTelemetry`] — a bridge that periodically serialises the
//!   registry into ordinary telemetry samples on the reserved
//!   `davide/obs/#` topic namespace, published through whatever
//!   [`FrameSink`] the caller wires up (the MQTT adapter lives in
//!   `davide-telemetry`, which owns the frame codec). The monitoring
//!   plane monitors itself with its own plumbing.
//!
//! All time flows through the injectable [`Clock`] trait: deterministic
//! harnesses drive a [`ManualClock`] from their virtual clock, so
//! instrumentation never perturbs per-seed digests; production wiring
//! uses [`MonotonicClock`].

#![warn(missing_docs)]

pub mod bridge;
pub mod clock;
pub mod flight;
pub mod metrics;
pub mod span;
pub mod trace;

pub use bridge::{obs_topic, FrameSink, SelfTelemetry, OBS_FILTER, OBS_PREFIX};
pub use clock::{Clock, ManualClock, MonotonicClock};
pub use flight::{FlightEvent, FlightRecorder};
pub use metrics::{
    escape_label_value, rollup_counters, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry,
};
pub use span::{GrantStage, GrantTracer, GRANT_STAGE_COUNT, GRANT_STAGE_NAMES};
pub use trace::{frame_trace_id, FrameTracer, Stage};

use std::sync::Arc;

/// The obs wiring one deployment shares across instrument sites: the
/// registry every subsystem registers its metrics in, the frame tracer,
/// and the clock all broker/ingest-side stamps read.
#[derive(Clone)]
pub struct ObsHub {
    /// Shared metrics registry.
    pub registry: Arc<MetricsRegistry>,
    /// Shared causal frame tracer (registers its own metrics in
    /// `registry`).
    pub tracer: Arc<FrameTracer>,
    /// Shared cap-grant span tracer (registers its own metrics in
    /// `registry`).
    pub span: Arc<GrantTracer>,
    /// Shared flight recorder for the deployment's recent control-loop
    /// events.
    pub flight: Arc<FlightRecorder>,
    /// Injectable time source for stamps taken outside the control
    /// loop's explicit `now` (broker publish, ingest drain).
    pub clock: Arc<dyn Clock>,
}

impl ObsHub {
    /// A hub over an explicit clock.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let tracer = Arc::new(FrameTracer::new(&registry));
        let span = Arc::new(GrantTracer::new(&registry));
        let flight = Arc::new(FlightRecorder::default());
        ObsHub {
            registry,
            tracer,
            span,
            flight,
            clock,
        }
    }

    /// Arm or disarm grant tracing and flight recording together (the
    /// frame tracer and registry stay live). Overhead A/B runs disarm
    /// one side; digests must be bit-identical either way.
    pub fn set_tracing_enabled(&self, on: bool) {
        self.span.set_enabled(on);
        self.flight.set_enabled(on);
    }

    /// A hub over a [`ManualClock`], returned alongside so deterministic
    /// harnesses can drive it from their virtual clock.
    pub fn manual() -> (Self, Arc<ManualClock>) {
        let manual = Arc::new(ManualClock::new(0.0));
        let clock: Arc<dyn Clock> = manual.clone();
        (Self::new(clock), manual)
    }

    /// A hub over the wall [`MonotonicClock`] (production wiring).
    pub fn monotonic() -> Self {
        Self::new(Arc::new(MonotonicClock::new()))
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub").finish_non_exhaustive()
    }
}
