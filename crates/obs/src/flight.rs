//! Bounded flight recorder: the last N control-loop events, always on.
//!
//! Aircraft keep a flight recorder precisely because the interesting
//! window is the one just *before* the failure. The sim's equivalent:
//! every rack records its recent cap-grant hops and invariant
//! violations into a fixed-size lock-free ring, and the instant the
//! invariant checker fires the harness snapshots the ring into a
//! deterministic, digest-stable text dump — turning a sabotage-scenario
//! failure from "digest mismatch" into a readable causal timeline.
//!
//! The ring is wait-free for writers: one atomic fetch-add claims a
//! logical index, and a per-slot version counter (seqlock style, set to
//! `2·(index+1)` when the write completes) lets readers detect both
//! torn reads and slots overwritten by newer events. Event kinds and
//! labels are `&'static str`, stored as raw pointer + length words —
//! sound because `'static` strings never move — so a push is a handful
//! of relaxed stores and never allocates.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Well-known flight-recorder event kinds. Grant hops reuse the span
/// stage names so the timeline reads in causal order.
pub mod kind {
    /// Federator published a grant ([`GrantStage::FedSplit`]).
    ///
    /// [`GrantStage::FedSplit`]: crate::span::GrantStage::FedSplit
    pub const FED_SPLIT: &str = "fed_split";
    /// Downlink bridge forwarded the grant onto the rack broker.
    pub const BRIDGE_DELIVER: &str = "bridge_deliver";
    /// Rack cap-watch drained the grant.
    pub const RACK_RECEIVE: &str = "rack_receive";
    /// Control plane swapped its cap schedule.
    pub const CAP_COMMAND: &str = "cap_command";
    /// Observed system power first measured under the granted cap.
    pub const POWER_CROSSING: &str = "power_crossing";
    /// The invariant checker recorded a violation; `label` names the
    /// invariant.
    pub const VIOLATION: &str = "violation";
}

/// One recorded event. `value_bits` carries an f64 payload (cap watts,
/// violation time) as raw bits so dumps are bit-exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Virtual-time nanoseconds when the event was recorded.
    pub t_ns: u64,
    /// Event kind; see [`kind`].
    pub kind: &'static str,
    /// Secondary label (invariant name for violations, else `""`).
    pub label: &'static str,
    /// Grant sequence number for grant events, 0 otherwise.
    pub seq: u64,
    /// f64 payload as raw bits.
    pub value_bits: u64,
}

struct Cell {
    /// 0 = never written; odd = write in progress; `2·(n+1)` = holds
    /// logical event `n`.
    ver: AtomicU64,
    t_ns: AtomicU64,
    kind_ptr: AtomicU64,
    kind_len: AtomicU64,
    label_ptr: AtomicU64,
    label_len: AtomicU64,
    seq: AtomicU64,
    value_bits: AtomicU64,
}

impl Cell {
    fn new() -> Self {
        Cell {
            ver: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind_ptr: AtomicU64::new(0),
            kind_len: AtomicU64::new(0),
            label_ptr: AtomicU64::new(0),
            label_len: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            value_bits: AtomicU64::new(0),
        }
    }
}

/// Default ring capacity (events retained per rack).
pub const FLIGHT_CAPACITY: usize = 1024;

/// The bounded lock-free event ring; see the module docs.
pub struct FlightRecorder {
    enabled: AtomicBool,
    head: AtomicU64,
    cells: Box<[Cell]>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        FlightRecorder {
            enabled: AtomicBool::new(true),
            head: AtomicU64::new(0),
            cells: (0..cap).map(|_| Cell::new()).collect(),
        }
    }

    /// Disable (or re-enable) recording; a disabled recorder's `push`
    /// is one atomic load. Used by overhead A/B measurements.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Total events pushed since construction (including overwritten
    /// ones).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event. Wait-free; never allocates.
    pub fn push(
        &self,
        t_ns: u64,
        kind: &'static str,
        label: &'static str,
        seq: u64,
        value_bits: u64,
    ) {
        if !self.enabled() {
            return;
        }
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let c = &self.cells[(n as usize) & (self.cells.len() - 1)];
        c.ver.store(2 * n + 1, Ordering::Release);
        c.t_ns.store(t_ns, Ordering::Relaxed);
        c.kind_ptr.store(kind.as_ptr() as u64, Ordering::Relaxed);
        c.kind_len.store(kind.len() as u64, Ordering::Relaxed);
        c.label_ptr.store(label.as_ptr() as u64, Ordering::Relaxed);
        c.label_len.store(label.len() as u64, Ordering::Relaxed);
        c.seq.store(seq, Ordering::Relaxed);
        c.value_bits.store(value_bits, Ordering::Relaxed);
        c.ver.store(2 * (n + 1), Ordering::Release);
    }

    /// The retained events, oldest first, each paired with its logical
    /// index. Slots being overwritten concurrently are skipped.
    pub fn snapshot(&self) -> Vec<(u64, FlightEvent)> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.cells.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for n in start..head {
            let c = &self.cells[(n as usize) & (self.cells.len() - 1)];
            let v1 = c.ver.load(Ordering::Acquire);
            if v1 != 2 * (n + 1) {
                continue; // torn or already overwritten
            }
            let ev = FlightEvent {
                t_ns: c.t_ns.load(Ordering::Relaxed),
                kind: load_static_str(&c.kind_ptr, &c.kind_len),
                label: load_static_str(&c.label_ptr, &c.label_len),
                seq: c.seq.load(Ordering::Relaxed),
                value_bits: c.value_bits.load(Ordering::Relaxed),
            };
            if c.ver.load(Ordering::Acquire) == v1 {
                out.push((n, ev));
            }
        }
        out
    }

    /// Deterministic, digest-stable text dump of the retained timeline:
    /// one line per event in logical order, values as raw bit patterns
    /// so two same-seed runs produce byte-identical dumps.
    pub fn dump(&self) -> String {
        let events = self.snapshot();
        let mut out = String::with_capacity(64 * events.len() + 32);
        out.push_str("flight v1\n");
        for (n, e) in &events {
            out.push_str(&format!(
                "{n:06} t_ns={} kind={} seq={} value={:#018x}",
                e.t_ns, e.kind, e.seq, e.value_bits
            ));
            if !e.label.is_empty() {
                out.push_str(&format!(" label={}", e.label));
            }
            out.push('\n');
        }
        out
    }

    /// FNV-1a digest of [`dump`](Self::dump) — a compact fingerprint
    /// for determinism checks.
    pub fn digest(&self) -> u64 {
        fnv1a(self.dump().as_bytes())
    }
}

/// FNV-1a over a byte slice (same constants as the sim's event-log
/// digest).
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn load_static_str(ptr: &AtomicU64, len: &AtomicU64) -> &'static str {
    let p = ptr.load(Ordering::Relaxed) as usize as *const u8;
    let l = len.load(Ordering::Relaxed) as usize;
    if p.is_null() || l == 0 {
        return "";
    }
    // SAFETY: these words were only ever stored by `push`, whose
    // signature restricts them to the address and length of a
    // `&'static str`, and the seqlock version check around this read
    // guarantees the pair is from one complete write.
    unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(p, l)) }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("pushed", &self.pushed())
            .field("capacity", &self.cells.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_dumps_in_order() {
        let fr = FlightRecorder::new(8);
        fr.push(1_000, kind::FED_SPLIT, "", 0, 7200f64.to_bits());
        fr.push(2_000, kind::RACK_RECEIVE, "", 0, 7200f64.to_bits());
        fr.push(3_000, kind::VIOLATION, "cap", 0, 2.5f64.to_bits());
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].1.kind, "fed_split");
        assert_eq!(snap[2].1.label, "cap");
        let dump = fr.dump();
        assert!(dump.starts_with("flight v1\n"));
        assert!(dump.contains("kind=violation"));
        assert!(dump.contains("label=cap"));
        // The dump is a pure function of the pushed events.
        let fr2 = FlightRecorder::new(8);
        fr2.push(1_000, kind::FED_SPLIT, "", 0, 7200f64.to_bits());
        fr2.push(2_000, kind::RACK_RECEIVE, "", 0, 7200f64.to_bits());
        fr2.push(3_000, kind::VIOLATION, "cap", 0, 2.5f64.to_bits());
        assert_eq!(fr2.dump(), dump);
        assert_eq!(fr2.digest(), fr.digest());
    }

    #[test]
    fn ring_keeps_only_the_newest_events() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.push(i, kind::FED_SPLIT, "", i, i);
        }
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].0, 6, "oldest retained logical index");
        assert_eq!(snap[3].1.seq, 9);
        assert_eq!(fr.pushed(), 10);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let fr = FlightRecorder::new(4);
        fr.set_enabled(false);
        fr.push(1, kind::VIOLATION, "cap", 0, 0);
        assert_eq!(fr.pushed(), 0);
        assert_eq!(fr.dump(), "flight v1\n");
    }

    #[test]
    fn concurrent_pushes_never_tear_a_snapshot() {
        use std::sync::Arc;
        let fr = Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let fr = fr.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        fr.push(i, kind::CAP_COMMAND, "", w * 10_000 + i, i);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for (_, e) in fr.snapshot() {
                assert_eq!(e.kind, "cap_command");
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(fr.pushed(), 20_000);
        assert_eq!(fr.snapshot().len(), 64);
    }
}
