//! Injectable time sources.
//!
//! Every timestamp the observability layer takes on its own initiative
//! (broker publish stamps, ingest drain stamps, self-telemetry
//! deadlines) goes through [`Clock`], so the `davide-sim` virtual-clock
//! harness can substitute a [`ManualClock`] it advances in lock-step
//! with simulated time — instrumentation then reads *virtual* seconds
//! and per-seed event digests stay bit-identical. Real deployments use
//! [`MonotonicClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source in seconds since an arbitrary epoch.
pub trait Clock: Send + Sync {
    /// Current time, seconds.
    fn now_s(&self) -> f64;
}

/// A clock the owner sets explicitly — the deterministic harness
/// wiring. Stores f64 bits in an atomic so shared handles are lock-free.
#[derive(Debug)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `t0_s`.
    pub fn new(t0_s: f64) -> Self {
        ManualClock {
            bits: AtomicU64::new(t0_s.to_bits()),
        }
    }

    /// Set the current time (harnesses call this once per tick).
    pub fn set(&self, t_s: f64) {
        self.bits.store(t_s.to_bits(), Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_s(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Wall-clock seconds since construction (production wiring; never use
/// under the deterministic harness).
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A monotonic clock with its epoch at construction.
    pub fn new() -> Self {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_settable_and_shared() {
        let c = std::sync::Arc::new(ManualClock::new(1.5));
        assert_eq!(c.now_s(), 1.5);
        let c2 = std::sync::Arc::clone(&c);
        c.set(42.25);
        assert_eq!(c2.now_s(), 42.25);
    }

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a && a >= 0.0);
    }
}
