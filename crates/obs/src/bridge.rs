//! Self-telemetry bridge: the registry republished as telemetry.
//!
//! D.A.V.I.D.E.'s monitoring plane should be observable through the
//! same EG → MQTT → TsDb chain it provides to applications.
//! [`SelfTelemetry`] periodically walks the [`MetricsRegistry`] and
//! emits every metric as a single-sample telemetry series on the
//! reserved `davide/obs/#` namespace through a caller-supplied
//! [`FrameSink`]. The MQTT/`SampleFrame` adapter lives in
//! `davide-telemetry` (which owns the frame codec); this module is
//! codec-agnostic.
//!
//! The namespace is laid out so obs series can never match application
//! power subscriptions: application topics are
//! `davide/<node>/power/<sensor>`, obs topics are
//! `davide/obs/self/<metric>` — the second level is the literal `obs`,
//! which no node id uses, and the third level is the literal `self`
//! where power topics have `power`.

use crate::metrics::MetricsRegistry;

/// Topic prefix for self-telemetry series.
pub const OBS_PREFIX: &str = "davide/obs/self/";

/// Subscription filter covering the whole reserved namespace.
pub const OBS_FILTER: &str = "davide/obs/#";

/// Map a metric name to its reserved topic. Characters outside
/// `[A-Za-z0-9_.-]` (label syntax: `{`, `}`, `"`, `=`, `,`) become `_`
/// so the topic is always a valid single MQTT level.
pub fn obs_topic(metric_name: &str) -> String {
    let mut t = String::with_capacity(OBS_PREFIX.len() + metric_name.len());
    t.push_str(OBS_PREFIX);
    for c in metric_name.chars() {
        if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-') {
            t.push(c);
        } else {
            t.push('_');
        }
    }
    t
}

/// Where self-telemetry samples go. Implemented in `davide-telemetry`
/// by an adapter that encodes each sample as a one-element
/// `SampleFrame` and publishes it over MQTT.
pub trait FrameSink {
    /// Publish one sample of series `topic` taken at `t_s`.
    fn publish_sample(&mut self, topic: &str, t_s: f64, value: f64);
}

/// Periodic registry → sink pump. Drive it with the same clock that
/// timestamps the rest of the pipeline; emission instants are then
/// deterministic under the virtual-clock harness.
#[derive(Debug)]
pub struct SelfTelemetry {
    period_s: f64,
    next_due_s: f64,
    emitted: u64,
}

impl SelfTelemetry {
    /// A pump emitting every `period_s` seconds, first due at `period_s`.
    pub fn new(period_s: f64) -> Self {
        assert!(period_s > 0.0, "self-telemetry period must be positive");
        SelfTelemetry {
            period_s,
            next_due_s: period_s,
            emitted: 0,
        }
    }

    /// Emit a snapshot of `registry` into `sink` if `now_s` has reached
    /// the next due time; returns the number of samples published (0 if
    /// not yet due). Histograms expand to
    /// `_count`/`_sum`/`_max`/`_p50`/`_p95`/`_p99` series.
    pub fn maybe_publish(
        &mut self,
        now_s: f64,
        registry: &MetricsRegistry,
        sink: &mut dyn FrameSink,
    ) -> usize {
        if now_s < self.next_due_s {
            return 0;
        }
        // Skip forward past any missed periods rather than bursting.
        while self.next_due_s <= now_s {
            self.next_due_s += self.period_s;
        }
        let mut n = 0usize;
        registry.visit_samples(|name, value| {
            sink.publish_sample(&obs_topic(name), now_s, value);
            n += 1;
        });
        self.emitted += n as u64;
        n
    }

    /// Total samples published over the pump's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VecSink(Vec<(String, f64, f64)>);
    impl FrameSink for VecSink {
        fn publish_sample(&mut self, topic: &str, t_s: f64, value: f64) {
            self.0.push((topic.to_string(), t_s, value));
        }
    }

    #[test]
    fn obs_topic_sanitizes_label_syntax() {
        assert_eq!(
            obs_topic("ingest_frames_total"),
            "davide/obs/self/ingest_frames_total"
        );
        assert_eq!(
            obs_topic("mqtt_topic_published{topic=\"a/b\"}"),
            "davide/obs/self/mqtt_topic_published_topic__a_b__"
        );
        // Always exactly one level appended: no '/' survives.
        assert_eq!(obs_topic("x/y").matches('/').count(), 3);
    }

    #[test]
    fn pump_emits_on_period_and_skips_missed_windows() {
        let r = MetricsRegistry::new();
        r.counter("c").add(3);
        let mut pump = SelfTelemetry::new(10.0);
        let mut sink = VecSink(Vec::new());

        assert_eq!(pump.maybe_publish(5.0, &r, &mut sink), 0);
        assert_eq!(pump.maybe_publish(10.0, &r, &mut sink), 1);
        assert_eq!(sink.0[0].0, "davide/obs/self/c");
        assert_eq!(sink.0[0].1, 10.0);
        assert_eq!(sink.0[0].2, 3.0);

        // Jump over three missed periods: one emission, not a burst.
        assert_eq!(pump.maybe_publish(45.0, &r, &mut sink), 1);
        assert_eq!(pump.maybe_publish(46.0, &r, &mut sink), 0);
        assert_eq!(pump.emitted(), 2);
    }
}
