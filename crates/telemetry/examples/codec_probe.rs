//! Dev probe: per-corpus compression ratios and decode throughput for
//! the storage codec. Not part of any experiment gate — E26 is the
//! gated version (`cargo run -p davide-bench --bin experiments -- e26`).

use davide_telemetry::storage::{decode_block_into, encode_block};
use std::time::Instant;

fn quantise_boxcar(w: f64, lsb: f64) -> f64 {
    (w / lsb).round().clamp(0.0, 4095.0) * lsb
}

fn main() {
    let lsb = 4000.0f64 / 4095.0;
    let frame = 500usize;
    let frames = 40usize;
    let n = frame * frames;
    let dt = 2e-5f64;

    // Timestamps exactly as extend_uniform computes them, per frame.
    let ts: Vec<f64> = (0..n)
        .map(|i| {
            let (round, k) = (i / frame, i % frame);
            let t0 = 10.0 + round as f64 * 0.01 + 3.7e-7;
            t0 + k as f64 * dt
        })
        .collect();

    let mk = |tone_amp: f64, noise: f64, seed: u64| -> Vec<f32> {
        let mut state = seed;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        (0..n)
            .map(|i| {
                let k = i % frame;
                let mut acc = 0.0;
                for r in 0..16 {
                    let t = (k * 16 + r) as f64 / 800_000.0;
                    let w = 1700.0
                        + tone_amp * (2.0 * std::f64::consts::PI * 50.0 * t).sin()
                        + noise * rng();
                    acc += quantise_boxcar(w, lsb);
                }
                (acc / 16.0) as f32
            })
            .collect()
    };

    let corpora = [
        ("flat rail, no noise  ", mk(0.0, 0.0, 7)),
        ("tone 85W, no noise   ", mk(85.0, 0.0, 7)),
        ("tone 85W, noise 17W  ", mk(85.0, 17.0 * 3.46, 7)), // uniform→σ match
    ];
    for (name, vs) in &corpora {
        let mut bytes = Vec::new();
        for f in 0..frames {
            let a = f * frame;
            encode_block(&ts[a..a + frame], &vs[a..a + frame], &mut bytes);
        }
        let ratio = (n * 12) as f64 / bytes.len() as f64;
        println!(
            "{name}: {:>5.2} bits/pt  ratio {ratio:>5.1}x",
            bytes.len() as f64 * 8.0 / n as f64
        );
    }

    // Decode throughput on 1024-point blocks, per corpus.
    for (name, tone, noise) in [
        ("flat ", 0.0, 0.0),
        ("tone ", 85.0, 0.0),
        ("noisy", 85.0, 17.0 * 3.46),
    ] {
        let vs = mk(tone, noise, 7);
        let block = 1024usize;
        let mut blocks: Vec<Vec<u8>> = Vec::new();
        let mut a = 0;
        while a + block <= n {
            let mut b = Vec::new();
            encode_block(&ts[a..a + block], &vs[a..a + block], &mut b);
            blocks.push(b);
            a += block;
        }
        let (mut dts, mut dvs) = (Vec::new(), Vec::new());
        let t = Instant::now();
        let reps = 2000;
        let mut total = 0u64;
        for _ in 0..reps {
            for b in &blocks {
                dts.clear();
                dvs.clear();
                total += decode_block_into(b, &mut dts, &mut dvs).unwrap() as u64;
            }
        }
        let el = t.elapsed().as_secs_f64();
        println!(
            "decode {name}: {:.0} M samples/s ({total} samples in {el:.3} s)",
            total as f64 / el / 1e6
        );
    }
}
