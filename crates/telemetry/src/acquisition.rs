//! Cluster-wide full-rate acquisition: 45 gateways × 8 channels into
//! the TsDb.
//!
//! §III-A1 gives the design rate: every node's energy gateway samples
//! its power backplane at 800 kS/s per channel across the 8-way mux and
//! hardware-decimates ×16 to 50 kS/s before publishing. At the
//! machine's scale that is 45 × 8 × 800 kS/s ≈ **288 M front-end
//! samples per second** flowing acquisition → decimation → MQTT →
//! ingest. This module drives that path end to end:
//!
//! * each gateway is a [`GatewayShard`]: per-gateway deterministic RNG
//!   stream (forked from the config seed in node order), a per-channel
//!   periodic waveform template, a µs-scale PTP-residual clock offset,
//!   and reusable scratch buffers so the steady state performs **zero
//!   DSP allocations**;
//! * the per-round compute fan-out runs rayon-shaped
//!   (`par_iter_mut` over shards) and only fills per-shard buffers;
//!   publishing then happens **sequentially in gateway order** via the
//!   broker's batched path ([`Client::publish_batch`]). Compute order
//!   therefore cannot leak into broker/TsDb state, which is what makes
//!   the run digest independent of rayon's thread count;
//! * frames land through the existing [`FrameIngestor`] →
//!   [`ShardedTsDb`] pipeline, one bulk append per frame.
//!
//! Two DSP modes share the driver so experiment E25 can measure them
//! head to head on identical workloads: [`DspMode::Scalar`] is the
//! seed path (per-sample `f64` [`SarAdc::digitise`], batch
//! [`boxcar_decimate`](crate::decimation::boxcar_decimate), an owned
//! `Vec` per stage, one broker lock per frame); [`DspMode::Blocked`]
//! is the full-rate path ([`crate::kernels`] blocked `f32` kernels
//! over scratch, frames encoded from borrowed slices, one broker lock
//! per gateway round).

use crate::adc::SarAdc;
use crate::gateway::{power_topic, SampleFrame, CHANNELS};
use crate::ingest::{FrameIngestor, ShardedTsDb};
use crate::kernels::{boxcar_block, AdcKernel};
use crate::read::SeriesRead;
use crate::storage::TieringConfig;
use crate::tsdb::TsDbConfig;
use bytes::Bytes;
use davide_core::power::PowerTrace;
use davide_core::rng::Rng;
use davide_core::time::SimTime;
use davide_mqtt::{Broker, Client, QoS};
use davide_obs::{Counter, Histogram, ObsHub};
use rayon::prelude::*;
use std::time::Instant;

/// True-time origin of a run, seconds: an arbitrary positive epoch so
/// frame timestamps stay positive even for gateways whose PTP residual
/// is negative on the very first block.
pub const EPOCH_S: f64 = 10.0;

/// Which DSP implementation the rig drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DspMode {
    /// The retained reference path: per-sample `f64` quantisation,
    /// batch `f64` boxcar, per-stage owned buffers, per-frame publish.
    Scalar,
    /// The full-rate path: blocked `f32` kernels over reusable scratch,
    /// borrowed-slice frame encode, per-gateway batched publish.
    Blocked,
}

/// Scale and seeding for an acquisition run.
#[derive(Debug, Clone)]
pub struct AcquisitionConfig {
    /// Gateways (one per node; the machine has 45).
    pub nodes: u32,
    /// Muxed channels per gateway (the EG scans 8).
    pub channels: usize,
    /// Simulated seconds of acquisition.
    pub duration_s: f64,
    /// The converter model (sets the 800 kS/s per-channel rate).
    pub adc: SarAdc,
    /// Hardware decimation factor (×16 → 50 kS/s).
    pub decim_m: usize,
    /// Raw samples per channel per round; one round produces one frame
    /// per channel. 8000 raw = 10 ms = one 500-sample frame.
    pub block_raw: usize,
    /// Master seed; per-gateway streams are forked from it.
    pub seed: u64,
    /// TsDb shard count on the ingest side.
    pub shards: usize,
    /// Per-series raw ring capacity on the ingest side.
    pub raw_capacity: usize,
    /// Tiered-storage policy for the ingest-side store; `None` keeps
    /// the E25 seed behaviour (hot rings only, oldest points dropped).
    pub tiering: Option<TieringConfig>,
}

impl AcquisitionConfig {
    /// The paper's design point: 45 nodes × 8 channels × 800 kS/s for
    /// one simulated second ≈ 288 M raw samples.
    pub fn full_rate() -> Self {
        AcquisitionConfig {
            nodes: 45,
            channels: CHANNELS.len(),
            duration_s: 1.0,
            adc: SarAdc::am335x_power_channel(),
            decim_m: 16,
            block_raw: 8_000,
            seed: 0x00DA_71DE,
            shards: 8,
            // 4096 × 360 series × 12 B ≈ 17 MB of hot rings: the most
            // recent ~80 ms per series. Larger rings hold more history
            // but push the steady-state append working set out of
            // cache — at 16 K samples/series the ingest stage slows
            // measurably and its round-to-round variance triples.
            raw_capacity: 4_096,
            tiering: None,
        }
    }

    /// A seconds-scale slice of the same shape for smoke tests and CI:
    /// 6 nodes × 8 channels × 50 ms ≈ 2.4 M raw samples.
    pub fn smoke() -> Self {
        AcquisitionConfig {
            nodes: 6,
            duration_s: 0.05,
            ..Self::full_rate()
        }
    }

    /// Acquisition rounds in the run (one frame per channel per round).
    pub fn rounds(&self) -> usize {
        let block_s = self.block_raw as f64 / self.adc.sample_rate;
        (self.duration_s / block_s).round() as usize
    }

    /// Decimated samples per frame.
    pub fn frame_len(&self) -> usize {
        self.block_raw / self.decim_m
    }

    /// Total raw front-end samples the run pushes through the DSP.
    pub fn raw_samples(&self) -> u64 {
        self.nodes as u64 * self.channels as u64 * self.block_raw as u64 * self.rounds() as u64
    }
}

/// One gateway's state: identity, deterministic RNG stream, waveform
/// templates, clock offset, and all scratch the hot loop reuses.
struct GatewayShard {
    /// `davide/nodeNN/power/<channel>`, one per channel.
    topics: Vec<String>,
    /// Per-channel periodic raw waveform, one block long (`f32` for the
    /// blocked kernels, `f64` for the scalar reference path — same
    /// values, wire-precision vs model-precision).
    templates_f32: Vec<Vec<f32>>,
    templates_f64: Vec<Vec<f64>>,
    /// Residual PTP offset of this gateway's clock, seconds (µs-scale).
    clock_offset_s: f64,
    /// This gateway's private stream; advanced only by its own shard,
    /// so results cannot depend on cross-gateway execution order.
    rng: Rng,
    /// Raw-block scratch (template + per-round wobble).
    raw: Vec<f32>,
    /// Digitised-block scratch.
    dig: Vec<f32>,
    /// Decimated-frame scratch.
    dec: Vec<f32>,
    /// Frames rendered this round, in channel order, awaiting the
    /// sequential publish phase.
    batch: Vec<(String, Bytes)>,
}

/// Nominal power and tone frequency for a channel index: the node rail
/// plus CPU/GPU/aux component rails, each with a distinct ripple tone
/// so channels are distinguishable in the store.
fn channel_profile(ch: usize) -> (f64, f64) {
    match ch {
        0 => (1700.0, 50.0), // node
        1 | 2 => (300.0, 120.0),
        3..=6 => (350.0, 90.0 + 10.0 * ch as f64),
        _ => (100.0, 200.0),
    }
}

impl GatewayShard {
    fn new(node_id: u32, cfg: &AcquisitionConfig, rng: Rng) -> Self {
        let mut rng = rng;
        let clock_offset_s = rng.normal(0.0, 1e-6);
        let mut templates_f64 = Vec::with_capacity(cfg.channels);
        for ch in 0..cfg.channels {
            let (base, tone_hz) = channel_profile(ch);
            let dt = 1.0 / self_rate(cfg);
            let tpl: Vec<f64> = (0..cfg.block_raw)
                .map(|i| {
                    let t = i as f64 * dt;
                    base + 0.05 * base * (2.0 * std::f64::consts::PI * tone_hz * t).sin()
                        + rng.normal(0.0, 0.01 * base)
                })
                .collect();
            templates_f64.push(tpl);
        }
        let templates_f32 = templates_f64
            .iter()
            .map(|t| t.iter().map(|&v| v as f32).collect())
            .collect();
        GatewayShard {
            topics: (0..cfg.channels)
                .map(|ch| power_topic(node_id, CHANNELS[ch % CHANNELS.len()]))
                .collect(),
            templates_f32,
            templates_f64,
            clock_offset_s,
            rng,
            raw: Vec::with_capacity(cfg.block_raw),
            dig: Vec::with_capacity(cfg.block_raw),
            dec: Vec::with_capacity(cfg.frame_len()),
            batch: Vec::with_capacity(cfg.channels),
        }
    }

    /// Frame timestamp for `(round, channel)`: block start on the true
    /// timeline (which begins at [`EPOCH_S`], keeping stamps positive
    /// even under a negative PTP residual), plus this gateway's PTP
    /// residual, plus the mux scan skew of the channel.
    fn t0_s(&self, cfg: &AcquisitionConfig, round: usize, ch: usize) -> f64 {
        let block_s = cfg.block_raw as f64 / cfg.adc.sample_rate;
        EPOCH_S + round as f64 * block_s + self.clock_offset_s + ch as f64 / cfg.adc.sample_rate
    }

    /// Render one round through the blocked kernels into `self.batch`.
    /// Zero allocations besides the outgoing topic strings and wire
    /// payloads (which transfer ownership to the broker).
    fn render_round_blocked(&mut self, cfg: &AcquisitionConfig, kernel: &AdcKernel, round: usize) {
        let dt_frame = cfg.decim_m as f64 / cfg.adc.sample_rate;
        // One slow power-level wobble per round — the gateway's own
        // stream, so the value is independent of shard execution order.
        let wobble = self.rng.normal(0.0, 3.0) as f32;
        self.batch.clear();
        for ch in 0..cfg.channels {
            let tpl = &self.templates_f32[ch];
            self.raw.clear();
            self.raw.extend(tpl.iter().map(|&v| v + wobble));
            kernel.digitise_block(&self.raw, &mut self.dig);
            boxcar_block(&self.dig, cfg.decim_m, &mut self.dec);
            let payload = SampleFrame::encode_parts(self.t0_s(cfg, round, ch), dt_frame, &self.dec);
            self.batch.push((self.topics[ch].clone(), payload));
        }
    }

    /// Render one round through the retained scalar reference path —
    /// the seed pipeline E25 baselines against: `f64` per-sample
    /// quantisation, batch boxcar, an owned allocation per stage.
    fn render_round_scalar(&mut self, cfg: &AcquisitionConfig, round: usize) {
        let dt_raw = 1.0 / cfg.adc.sample_rate;
        let dt_frame = cfg.decim_m as f64 / cfg.adc.sample_rate;
        let wobble = self.rng.normal(0.0, 3.0);
        self.batch.clear();
        for ch in 0..cfg.channels {
            let t0 = self.t0_s(cfg, round, ch);
            let analog = PowerTrace::new(
                SimTime::from_secs_f64(t0),
                dt_raw,
                self.templates_f64[ch].iter().map(|&v| v + wobble).collect(),
            );
            let dig = cfg.adc.digitise(&analog);
            let dec = crate::decimation::boxcar_decimate(&dig, cfg.decim_m);
            let frame = SampleFrame {
                t0_s: t0,
                dt_s: dt_frame,
                watts: dec.samples.iter().map(|&w| w as f32).collect(),
            };
            self.batch.push((self.topics[ch].clone(), frame.encode()));
        }
    }
}

/// Per-stage instruments for the acquisition loop, registered in an
/// [`ObsHub`]: one histogram record per round per stage plus aggregate
/// throughput counters.
struct AcqObs {
    compute_ns: Histogram,
    publish_ns: Histogram,
    ingest_ns: Histogram,
    raw_samples: Counter,
    frames: Counter,
}

impl AcqObs {
    fn new(hub: &ObsHub) -> Self {
        let r = &hub.registry;
        AcqObs {
            compute_ns: r.histogram("acq_round_compute_ns"),
            publish_ns: r.histogram("acq_round_publish_ns"),
            ingest_ns: r.histogram("acq_round_ingest_ns"),
            raw_samples: r.counter("acq_raw_samples_total"),
            frames: r.counter("acq_frames_total"),
        }
    }
}

/// What one acquisition run did and how fast each stage went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcquisitionReport {
    /// Raw front-end samples pushed through the DSP.
    pub raw_samples: u64,
    /// Decimated samples offered to the store.
    pub decimated_samples: u64,
    /// Frames published.
    pub frames: u64,
    /// Samples the store actually absorbed.
    pub stored_samples: u64,
    /// Wall time in synth + DSP + encode across all rounds, ns.
    pub compute_ns: u64,
    /// Wall time in MQTT publish across all rounds, ns.
    pub publish_ns: u64,
    /// Wall time draining frames into the TsDb across all rounds, ns.
    pub ingest_ns: u64,
    /// Total wall time of the run, seconds.
    pub elapsed_s: f64,
    /// End-to-end raw throughput, samples/s.
    pub raw_samples_per_s: f64,
}

/// A complete acquisition bench rig: broker, gateways, ingestor, store.
pub struct AcquisitionRig {
    cfg: AcquisitionConfig,
    mode: DspMode,
    kernel: AdcKernel,
    shards: Vec<GatewayShard>,
    publisher: Client,
    ingestor: FrameIngestor,
    db: ShardedTsDb,
    obs: Option<AcqObs>,
    /// Rounds completed across every [`AcquisitionRig::run`] call so
    /// far. Repeated runs continue the acquisition timeline instead of
    /// restarting it — frame timestamps keep advancing, so an N×
    /// replay (experiment E26) is N back-to-back `run()` calls with no
    /// stale-drop artefacts.
    rounds_done: usize,
}

fn self_rate(cfg: &AcquisitionConfig) -> f64 {
    cfg.adc.sample_rate
}

impl AcquisitionRig {
    /// Build a rig: connect the broker, fork one RNG stream per gateway
    /// (in node order, so streams are independent of any execution
    /// order), precompute waveform templates, subscribe the ingestor.
    pub fn new(cfg: AcquisitionConfig, mode: DspMode) -> Self {
        assert_eq!(
            cfg.block_raw % cfg.decim_m,
            0,
            "blocks must hold whole decimation windows"
        );
        let broker = Broker::default();
        let mut master = Rng::seed_from(cfg.seed);
        let shards: Vec<GatewayShard> = (0..cfg.nodes)
            .map(|id| GatewayShard::new(id, &cfg, master.fork()))
            .collect();
        let ingestor = FrameIngestor::subscribe(&broker, "acq-mgmt", &["davide/+/power/#"])
            .expect("valid power filter");
        let db = ShardedTsDb::with_config(
            cfg.shards,
            TsDbConfig {
                raw_capacity: cfg.raw_capacity,
                rollup_capacity: 1_024,
                tiering: cfg.tiering.clone(),
                ..TsDbConfig::default()
            },
        )
        .expect("ingest store construction");
        let kernel = AdcKernel::new(&cfg.adc);
        let publisher = broker.connect("acq-fanin");
        AcquisitionRig {
            cfg,
            mode,
            kernel,
            shards,
            publisher,
            ingestor,
            db,
            obs: None,
            rounds_done: 0,
        }
    }

    /// Register per-stage instruments in `hub` (see `acq_round_*` and
    /// `acq_*_total` metric names).
    pub fn set_obs(&mut self, hub: &ObsHub) {
        self.obs = Some(AcqObs::new(hub));
    }

    /// The run's configuration.
    pub fn config(&self) -> &AcquisitionConfig {
        &self.cfg
    }

    /// The ingest-side store (for queries after a run).
    pub fn db(&self) -> &ShardedTsDb {
        &self.db
    }

    /// Mutable store access (e.g. a final [`ShardedTsDb::compact`]
    /// after the last run, before reading tier stats).
    pub fn db_mut(&mut self) -> &mut ShardedTsDb {
        &mut self.db
    }

    /// Drive the full run: every round renders one frame per channel on
    /// every gateway, publishes them in gateway order, and drains the
    /// broker into the store.
    pub fn run(&mut self) -> AcquisitionReport {
        let rounds = self.cfg.rounds();
        let round_base = self.rounds_done;
        let mut compute_ns = 0u64;
        let mut publish_ns = 0u64;
        let mut ingest_ns = 0u64;
        let t_run = Instant::now();
        for round in round_base..round_base + rounds {
            // Compute phase: rayon-shaped fan-out over gateways. Each
            // shard touches only its own RNG and scratch, so the round
            // is embarrassingly parallel; nothing shared is written.
            let t = Instant::now();
            let (cfg, kernel, mode) = (&self.cfg, &self.kernel, self.mode);
            self.shards.par_iter_mut().for_each(|s| match mode {
                DspMode::Blocked => s.render_round_blocked(cfg, kernel, round),
                DspMode::Scalar => s.render_round_scalar(cfg, round),
            });
            let dt = t.elapsed().as_nanos() as u64;
            compute_ns += dt;
            if let Some(o) = &self.obs {
                o.compute_ns.record(dt);
            }

            // Publish phase: sequential, in gateway order — the only
            // phase that touches shared state, so delivery order (and
            // every digest downstream) is identical no matter how the
            // compute phase was scheduled. Blocked mode takes the
            // broker's batched path (one lock per gateway); scalar
            // mode pays the seed path's one lock per frame.
            let t = Instant::now();
            for s in &self.shards {
                match self.mode {
                    DspMode::Blocked => {
                        self.publisher
                            .publish_batch(&s.batch)
                            .expect("valid power topics");
                    }
                    DspMode::Scalar => {
                        for (topic, payload) in &s.batch {
                            self.publisher
                                .publish(topic, payload.clone(), QoS::AtMostOnce, false)
                                .expect("valid power topic");
                        }
                    }
                }
            }
            let dt = t.elapsed().as_nanos() as u64;
            publish_ns += dt;
            if let Some(o) = &self.obs {
                o.publish_ns.record(dt);
            }

            // Ingest phase: drain this round's frames into the store.
            let t = Instant::now();
            self.ingestor.drain_into_sharded(&mut self.db);
            let dt = t.elapsed().as_nanos() as u64;
            ingest_ns += dt;
            if let Some(o) = &self.obs {
                o.ingest_ns.record(dt);
            }
        }
        self.rounds_done += rounds;
        let elapsed_s = t_run.elapsed().as_secs_f64();
        let stats = self.ingestor.stats();
        let raw_samples = self.cfg.raw_samples();
        if let Some(o) = &self.obs {
            o.raw_samples.add(raw_samples);
            o.frames.add(stats.frames);
        }
        AcquisitionReport {
            raw_samples,
            decimated_samples: raw_samples / self.cfg.decim_m as u64,
            frames: stats.frames,
            stored_samples: stats.samples,
            compute_ns,
            publish_ns,
            ingest_ns,
            elapsed_s,
            raw_samples_per_s: raw_samples as f64 / elapsed_s,
        }
    }

    /// FNV-1a digest over the store's end state: every series key, its
    /// absorbed-sample count, and the bit pattern of its raw-window
    /// mean. Bit-identical digests across reruns (and across rayon
    /// thread counts) are the rig's determinism contract.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for key in self.db.keys() {
            mix(key.as_bytes());
            mix(&self.db.series_watermark(&key).to_le_bytes());
            let mean = self
                .db
                .series_mean(&key, crate::tsdb::Resolution::Raw, 0.0, 1e18)
                .0
                .unwrap_or(f64::NAN);
            mix(&mean.to_bits().to_le_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AcquisitionConfig {
        AcquisitionConfig {
            nodes: 3,
            duration_s: 0.02,
            ..AcquisitionConfig::full_rate()
        }
    }

    #[test]
    fn blocked_run_fills_every_series() {
        let cfg = tiny();
        let rounds = cfg.rounds();
        assert_eq!(rounds, 2);
        let mut rig = AcquisitionRig::new(cfg.clone(), DspMode::Blocked);
        let rep = rig.run();
        assert_eq!(rep.raw_samples, 3 * 8 * 8_000 * 2);
        assert_eq!(rep.frames, 3 * 8 * 2);
        assert_eq!(rep.stored_samples, rep.decimated_samples);
        let keys = rig.db().keys();
        assert_eq!(keys.len(), 3 * 8, "one series per node/channel");
        for k in &keys {
            assert_eq!(
                rig.db().series_watermark(k),
                (cfg.frame_len() * rounds) as u64
            );
        }
    }

    #[test]
    fn modes_agree_on_counts_and_means() {
        let mut blocked = AcquisitionRig::new(tiny(), DspMode::Blocked);
        let mut scalar = AcquisitionRig::new(tiny(), DspMode::Scalar);
        let rb = blocked.run();
        let rs = scalar.run();
        assert_eq!(rb.frames, rs.frames);
        assert_eq!(rb.stored_samples, rs.stored_samples);
        assert_eq!(blocked.db().keys(), scalar.db().keys());
        for k in blocked.db().keys() {
            let mb = blocked
                .db()
                .series_mean(&k, crate::tsdb::Resolution::Raw, 0.0, 1e18)
                .0
                .unwrap();
            let ms = scalar
                .db()
                .series_mean(&k, crate::tsdb::Resolution::Raw, 0.0, 1e18)
                .0
                .unwrap();
            // f32 multiply-by-reciprocal quantisation vs f64 division
            // can land one code apart; means stay within ~an LSB.
            assert!((mb - ms).abs() < 1.5, "{k}: blocked {mb} vs scalar {ms}");
        }
    }

    #[test]
    fn reruns_are_bit_identical() {
        for mode in [DspMode::Blocked, DspMode::Scalar] {
            let mut a = AcquisitionRig::new(tiny(), mode);
            let mut b = AcquisitionRig::new(tiny(), mode);
            a.run();
            b.run();
            assert_eq!(a.digest(), b.digest(), "{mode:?}");
        }
    }

    #[test]
    fn digest_is_independent_of_rayon_thread_count() {
        // The determinism contract: per-gateway RNG streams plus a
        // sequential gateway-order publish phase make the run digest a
        // pure function of the config, whatever the pool width. Pin it
        // by rerunning with the pool forced to one thread.
        let mut default_pool = AcquisitionRig::new(tiny(), DspMode::Blocked);
        default_pool.run();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let mut single_thread = AcquisitionRig::new(tiny(), DspMode::Blocked);
        single_thread.run();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(default_pool.digest(), single_thread.digest());
    }

    #[test]
    fn tiered_replay_continues_the_timeline_without_stale_drops() {
        let cfg = AcquisitionConfig {
            tiering: Some(TieringConfig {
                seal_block: 256,
                hot_retain: Some(256),
                ..TieringConfig::default()
            }),
            ..tiny()
        };
        let mut rig = AcquisitionRig::new(cfg, DspMode::Blocked);
        rig.run();
        let first = rig.ingestor.stats().samples;
        rig.run();
        let stats = rig.ingestor.stats();
        // The second run picks the timeline up where the first ended —
        // frames land strictly after the series tails, so nothing is
        // dropped as stale.
        assert_eq!(stats.samples, 2 * first, "no stale drops on replay");
        assert_eq!(stats.stale_dropped, 0);
        rig.db_mut().compact();
        let st = rig.db().tier_stats();
        assert!(st.sealed_points > 0, "rings overflowed into blocks");
        assert_eq!(
            st.hot_points + st.compressed_points + st.disk_points,
            stats.samples,
            "tiering retains every absorbed sample"
        );
        assert_eq!(st.evicted_points, 0);
    }

    #[test]
    fn gateway_clocks_carry_distinct_ptp_residuals() {
        let cfg = tiny();
        let mut rig = AcquisitionRig::new(cfg, DspMode::Blocked);
        rig.run();
        let offsets: Vec<f64> = rig.shards.iter().map(|s| s.clock_offset_s).collect();
        assert!(
            offsets.iter().all(|o| o.abs() < 1e-5),
            "µs-scale: {offsets:?}"
        );
        assert!(
            offsets.windows(2).any(|w| w[0] != w[1]),
            "streams are per-gateway"
        );
    }

    #[test]
    fn scratch_buffers_reach_steady_state() {
        let cfg = tiny();
        let kernel = AdcKernel::new(&cfg.adc);
        let mut rig = AcquisitionRig::new(cfg.clone(), DspMode::Blocked);
        // Warm one round, then confirm the DSP scratch never regrows.
        rig.shards[0].render_round_blocked(&cfg, &kernel, 0);
        let caps = |s: &GatewayShard| (s.raw.capacity(), s.dig.capacity(), s.dec.capacity());
        let before = caps(&rig.shards[0]);
        for round in 1..50 {
            rig.shards[0].render_round_blocked(&cfg, &kernel, round);
        }
        assert_eq!(caps(&rig.shards[0]), before);
    }
}
