//! Frame-granular telemetry ingest: EG → MQTT → TsDb.
//!
//! The management node subscribes to every gateway's power topics and
//! records the stream into the time-series store (Fig. 4). At full
//! scale that is 45 nodes × 8 channels × 50 kS/s — per-sample ingestion
//! (decode a sample, hash the topic, append one point) does not keep
//! up. This module keeps *frames* intact end to end: each MQTT publish
//! is decoded once and becomes exactly one [`TsDb::append_frame_id`]
//! bulk append, with topic → [`SeriesId`](crate::tsdb::SeriesId)
//! resolution cached per ingestor so the steady state never hashes a
//! topic string more than once per frame.
//!
//! For multi-core management nodes, [`ShardedTsDb`] partitions series
//! across independent shards by topic hash and fans a decoded batch out
//! with rayon — each shard only touches its own series, so no locks are
//! needed.

use crate::gateway::SampleFrame;
use crate::storage::{RangeQuery, TierStats};
use crate::tsdb::{Point, Resolution, TsDb, TsDbConfig};
use davide_mqtt::{Broker, BrokerError, Client, Message, QoS};
use davide_obs::{frame_trace_id, Counter, Histogram, ObsHub, Stage};
use rayon::prelude::*;

/// Running totals for an ingest pipeline.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames decoded and appended.
    pub frames: u64,
    /// Samples actually stored across all frames.
    pub samples: u64,
    /// Payloads that failed [`SampleFrame::decode`] and were skipped.
    pub malformed: u64,
    /// Samples the store rejected as stale (duplicated or reordered
    /// delivery landing behind the series tail).
    pub stale_dropped: u64,
}

/// A decoded frame still attached to its source topic.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// MQTT topic the frame arrived on (becomes the series key).
    pub topic: String,
    /// The decoded sample frame.
    pub frame: SampleFrame,
    /// Causal trace id ([`frame_trace_id`] over topic + wire header),
    /// linking this frame to its broker-side trace stamps.
    pub trace_id: u64,
}

/// Decode a batch of MQTT messages into frames, counting malformed
/// payloads into `stats`.
pub fn decode_messages(msgs: Vec<Message>, stats: &mut IngestStats) -> Vec<DecodedFrame> {
    let mut out = Vec::with_capacity(msgs.len());
    for m in msgs {
        // The id hashes the payload head, so take it before decode
        // consumes the buffer.
        let trace_id = frame_trace_id(&m.topic, &m.payload);
        match SampleFrame::decode(m.payload) {
            Some(frame) => out.push(DecodedFrame {
                topic: m.topic,
                frame,
                trace_id,
            }),
            None => stats.malformed += 1,
        }
    }
    out
}

/// Ingest-side observability: throughput counters mirroring
/// [`IngestStats`] plus the frame-age histogram (ingest time minus the
/// frame's own `t0` timestamp — the telemetry pipeline's staleness) and
/// the [`Stage::IngestAppend`] trace stamp.
pub struct IngestObs {
    hub: ObsHub,
    frames: Counter,
    samples: Counter,
    malformed: Counter,
    stale: Counter,
    frame_age: Histogram,
    batch_frames: Histogram,
}

impl IngestObs {
    /// Ingest instruments registered in `hub`'s registry.
    pub fn new(hub: &ObsHub) -> Self {
        let r = &hub.registry;
        IngestObs {
            hub: hub.clone(),
            frames: r.counter("ingest_frames_total"),
            samples: r.counter("ingest_samples_total"),
            malformed: r.counter("ingest_malformed_total"),
            stale: r.counter("ingest_stale_dropped_total"),
            frame_age: r.histogram("ingest_frame_age_ns"),
            batch_frames: r.histogram("ingest_batch_frames"),
        }
    }

    /// Record one drained-and-appended batch: one clock read and one
    /// tracer lock for the whole batch (every frame shares the drain
    /// instant), one histogram record per frame for the age
    /// distribution, counters bumped once in aggregate. This is the
    /// shape that keeps the instruments inside the ingest bench's 5 %
    /// overhead budget.
    pub fn on_frames_appended(&self, frames: &[DecodedFrame], stored: u64, offered: u64) {
        let now = self.hub.clock.now_s();
        self.hub
            .tracer
            .stamp_batch(Stage::IngestAppend, now, frames.iter().map(|f| f.trace_id));
        for f in frames {
            self.record_age(now, f.frame.t0_s);
        }
        self.count_appended(frames.len() as u64, stored, offered);
    }

    /// [`IngestObs::on_frames_appended`] for the scratch-decoded ingest
    /// path, where frames never materialise as [`DecodedFrame`]s: the
    /// caller hands over the parallel trace-id and `t0` arrays it
    /// accumulated while appending. Identical instrument updates.
    pub fn on_frames_appended_parts(
        &self,
        trace_ids: &[u64],
        t0s: &[f64],
        stored: u64,
        offered: u64,
    ) {
        let now = self.hub.clock.now_s();
        self.hub
            .tracer
            .stamp_batch(Stage::IngestAppend, now, trace_ids.iter().copied());
        for &t0 in t0s {
            self.record_age(now, t0);
        }
        self.count_appended(trace_ids.len() as u64, stored, offered);
    }

    fn record_age(&self, now: f64, t0_s: f64) {
        let age_s = now - t0_s;
        if age_s >= 0.0 {
            self.frame_age.record((age_s * 1e9).round() as u64);
        }
    }

    fn count_appended(&self, frames: u64, stored: u64, offered: u64) {
        self.frames.add(frames);
        self.samples.add(stored);
        self.stale.add(offered - stored);
    }

    /// Record a drained batch's bookkeeping (batch size + malformed
    /// payloads skipped during decode).
    pub fn on_batch(&self, frames: usize, malformed: u64) {
        self.batch_frames.record(frames as u64);
        self.malformed.add(malformed);
    }
}

impl std::fmt::Debug for IngestObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestObs").finish_non_exhaustive()
    }
}

/// Management-node ingest agent: an MQTT subscription drained
/// frame-by-frame into a [`TsDb`] (or [`ShardedTsDb`]) with one bulk
/// append per publish.
pub struct FrameIngestor {
    client: Client,
    stats: IngestStats,
    obs: Option<IngestObs>,
    // Scratch reused across [`FrameIngestor::drain_into`] calls so the
    // single-store hot path decodes and appends without a per-frame
    // `Vec<f32>` (or any other steady-state) allocation.
    watts_scratch: Vec<f32>,
    ids_scratch: Vec<u64>,
    t0s_scratch: Vec<f64>,
}

impl FrameIngestor {
    /// Connect `name` to `broker` and subscribe to `filters`
    /// (e.g. `davide/+/power/#`).
    pub fn subscribe(broker: &Broker, name: &str, filters: &[&str]) -> Result<Self, BrokerError> {
        let mut client = broker.connect(name.to_string());
        for f in filters {
            client.subscribe(f, QoS::AtMostOnce)?;
        }
        Ok(FrameIngestor {
            client,
            stats: IngestStats::default(),
            obs: None,
            watts_scratch: Vec::new(),
            ids_scratch: Vec::new(),
            t0s_scratch: Vec::new(),
        })
    }

    /// Install (or clear) ingest observability instruments.
    pub fn set_obs(&mut self, obs: Option<IngestObs>) {
        self.obs = obs;
    }

    /// Totals since connect.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Drain every queued message and decode it (malformed payloads are
    /// counted and skipped).
    pub fn drain_frames(&mut self) -> Vec<DecodedFrame> {
        let msgs = self.client.drain();
        let malformed_before = self.stats.malformed;
        let frames = decode_messages(msgs, &mut self.stats);
        if let Some(o) = &self.obs {
            o.on_batch(frames.len(), self.stats.malformed - malformed_before);
        }
        frames
    }

    /// Drain every queued message into `db`: one bulk append per frame.
    /// Returns the number of frames ingested.
    ///
    /// Frames are decoded straight into the ingestor's reusable scratch
    /// with [`SampleFrame::decode_into`] and appended from there, so
    /// the steady state allocates nothing per frame — the decoded
    /// samples never materialise as an owned `Vec<f32>`.
    pub fn drain_into(&mut self, db: &mut TsDb) -> usize {
        let msgs = self.client.drain();
        let malformed_before = self.stats.malformed;
        let mut stored_total = 0u64;
        let mut offered_total = 0u64;
        self.ids_scratch.clear();
        self.t0s_scratch.clear();
        for m in &msgs {
            let trace_id = frame_trace_id(&m.topic, &m.payload);
            match SampleFrame::decode_into(&m.payload, &mut self.watts_scratch) {
                Some((t0_s, dt_s)) => {
                    let id = db.resolve(&m.topic);
                    let stored = db.append_frame_id(id, t0_s, dt_s, &self.watts_scratch);
                    stored_total += stored as u64;
                    offered_total += self.watts_scratch.len() as u64;
                    self.ids_scratch.push(trace_id);
                    self.t0s_scratch.push(t0_s);
                }
                None => self.stats.malformed += 1,
            }
        }
        let frames = self.ids_scratch.len();
        self.stats.samples += stored_total;
        self.stats.stale_dropped += offered_total - stored_total;
        self.stats.frames += frames as u64;
        if frames > 0 {
            db.compact();
        }
        if let Some(o) = &self.obs {
            o.on_batch(frames, self.stats.malformed - malformed_before);
            o.on_frames_appended_parts(
                &self.ids_scratch,
                &self.t0s_scratch,
                stored_total,
                offered_total,
            );
        }
        frames
    }

    /// Drain every queued message into a sharded store, each frame
    /// routed to its owning shard by topic hash. Returns the number of
    /// frames ingested.
    ///
    /// Like [`Self::drain_into`], frames decode straight into the
    /// ingestor's reusable scratch and are appended from there — the
    /// steady state allocates nothing per frame. (Callers that want
    /// the shard-parallel batch form can still pair
    /// [`Self::drain_frames`] with [`ShardedTsDb::ingest_batch`].)
    pub fn drain_into_sharded(&mut self, db: &mut ShardedTsDb) -> usize {
        let msgs = self.client.drain();
        let malformed_before = self.stats.malformed;
        let mut stored_total = 0u64;
        let mut offered_total = 0u64;
        self.ids_scratch.clear();
        self.t0s_scratch.clear();
        for m in &msgs {
            let trace_id = frame_trace_id(&m.topic, &m.payload);
            match SampleFrame::decode_into(&m.payload, &mut self.watts_scratch) {
                Some((t0_s, dt_s)) => {
                    let stored = db.append_frame(&m.topic, t0_s, dt_s, &self.watts_scratch);
                    stored_total += stored as u64;
                    offered_total += self.watts_scratch.len() as u64;
                    self.ids_scratch.push(trace_id);
                    self.t0s_scratch.push(t0_s);
                }
                None => self.stats.malformed += 1,
            }
        }
        let frames = self.ids_scratch.len();
        self.stats.samples += stored_total;
        self.stats.stale_dropped += offered_total - stored_total;
        self.stats.frames += frames as u64;
        if frames > 0 {
            db.compact();
        }
        if let Some(o) = &self.obs {
            o.on_batch(frames, self.stats.malformed - malformed_before);
            o.on_frames_appended_parts(
                &self.ids_scratch,
                &self.t0s_scratch,
                stored_total,
                offered_total,
            );
        }
        frames
    }
}

/// Shard index for a series key: FNV-1a over the bytes, reduced mod
/// `n`. A free function (not a method) so parallel shard workers can
/// evaluate it while the shard array is mutably split.
fn shard_index(key: &str, n: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % n as u64) as usize
}

/// A [`TsDb`] partitioned into independent shards by topic hash, for
/// rayon fan-out across cores: during [`ShardedTsDb::ingest_batch`]
/// every shard worker scans the shared batch and appends only the
/// frames that hash to it, so shards never contend on a series.
#[derive(Debug)]
pub struct ShardedTsDb {
    shards: Vec<TsDb>,
}

impl ShardedTsDb {
    /// A store with `n_shards` shards (at least 1), each with the given
    /// per-series capacities.
    pub fn new(n_shards: usize, raw_capacity: usize, rollup_capacity: usize) -> Self {
        let n = n_shards.max(1);
        ShardedTsDb {
            shards: (0..n)
                .map(|_| TsDb::with_capacity(raw_capacity, rollup_capacity))
                .collect(),
        }
    }

    /// A sharded store from a full [`TsDbConfig`]. When the tiering
    /// policy names a disk directory, each shard gets its own
    /// `shard-<i>` subdirectory (shards never share segment files), and
    /// any history left there by a previous process is recovered.
    pub fn with_config(n_shards: usize, cfg: TsDbConfig) -> std::io::Result<Self> {
        let n = n_shards.max(1);
        let shards = (0..n)
            .map(|i| {
                let mut shard_cfg = cfg.clone();
                if let Some(t) = &mut shard_cfg.tiering {
                    if let Some(d) = &mut t.disk {
                        d.dir = d.dir.join(format!("shard-{i}"));
                    }
                }
                TsDb::with_config(shard_cfg)
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(ShardedTsDb { shards })
    }

    /// Run one compaction pass on every shard in parallel — seal
    /// overfull hot rings into compressed blocks and demote over-budget
    /// blocks to disk. Returns `true` if any shard changed. Shards are
    /// independent, so this is a plain rayon fan-out.
    pub fn compact(&mut self) -> bool {
        self.shards
            .par_iter_mut()
            .map(|s| s.compact())
            .reduce(|a, b| a | b)
            .unwrap_or(false)
    }

    /// Aggregated tier occupancy across all shards.
    pub fn tier_stats(&self) -> TierStats {
        let mut st = TierStats::default();
        for s in &self.shards {
            st.merge(&s.tier_stats());
        }
        st
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a series key lives in.
    pub fn shard_of(&self, key: &str) -> usize {
        shard_index(key, self.shards.len())
    }

    /// The shard that owns a key, for read-path delegation.
    pub(crate) fn owning_shard(&self, key: &str) -> &TsDb {
        &self.shards[self.shard_of(key)]
    }

    /// Bulk-append one frame, routed to its owning shard by topic
    /// hash. The borrowed-slice twin of [`Self::ingest_batch`] for
    /// callers that decode into scratch and never materialise owned
    /// frames. Returns the number of samples stored.
    pub fn append_frame(&mut self, topic: &str, t0_s: f64, dt_s: f64, watts: &[f32]) -> usize {
        let n = self.shards.len();
        let shard = &mut self.shards[shard_index(topic, n)];
        let id = shard.resolve(topic);
        shard.append_frame_id(id, t0_s, dt_s, watts)
    }

    /// Ingest a decoded batch: shards run in parallel, each appending
    /// the frames that hash to it (one bulk append per frame). Returns
    /// the number of samples actually stored (stale points rejected by
    /// a shard are not counted).
    pub fn ingest_batch(&mut self, batch: &[DecodedFrame]) -> u64 {
        let n = self.shards.len();
        self.shards
            .par_iter_mut()
            .enumerate()
            .map(|(i, shard)| {
                let mut stored = 0u64;
                for f in batch {
                    if shard_index(&f.topic, n) == i {
                        let id = shard.resolve(&f.topic);
                        stored +=
                            shard.append_frame_id(id, f.frame.t0_s, f.frame.dt_s, &f.frame.watts)
                                as u64;
                    }
                }
                stored
            })
            .sum()
    }

    /// Flush rollup accumulators on every shard.
    pub fn flush(&mut self) {
        for s in &mut self.shards {
            s.flush();
        }
    }

    /// Known series names across all shards, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut k: Vec<String> = self.shards.iter().flat_map(|s| s.keys()).collect();
        k.sort();
        k
    }

    /// Total observations absorbed for a series.
    #[deprecated(
        since = "0.1.0",
        note = "one-off accessor shape; use `SeriesRead::series_watermark`"
    )]
    pub fn count(&self, key: &str) -> u64 {
        crate::read::SeriesRead::series_watermark(self, key)
    }

    /// Range query at a resolution (routed to the owning shard).
    #[deprecated(
        since = "0.1.0",
        note = "drops coverage provenance; use `SeriesRead::series_range`"
    )]
    pub fn query(&self, key: &str, res: Resolution, t0: f64, t1: f64) -> Vec<Point> {
        crate::read::SeriesRead::series_range(self, key, res, t0, t1).points
    }

    /// Range query with per-tier coverage accounting (routed to the
    /// owning shard).
    #[deprecated(
        since = "0.1.0",
        note = "one-off accessor shape; use `SeriesRead::series_range` \
                (and `series_range_filter` for coverage merged across shards)"
    )]
    pub fn query_range(&self, key: &str, res: Resolution, t0: f64, t1: f64) -> RangeQuery {
        crate::read::SeriesRead::series_range(self, key, res, t0, t1)
    }

    /// Mean over a window at a resolution.
    #[deprecated(
        since = "0.1.0",
        note = "drops coverage provenance; use `SeriesRead::series_mean`"
    )]
    pub fn mean(&self, key: &str, res: Resolution, t0: f64, t1: f64) -> Option<f64> {
        crate::read::SeriesRead::series_mean(self, key, res, t0, t1).0
    }

    /// Energy over a window (accounting query).
    #[deprecated(
        since = "0.1.0",
        note = "drops coverage provenance; use `SeriesRead::series_energy_j`"
    )]
    pub fn energy_j(&self, key: &str, t0: f64, t1: f64) -> f64 {
        crate::read::SeriesRead::series_energy_j(self, key, t0, t1).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::{power_topic, EnergyGateway};
    use crate::read::SeriesRead;
    use crate::waveform::WorkloadWaveform;
    use bytes::Bytes;
    use davide_core::rng::Rng;

    fn publish_job(broker: &Broker, node_id: u32, seed: u64) -> usize {
        let mut eg = EnergyGateway::connect(broker, node_id, seed);
        let mut gen = Rng::seed_from(seed ^ 0x5eed);
        let truth = WorkloadWaveform::hpc_job(1700.0, 0.3).render(800_000.0, 0.1, &mut gen);
        eg.acquire_and_publish("node", &truth, 10.0)
    }

    #[test]
    fn drains_frames_into_tsdb_bulk() {
        let broker = Broker::default();
        let mut ing = FrameIngestor::subscribe(&broker, "mgmt", &["davide/+/power/#"]).unwrap();
        let frames = publish_job(&broker, 3, 7);
        let mut db = TsDb::new();
        assert_eq!(ing.drain_into(&mut db), frames);
        let stats = ing.stats();
        assert_eq!(stats.frames, frames as u64);
        assert_eq!(stats.samples, 5000, "0.1 s at 50 kS/s");
        assert_eq!(stats.malformed, 0);
        let topic = power_topic(3, "node");
        let id = db.lookup(&topic).unwrap();
        assert_eq!(db.count_id(id), 5000);
        let mean = db.mean_id(id, Resolution::Raw, 0.0, 1e9).unwrap();
        assert!(
            mean > 500.0 && mean < 4000.0,
            "plausible node power: {mean}"
        );
        // Nothing left queued: a second drain is a no-op.
        assert_eq!(ing.drain_into(&mut db), 0);
    }

    #[test]
    fn malformed_payloads_counted_and_skipped() {
        let broker = Broker::default();
        let mut ing = FrameIngestor::subscribe(&broker, "mgmt", &["t/#"]).unwrap();
        let pub_client = broker.connect("p");
        pub_client
            .publish(
                "t/bad",
                Bytes::from_static(b"not a frame"),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
        let f = SampleFrame {
            t0_s: 0.0,
            dt_s: 0.01,
            watts: vec![100.0; 10],
        };
        pub_client
            .publish("t/good", f.encode(), QoS::AtMostOnce, false)
            .unwrap();
        let mut db = TsDb::new();
        assert_eq!(ing.drain_into(&mut db), 1);
        assert_eq!(ing.stats().malformed, 1);
        assert_eq!(db.lookup("t/good").map(|id| db.count_id(id)), Some(10));
        assert_eq!(db.lookup("t/bad"), None);
    }

    #[test]
    fn duplicated_and_reordered_frames_counted_as_stale() {
        let broker = Broker::default();
        let mut ing = FrameIngestor::subscribe(&broker, "mgmt", &["t/#"]).unwrap();
        let pub_client = broker.connect("p");
        let newer = SampleFrame {
            t0_s: 10.0,
            dt_s: 1.0,
            watts: vec![100.0; 5],
        };
        let older = SampleFrame {
            t0_s: 0.0,
            dt_s: 1.0,
            watts: vec![50.0; 5],
        };
        // Deliver out of order: newer first, then the delayed older
        // frame, then an exact duplicate of the newer one.
        for f in [&newer, &older, &newer] {
            pub_client
                .publish("t/power", f.encode(), QoS::AtMostOnce, false)
                .unwrap();
        }
        let mut db = TsDb::new();
        assert_eq!(ing.drain_into(&mut db), 3);
        let stats = ing.stats();
        assert_eq!(stats.frames, 3);
        // All 5 samples of the first frame land; the older frame is
        // entirely stale; the duplicate re-appends only its final
        // boundary sample (t == series tail).
        assert_eq!(stats.samples, 6); // 5 from the first, 1 boundary
        assert_eq!(stats.stale_dropped, 9); // all 5 older + 4 duplicate
        let id = db.lookup("t/power").unwrap();
        assert_eq!(db.count_id(id), 6);
    }

    #[test]
    fn sharded_matches_unsharded() {
        let broker = Broker::default();
        let mut ing_flat =
            FrameIngestor::subscribe(&broker, "flat", &["davide/+/power/#"]).unwrap();
        let mut ing_shard =
            FrameIngestor::subscribe(&broker, "shard", &["davide/+/power/#"]).unwrap();
        for node in 0..6 {
            publish_job(&broker, node, 40 + node as u64);
        }
        let mut flat = TsDb::new();
        let mut sharded = ShardedTsDb::new(4, 100_000, 100_000);
        let n1 = ing_flat.drain_into(&mut flat);
        let n2 = ing_shard.drain_into_sharded(&mut sharded);
        assert_eq!(n1, n2);
        assert_eq!(ing_flat.stats().samples, ing_shard.stats().samples);
        flat.flush();
        sharded.flush();
        assert_eq!(flat.keys(), sharded.keys());
        assert_eq!(sharded.keys().len(), 6);
        for key in flat.keys() {
            let id = flat.lookup(&key).unwrap();
            assert_eq!(flat.count_id(id), sharded.series_watermark(&key));
            for res in [Resolution::Raw, Resolution::Second] {
                assert_eq!(
                    flat.query_id(id, res, 0.0, 1e9),
                    sharded.series_range(&key, res, 0.0, 1e9).points,
                    "{key} at {res:?}"
                );
            }
            let (ef, es) = (
                flat.energy_j_id(id, 0.0, 1e9),
                sharded.series_energy_j(&key, 0.0, 1e9).0,
            );
            assert!((ef - es).abs() < 1e-12);
        }
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let db = ShardedTsDb::new(3, 10, 10);
        for node in 0..45 {
            for ch in crate::gateway::CHANNELS {
                let t = power_topic(node, ch);
                let s = db.shard_of(&t);
                assert!(s < 3);
                assert_eq!(s, db.shard_of(&t), "deterministic");
            }
        }
    }
}
