//! The smart profiler ("Pr" in Fig. 4): segment power traces into
//! application phases, attribute per-phase energy, and flag anomalies.
//!
//! §III-A1: "at user level the power measurements are needed by
//! profiling tools, to correlate the power consumption with program
//! phases and architectural events". Phase boundaries are detected as
//! change points of the rolling mean; each segment gets duration, mean
//! power and energy — the per-phase view developers use to find energy
//! saving opportunities (§IV).

use davide_core::power::PowerTrace;
use davide_core::units::{Joules, Watts};

/// One detected application phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSegment {
    /// Start time, seconds (trace-relative).
    pub t0: f64,
    /// End time, seconds.
    pub t1: f64,
    /// Mean power over the segment.
    pub mean: Watts,
    /// Energy of the segment.
    pub energy: Joules,
}

impl PhaseSegment {
    /// Segment duration.
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }
}

/// Phase-detection configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerConfig {
    /// Rolling-mean window, seconds.
    pub smooth_window_s: f64,
    /// Minimum jump between phase levels, watts.
    pub threshold_w: f64,
    /// Discard segments shorter than this, seconds (merged into the
    /// neighbour).
    pub min_phase_s: f64,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig {
            smooth_window_s: 0.02,
            threshold_w: 100.0,
            min_phase_s: 0.05,
        }
    }
}

/// Rolling mean with a centred window of `w` samples (edges truncated).
fn rolling_mean(samples: &[f64], w: usize) -> Vec<f64> {
    let n = samples.len();
    let w = w.max(1);
    let half = w / 2;
    // Prefix sums for O(1) windows.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &x in samples {
        prefix.push(prefix.last().unwrap() + x);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect()
}

/// Segment a trace into phases.
pub fn detect_phases(trace: &PowerTrace, cfg: ProfilerConfig) -> Vec<PhaseSegment> {
    if trace.len() < 2 {
        return Vec::new();
    }
    let w = (cfg.smooth_window_s / trace.dt).round().max(1.0) as usize;
    let smooth = rolling_mean(&trace.samples, w);

    // Change points: where the smoothed level moves by more than the
    // threshold since the current segment's running level.
    let mut boundaries = vec![0usize];
    let mut level = smooth[0];
    for (i, &v) in smooth.iter().enumerate() {
        if (v - level).abs() > cfg.threshold_w {
            boundaries.push(i);
            level = v;
        } else {
            // Track slow drift within a phase.
            level += 0.001 * (v - level);
        }
    }
    boundaries.push(trace.len());
    boundaries.dedup();

    // Build segments, merging ones shorter than min_phase_s forward.
    let min_len = (cfg.min_phase_s / trace.dt).round() as usize;
    let mut merged: Vec<(usize, usize)> = Vec::new();
    let mut start = boundaries[0];
    for win in boundaries.windows(2) {
        let (a, b) = (win[0], win[1]);
        let _ = a;
        if b - start >= min_len || b == trace.len() {
            merged.push((start, b));
            start = b;
        }
    }
    if merged.is_empty() {
        merged.push((0, trace.len()));
    }

    merged
        .into_iter()
        .filter(|(a, b)| b > a)
        .map(|(a, b)| {
            let seg = &trace.samples[a..b];
            let mean = seg.iter().sum::<f64>() / seg.len() as f64;
            let energy = mean * (b - a) as f64 * trace.dt;
            PhaseSegment {
                t0: trace.time_of(a) - trace.t0.as_secs_f64(),
                t1: trace.time_of(b - 1) + trace.dt - trace.t0.as_secs_f64(),
                mean: Watts(mean),
                energy: Joules(energy),
            }
        })
        .collect()
}

/// Profile summary: phase count, duty cycle of the high phase, and the
/// energy share of the hottest phase — the headline numbers a developer
/// reads before hunting for savings.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Number of detected phases.
    pub phases: usize,
    /// Fraction of time above the trace's midpoint power.
    pub high_duty: f64,
    /// Largest single-phase share of total energy.
    pub max_energy_share: f64,
    /// Mean power of the highest phase.
    pub hottest_mean: Watts,
}

/// Summarise a segmentation.
pub fn summarise(segments: &[PhaseSegment]) -> ProfileSummary {
    if segments.is_empty() {
        return ProfileSummary {
            phases: 0,
            high_duty: 0.0,
            max_energy_share: 0.0,
            hottest_mean: Watts::ZERO,
        };
    }
    let total_t: f64 = segments.iter().map(|s| s.duration()).sum();
    let total_e: f64 = segments.iter().map(|s| s.energy.0).sum();
    let lo = segments
        .iter()
        .map(|s| s.mean.0)
        .fold(f64::INFINITY, f64::min);
    let hi = segments
        .iter()
        .map(|s| s.mean.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let mid = 0.5 * (lo + hi);
    let high_t: f64 = segments
        .iter()
        .filter(|s| s.mean.0 > mid)
        .map(|s| s.duration())
        .sum();
    let max_share = segments
        .iter()
        .map(|s| s.energy.0 / total_e)
        .fold(0.0, f64::max);
    ProfileSummary {
        phases: segments.len(),
        high_duty: high_t / total_t,
        max_energy_share: max_share,
        hottest_mean: Watts(hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::time::SimTime;

    fn square_wave(rate: f64, duration: f64, period: f64, lo: f64, hi: f64) -> PowerTrace {
        let n = (rate * duration) as usize;
        PowerTrace::from_fn(SimTime::ZERO, 1.0 / rate, n, |t| {
            if (t / (period / 2.0)).floor() as i64 % 2 == 0 {
                hi
            } else {
                lo
            }
        })
    }

    #[test]
    fn detects_square_wave_phases() {
        // 2 s of a 0.5 s-period square wave → 8 half-periods.
        let tr = square_wave(10_000.0, 2.0, 0.5, 1000.0, 1600.0);
        let segs = detect_phases(&tr, ProfilerConfig::default());
        assert!(
            (7..=9).contains(&segs.len()),
            "expected ~8 phases, got {}",
            segs.len()
        );
        // Alternating levels near 1000/1600.
        for s in &segs {
            let near_lo = (s.mean.0 - 1000.0).abs() < 60.0;
            let near_hi = (s.mean.0 - 1600.0).abs() < 60.0;
            assert!(near_lo || near_hi, "phase mean {}", s.mean);
        }
        // Durations ≈ 0.25 s (except possibly the edges).
        for s in &segs[1..segs.len() - 1] {
            assert!((s.duration() - 0.25).abs() < 0.05, "{}", s.duration());
        }
    }

    #[test]
    fn flat_trace_is_one_phase() {
        let tr = PowerTrace::new(SimTime::ZERO, 1e-4, vec![700.0; 10_000]);
        let segs = detect_phases(&tr, ProfilerConfig::default());
        assert_eq!(segs.len(), 1);
        assert!((segs[0].mean.0 - 700.0).abs() < 1e-9);
        assert!((segs[0].energy.0 - 700.0).abs() < 1e-6, "1 s × 700 W");
    }

    #[test]
    fn segmentation_conserves_energy() {
        let tr = square_wave(10_000.0, 3.0, 0.6, 900.0, 1500.0);
        let segs = detect_phases(&tr, ProfilerConfig::default());
        let seg_e: f64 = segs.iter().map(|s| s.energy.0).sum();
        let rect_e = tr.energy_rect().0;
        assert!(
            (seg_e - rect_e).abs() / rect_e < 0.01,
            "segments {seg_e} vs trace {rect_e}"
        );
        // Segments tile the trace.
        for w in segs.windows(2) {
            assert!((w[0].t1 - w[1].t0).abs() < 1e-6);
        }
    }

    #[test]
    fn noise_does_not_fragment_phases() {
        use davide_core::rng::Rng;
        let mut rng = Rng::seed_from(4);
        let base = square_wave(10_000.0, 2.0, 1.0, 1000.0, 1500.0);
        let noisy = PowerTrace::new(
            base.t0,
            base.dt,
            base.samples
                .iter()
                .map(|&s| s + rng.normal(0.0, 30.0))
                .collect(),
        );
        let segs = detect_phases(&noisy, ProfilerConfig::default());
        assert!(
            (3..=5).contains(&segs.len()),
            "expected ~4 phases, got {}",
            segs.len()
        );
    }

    #[test]
    fn summary_statistics() {
        let tr = square_wave(10_000.0, 2.0, 1.0, 1000.0, 2000.0);
        let segs = detect_phases(&tr, ProfilerConfig::default());
        let sum = summarise(&segs);
        assert_eq!(sum.phases, segs.len());
        assert!(
            (sum.high_duty - 0.5).abs() < 0.1,
            "50 % duty: {}",
            sum.high_duty
        );
        assert!((sum.hottest_mean.0 - 2000.0).abs() < 50.0);
        assert!(sum.max_energy_share > 0.2 && sum.max_energy_share < 0.8);
    }

    #[test]
    fn empty_input_is_graceful() {
        let tr = PowerTrace::new(SimTime::ZERO, 1e-3, vec![]);
        assert!(detect_phases(&tr, ProfilerConfig::default()).is_empty());
        let sum = summarise(&[]);
        assert_eq!(sum.phases, 0);
    }
}
