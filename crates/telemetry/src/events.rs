//! Out-of-band architectural-event telemetry.
//!
//! §III-A1: "not only node power is accessible at high accuracy, but also
//! both per component power consumption and architectural events can be
//! monitored out-of-band from the BBB, and sent to external agents and
//! smart profilers". Profilers correlate these counters with the power
//! stream to find "sources of not-optimality and hazards".

use bytes::Bytes;

/// One architectural-event sample (normalised counter rates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchEventSample {
    /// Timestamp, seconds (PTP timebase).
    pub t_s: f64,
    /// Instructions per second across the node, in Ginstr/s.
    pub gips: f64,
    /// Memory traffic, GB/s.
    pub mem_gbps: f64,
    /// Mean GPU SM occupancy `[0,1]`.
    pub gpu_sm_util: f64,
    /// Mean CPU IPC.
    pub ipc: f64,
}

impl ArchEventSample {
    /// Serialise as a compact `key=value` text payload (human-greppable,
    /// the style such sideband channels actually use).
    pub fn encode(&self) -> Bytes {
        Bytes::from(format!(
            "t={:.6};gips={:.4};mem={:.4};sm={:.4};ipc={:.4}",
            self.t_s, self.gips, self.mem_gbps, self.gpu_sm_util, self.ipc
        ))
    }

    /// Parse the text payload; `None` on malformed input.
    pub fn decode(payload: &[u8]) -> Option<ArchEventSample> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut t = None;
        let mut gips = None;
        let mut mem = None;
        let mut sm = None;
        let mut ipc = None;
        for field in text.split(';') {
            let (k, v) = field.split_once('=')?;
            let v: f64 = v.parse().ok()?;
            match k {
                "t" => t = Some(v),
                "gips" => gips = Some(v),
                "mem" => mem = Some(v),
                "sm" => sm = Some(v),
                "ipc" => ipc = Some(v),
                _ => {}
            }
        }
        Some(ArchEventSample {
            t_s: t?,
            gips: gips?,
            mem_gbps: mem?,
            gpu_sm_util: sm?,
            ipc: ipc?,
        })
    }
}

/// Topic for a node's event stream.
pub fn events_topic(node_id: u32) -> String {
    format!("davide/node{node_id:02}/events")
}

/// Pearson correlation between two equal-length series — the profiler
/// primitive for relating counters to power.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrip() {
        let s = ArchEventSample {
            t_s: 12.5,
            gips: 480.0,
            mem_gbps: 210.5,
            gpu_sm_util: 0.93,
            ipc: 1.7,
        };
        let got = ArchEventSample::decode(&s.encode()).unwrap();
        assert!((got.t_s - s.t_s).abs() < 1e-6);
        assert!((got.gips - s.gips).abs() < 1e-3);
        assert!((got.gpu_sm_util - s.gpu_sm_util).abs() < 1e-3);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(ArchEventSample::decode(b"not a sample").is_none());
        assert!(
            ArchEventSample::decode(b"t=1;gips=2").is_none(),
            "missing fields"
        );
        assert!(ArchEventSample::decode(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn pearson_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &inv) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    #[test]
    fn power_correlates_with_activity() {
        // Power rises with SM utilisation in the node model — the
        // correlation a profiler would surface.
        use davide_core::node::{ComputeNode, NodeLoad};
        let node = ComputeNode::davide(0);
        let utils: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let power: Vec<f64> = utils
            .iter()
            .map(|&u| {
                node.power(NodeLoad {
                    gpu: u,
                    ..NodeLoad::IDLE
                })
                .0
            })
            .collect();
        assert!(pearson(&utils, &power) > 0.99);
    }
}
