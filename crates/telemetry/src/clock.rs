//! Clock synchronisation: free-running oscillators, NTP-style and
//! PTP-style (IEEE 1588) discipline.
//!
//! §III-A1: the BBB "integrates hardware-support for device
//! synchronization via the Precision Time Protocol", which is what lets
//! D.A.V.I.D.E. correlate power measurements *across* nodes and with
//! application phases. The companion study [13] compared synchronisation
//! protocols for exactly this use; E5 reproduces its conclusion: NTP
//! leaves millisecond-scale residuals, hardware-timestamped PTP leaves
//! sub-microsecond ones.

use davide_core::rng::Rng;

/// A free-running crystal oscillator with deterministic drift and
/// random-walk wander.
#[derive(Debug, Clone)]
pub struct Oscillator {
    /// Constant frequency error in parts-per-million.
    pub drift_ppm: f64,
    /// Random-walk intensity in ppm·√s (frequency wander).
    pub wander_ppm: f64,
    /// Current offset from true time, seconds.
    pub offset_s: f64,
    /// Current fractional frequency error (starts at `drift_ppm`).
    freq_error_ppm: f64,
}

impl Oscillator {
    /// A typical uncompensated crystal: ±20 ppm initial tolerance.
    pub fn crystal(rng: &mut Rng) -> Self {
        let drift = rng.uniform_in(-20.0, 20.0);
        Oscillator {
            drift_ppm: drift,
            wander_ppm: 0.02,
            offset_s: rng.uniform_in(-0.5, 0.5),
            freq_error_ppm: drift,
        }
    }

    /// Advance true time by `dt` seconds, accumulating offset.
    pub fn advance(&mut self, dt: f64, rng: &mut Rng) {
        self.freq_error_ppm += rng.normal(0.0, self.wander_ppm * dt.sqrt());
        self.offset_s += self.freq_error_ppm * 1e-6 * dt;
    }

    /// Local timestamp for a true time `t`.
    pub fn read(&self, t: f64) -> f64 {
        t + self.offset_s
    }

    /// Apply a phase (offset) correction.
    pub fn step_phase(&mut self, correction_s: f64) {
        self.offset_s -= correction_s;
    }

    /// Apply a frequency correction in ppm.
    pub fn adjust_frequency(&mut self, correction_ppm: f64) {
        self.freq_error_ppm -= correction_ppm;
    }
}

/// A time-sync protocol's measurement characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncProtocol {
    /// Seconds between synchronisation exchanges.
    pub interval_s: f64,
    /// RMS error of one offset measurement (network jitter +
    /// timestamping resolution).
    pub measurement_noise_s: f64,
    /// Systematic path-asymmetry bias of the offset measurement.
    pub asymmetry_bias_s: f64,
    /// Human name.
    pub name: &'static str,
}

impl SyncProtocol {
    /// Software-timestamped NTP over the management Ethernet: exchanges
    /// every 16 s, hundreds of microseconds of jitter, some asymmetry.
    pub fn ntp() -> Self {
        SyncProtocol {
            interval_s: 16.0,
            measurement_noise_s: 250e-6,
            asymmetry_bias_s: 120e-6,
            name: "NTP (software timestamps)",
        }
    }

    /// Hardware-timestamped PTP (IEEE 1588) on the BBB PHY: exchanges
    /// every second, tens of nanoseconds of jitter, negligible asymmetry
    /// on the switched management network.
    pub fn ptp_hw() -> Self {
        SyncProtocol {
            interval_s: 1.0,
            measurement_noise_s: 60e-9,
            asymmetry_bias_s: 20e-9,
            name: "PTP (hardware timestamps)",
        }
    }

    /// PTP with software timestamps (the degraded fallback measured in
    /// [13]): protocol cadence of PTP, jitter closer to NTP.
    pub fn ptp_sw() -> Self {
        SyncProtocol {
            interval_s: 1.0,
            measurement_noise_s: 25e-6,
            asymmetry_bias_s: 8e-6,
            name: "PTP (software timestamps)",
        }
    }

    /// One two-way exchange: returns the *measured* offset of `osc`
    /// versus the grandmaster, corrupted by noise and asymmetry.
    pub fn measure_offset(&self, osc: &Oscillator, rng: &mut Rng) -> f64 {
        osc.offset_s + self.asymmetry_bias_s + rng.normal(0.0, self.measurement_noise_s)
    }
}

/// PI servo disciplining an oscillator from protocol measurements.
#[derive(Debug, Clone)]
pub struct ClockServo {
    /// Protocol supplying measurements.
    pub protocol: SyncProtocol,
    /// Proportional gain: fraction of the measured offset stepped out
    /// each exchange.
    pub kp: f64,
    /// Integral gain: fraction of the inferred frequency error trimmed
    /// each exchange.
    pub ki: f64,
}

impl ClockServo {
    /// Standard gains: correct 70 % of the phase and 30 % of the
    /// inferred frequency error per exchange.
    pub fn new(protocol: SyncProtocol) -> Self {
        ClockServo {
            protocol,
            kp: 0.7,
            ki: 0.3,
        }
    }

    /// Run one exchange: measure, correct phase, trim frequency.
    ///
    /// The persistent part of the per-interval offset is what a constant
    /// frequency error accumulates, so `offset / interval` (in ppm) is
    /// the servo's frequency-error estimate.
    pub fn discipline(&mut self, osc: &mut Oscillator, rng: &mut Rng) {
        let measured = self.protocol.measure_offset(osc, rng);
        osc.step_phase(self.kp * measured);
        let freq_est_ppm = measured / self.protocol.interval_s * 1e6;
        osc.adjust_frequency((self.ki * freq_est_ppm).clamp(-10.0, 10.0));
    }
}

/// Residual-offset statistics from a sync simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncStats {
    /// Mean absolute residual offset, seconds.
    pub mean_abs_s: f64,
    /// RMS residual offset, seconds.
    pub rms_s: f64,
    /// Worst residual offset, seconds.
    pub max_abs_s: f64,
}

/// Simulate `duration_s` of a disciplined clock, sampling the residual
/// offset each second after an initial lock period of 30 exchanges.
pub fn run_sync_sim(protocol: SyncProtocol, duration_s: f64, seed: u64) -> SyncStats {
    let mut rng = Rng::seed_from(seed);
    let mut osc = Oscillator::crystal(&mut rng);
    let mut servo = ClockServo::new(protocol);
    let lock_time = 30.0 * protocol.interval_s;
    let mut residuals = Vec::new();
    let mut t = 0.0;
    let mut next_sync = 0.0;
    let dt = 0.25_f64.min(protocol.interval_s / 4.0);
    while t < duration_s + lock_time {
        if t >= next_sync {
            servo.discipline(&mut osc, &mut rng);
            next_sync += protocol.interval_s;
        }
        osc.advance(dt, &mut rng);
        if t >= lock_time {
            residuals.push(osc.offset_s);
        }
        t += dt;
    }
    let n = residuals.len().max(1) as f64;
    let mean_abs = residuals.iter().map(|r| r.abs()).sum::<f64>() / n;
    let rms = (residuals.iter().map(|r| r * r).sum::<f64>() / n).sqrt();
    let max_abs = residuals.iter().map(|r| r.abs()).fold(0.0, f64::max);
    SyncStats {
        mean_abs_s: mean_abs,
        rms_s: rms,
        max_abs_s: max_abs,
    }
}

/// Cross-node timestamp misalignment: two independently-disciplined
/// clocks stamping the same event differ by the difference of their
/// residual offsets. Returns the RMS misalignment.
pub fn cross_node_misalignment(protocol: SyncProtocol, duration_s: f64, seed: u64) -> f64 {
    let a = run_sync_sim(protocol, duration_s, seed);
    let b = run_sync_sim(protocol, duration_s, seed ^ 0xDEAD_BEEF);
    // Independent residuals add in quadrature.
    (a.rms_s * a.rms_s + b.rms_s * b.rms_s).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_running_oscillator_drifts() {
        let mut rng = Rng::seed_from(1);
        let mut osc = Oscillator::crystal(&mut rng);
        osc.offset_s = 0.0;
        let drift = osc.drift_ppm;
        for _ in 0..3600 {
            osc.advance(1.0, &mut rng);
        }
        // An undisciplined ±20 ppm crystal accumulates ~drift·3600 µs/h.
        let expected = drift * 1e-6 * 3600.0;
        assert!(
            (osc.offset_s - expected).abs() < 0.2e-3,
            "offset {} vs expected {expected}",
            osc.offset_s
        );
        assert!(osc.offset_s.abs() > 1e-6, "drift is not negligible");
    }

    #[test]
    fn read_applies_offset() {
        let mut rng = Rng::seed_from(2);
        let mut osc = Oscillator::crystal(&mut rng);
        osc.offset_s = 0.125;
        assert!((osc.read(100.0) - 100.125).abs() < 1e-12);
        osc.step_phase(0.125);
        assert!((osc.read(100.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn ptp_hw_achieves_sub_microsecond() {
        let stats = run_sync_sim(SyncProtocol::ptp_hw(), 600.0, 42);
        assert!(
            stats.rms_s < 1e-6,
            "hardware PTP must hold sub-µs: rms={}",
            stats.rms_s
        );
        assert!(stats.max_abs_s < 10e-6);
    }

    #[test]
    fn ntp_is_orders_of_magnitude_worse() {
        let ntp = run_sync_sim(SyncProtocol::ntp(), 600.0, 42);
        let ptp = run_sync_sim(SyncProtocol::ptp_hw(), 600.0, 42);
        assert!(
            ntp.rms_s > ptp.rms_s * 50.0,
            "ntp={} ptp={}",
            ntp.rms_s,
            ptp.rms_s
        );
        // NTP residuals sit in the 0.1–10 ms band.
        assert!(ntp.rms_s > 50e-6 && ntp.rms_s < 10e-3, "ntp={}", ntp.rms_s);
    }

    #[test]
    fn ptp_sw_sits_between() {
        let sw = run_sync_sim(SyncProtocol::ptp_sw(), 600.0, 7);
        let hw = run_sync_sim(SyncProtocol::ptp_hw(), 600.0, 7);
        let ntp = run_sync_sim(SyncProtocol::ntp(), 600.0, 7);
        assert!(hw.rms_s < sw.rms_s && sw.rms_s < ntp.rms_s);
    }

    #[test]
    fn cross_node_alignment_supports_50ksps_correlation() {
        // To correlate 50 kS/s (20 µs period) samples across nodes the
        // misalignment must be well below one sample period.
        let mis = cross_node_misalignment(SyncProtocol::ptp_hw(), 600.0, 99);
        assert!(mis < 2e-6, "misalignment {mis} ≥ 2 µs");
        let mis_ntp = cross_node_misalignment(SyncProtocol::ntp(), 600.0, 99);
        assert!(
            mis_ntp > 20e-6,
            "NTP cannot align 50 kS/s streams: {mis_ntp}"
        );
    }

    #[test]
    fn sync_sim_is_deterministic() {
        let a = run_sync_sim(SyncProtocol::ptp_hw(), 120.0, 5);
        let b = run_sync_sim(SyncProtocol::ptp_hw(), 120.0, 5);
        assert_eq!(a, b);
    }
}
