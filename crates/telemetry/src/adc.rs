//! The BeagleBone Black's 12-bit SAR ADC (TI AM335x) model.
//!
//! §III-A1: the AM335x integrates a 12-bit successive-approximation ADC
//! supporting up to 1.6 MS/s across 8 multiplexed channels. The energy
//! gateway runs it at 800 kS/s on the power channels and decimates in
//! hardware to 50 kS/s. This module models quantisation, full-scale
//! clipping, aperture jitter and channel multiplexing.

use davide_core::power::PowerTrace;
use davide_core::rng::Rng;
use davide_core::time::SimTime;

/// A successive-approximation ADC channel configuration.
#[derive(Debug, Clone)]
pub struct SarAdc {
    /// Resolution in bits (AM335x: 12).
    pub bits: u32,
    /// Watts mapped to code 0.
    pub full_scale_min: f64,
    /// Watts mapped to the maximum code.
    pub full_scale_max: f64,
    /// Sampling rate in samples/s.
    pub sample_rate: f64,
    /// RMS aperture jitter in seconds.
    pub aperture_jitter_s: f64,
}

impl SarAdc {
    /// The AM335x ADC as configured for a node power channel:
    /// 12 bits over 0–4 kW at 800 kS/s.
    pub fn am335x_power_channel() -> Self {
        SarAdc {
            bits: 12,
            full_scale_min: 0.0,
            full_scale_max: 4000.0,
            sample_rate: 800_000.0,
            aperture_jitter_s: 5e-9,
        }
    }

    /// Per-component channel: finer range for a 400 W rail.
    pub fn am335x_component_channel() -> Self {
        SarAdc {
            bits: 12,
            full_scale_min: 0.0,
            full_scale_max: 400.0,
            sample_rate: 800_000.0,
            aperture_jitter_s: 5e-9,
        }
    }

    /// Number of quantisation codes.
    pub fn codes(&self) -> u32 {
        1u32 << self.bits
    }

    /// LSB size in watts.
    pub fn lsb(&self) -> f64 {
        (self.full_scale_max - self.full_scale_min) / (self.codes() - 1) as f64
    }

    /// Quantise one analog value to a code.
    pub fn quantise(&self, watts: f64) -> u32 {
        let clamped = watts.clamp(self.full_scale_min, self.full_scale_max);
        (((clamped - self.full_scale_min) / self.lsb()).round() as u32).min(self.codes() - 1)
    }

    /// Convert a code back to watts.
    pub fn to_watts(&self, code: u32) -> f64 {
        self.full_scale_min + code as f64 * self.lsb()
    }

    /// Sample a continuous signal `f(t)` for `duration_s` seconds,
    /// applying aperture jitter and quantisation. Returns the digitised
    /// trace at the ADC rate.
    pub fn sample(
        &self,
        mut f: impl FnMut(f64) -> f64,
        duration_s: f64,
        rng: &mut Rng,
    ) -> PowerTrace {
        let n = (self.sample_rate * duration_s).round() as usize;
        let dt = 1.0 / self.sample_rate;
        let samples = (0..n)
            .map(|i| {
                let t = i as f64 * dt + rng.normal(0.0, self.aperture_jitter_s);
                self.to_watts(self.quantise(f(t.max(0.0))))
            })
            .collect();
        PowerTrace::new(SimTime::ZERO, dt, samples)
    }

    /// Re-digitise an already-sampled trace (e.g. after the analog
    /// sensor model), keeping its geometry.
    pub fn digitise(&self, analog: &PowerTrace) -> PowerTrace {
        let samples = analog
            .samples
            .iter()
            .map(|&w| self.to_watts(self.quantise(w)))
            .collect();
        PowerTrace::new(analog.t0, analog.dt, samples)
    }

    /// Ideal quantisation SNR in dB for a full-scale sine:
    /// `6.02·bits + 1.76`.
    pub fn ideal_snr_db(&self) -> f64 {
        6.02 * self.bits as f64 + 1.76
    }
}

/// The 8-channel input multiplexer: channels are sampled round-robin, so
/// each channel sees `rate/8` and a per-channel time skew.
#[derive(Debug, Clone)]
pub struct AdcMux {
    /// The underlying converter.
    pub adc: SarAdc,
    /// Channels in the scan list.
    pub channels: u32,
}

impl AdcMux {
    /// The gateway's scan: 8 channels (node, 2×CPU, 4×GPU, 12V aux).
    pub fn gateway_scan() -> Self {
        AdcMux {
            adc: SarAdc::am335x_power_channel(),
            channels: 8,
        }
    }

    /// Effective per-channel sample rate.
    pub fn per_channel_rate(&self) -> f64 {
        self.adc.sample_rate / self.channels as f64
    }

    /// Time skew between consecutive channels in the scan.
    pub fn channel_skew_s(&self) -> f64 {
        1.0 / self.adc.sample_rate
    }

    /// Sample `channels` simultaneous signals; returns one trace per
    /// channel at the per-channel rate, with the mux skew applied.
    pub fn sample_all(
        &self,
        signals: &[&dyn Fn(f64) -> f64],
        duration_s: f64,
        rng: &mut Rng,
    ) -> Vec<PowerTrace> {
        assert_eq!(signals.len(), self.channels as usize);
        let per_rate = self.per_channel_rate();
        let n = (per_rate * duration_s).round() as usize;
        let dt = 1.0 / per_rate;
        (0..self.channels as usize)
            .map(|c| {
                let skew = c as f64 * self.channel_skew_s();
                let samples = (0..n)
                    .map(|i| {
                        let t = i as f64 * dt + skew + rng.normal(0.0, self.adc.aperture_jitter_s);
                        self.adc.to_watts(self.adc.quantise(signals[c](t.max(0.0))))
                    })
                    .collect();
                PowerTrace::new(SimTime::from_secs_f64(skew), dt, samples)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_adc_parameters() {
        let adc = SarAdc::am335x_power_channel();
        assert_eq!(adc.bits, 12);
        assert_eq!(adc.codes(), 4096);
        assert_eq!(adc.sample_rate, 800_000.0);
        // 12-bit ideal SNR ≈ 74 dB.
        assert!((adc.ideal_snr_db() - 74.0).abs() < 0.1);
        // LSB on the 4 kW range is ~1 W.
        assert!((adc.lsb() - 0.977).abs() < 0.01);
    }

    #[test]
    fn quantise_roundtrip_within_lsb() {
        let adc = SarAdc::am335x_power_channel();
        for w in [0.0, 17.3, 523.9, 1999.5, 3999.9] {
            let got = adc.to_watts(adc.quantise(w));
            assert!((got - w).abs() <= adc.lsb() / 2.0 + 1e-9, "w={w} got={got}");
        }
    }

    #[test]
    fn clipping_at_full_scale() {
        let adc = SarAdc::am335x_power_channel();
        assert_eq!(adc.quantise(-100.0), 0);
        assert_eq!(adc.quantise(9999.0), adc.codes() - 1);
        assert!((adc.to_watts(adc.codes() - 1) - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn component_channel_has_finer_lsb() {
        let node = SarAdc::am335x_power_channel();
        let comp = SarAdc::am335x_component_channel();
        assert!(comp.lsb() < node.lsb() / 5.0);
    }

    #[test]
    fn sampling_a_dc_signal_is_exact_to_lsb() {
        let mut rng = Rng::seed_from(1);
        let adc = SarAdc::am335x_power_channel();
        let tr = adc.sample(|_| 1723.0, 0.01, &mut rng);
        assert_eq!(tr.len(), 8000);
        assert!((tr.mean().0 - 1723.0).abs() < adc.lsb());
    }

    #[test]
    fn quantisation_error_bounded_on_dynamic_signal() {
        let mut rng = Rng::seed_from(2);
        let adc = SarAdc::am335x_power_channel();
        let f = |t: f64| 2000.0 + 500.0 * (2.0 * std::f64::consts::PI * 100.0 * t).sin();
        let tr = adc.sample(f, 0.05, &mut rng);
        for (i, &s) in tr.samples.iter().enumerate() {
            let truth = f(tr.time_of(i));
            assert!(
                (s - truth).abs() < adc.lsb() * 2.0,
                "sample {i}: {s} vs {truth}"
            );
        }
    }

    #[test]
    fn mux_divides_rate_and_skews_channels() {
        let mux = AdcMux::gateway_scan();
        assert_eq!(mux.per_channel_rate(), 100_000.0);
        let mut rng = Rng::seed_from(3);
        let f0 = |_t: f64| 100.0;
        let f1 = |_t: f64| 200.0;
        let same = |_t: f64| 300.0;
        let signals: Vec<&dyn Fn(f64) -> f64> =
            vec![&f0, &f1, &same, &same, &same, &same, &same, &same];
        let traces = mux.sample_all(&signals, 0.001, &mut rng);
        assert_eq!(traces.len(), 8);
        assert_eq!(traces[0].len(), 100);
        assert!((traces[0].mean().0 - 100.0).abs() < 1.5);
        assert!((traces[1].mean().0 - 200.0).abs() < 1.5);
        // Channel time origins are skewed by the scan order.
        assert!(traces[1].t0 > traces[0].t0);
    }
}
