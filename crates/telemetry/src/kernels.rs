//! Full-rate DSP kernels for the acquisition hot path.
//!
//! At design scale the front end is 45 nodes × 8 muxed channels ×
//! 800 kS/s ≈ 288 MS/s (§III-A1). The general-purpose models in
//! [`crate::adc`] and [`crate::decimation`] — per-sample `f64`
//! quantisation with a division per call, window sums through iterator
//! chains, a fresh `Vec` per stage — are fine for fidelity experiments
//! but cannot carry that aggregate rate. This module provides the hot
//! loops as chunked, cache-blocked `f32` kernels over caller-owned
//! scratch buffers (zero steady-state allocation), in two variants
//! each:
//!
//! * a **scalar reference** (`*_scalar`) — the simple, obviously
//!   correct per-output loop, retained forever as the semantic spec;
//! * a **blocked kernel** (`*_block`) — processes [`LANES`] independent
//!   outputs concurrently so the compiler autovectorizes the
//!   element-wise work and breaks the floating-point add latency chain
//!   with [`LANES`] parallel accumulators.
//!
//! **Bit-exactness.** The blocked kernels are bit-identical to their
//! scalar references by construction: they never reassociate the
//! arithmetic of any single output. Quantisation is element-wise
//! (order-free); window sums and polyphase dot products keep each
//! output's accumulation order exactly as the scalar loop performs it —
//! the blocked variants only interleave *independent* outputs, which
//! IEEE-754 evaluates identically regardless of lane count. That is
//! also why the `wide-kernels` feature (32-lane blocks instead of 8)
//! cannot change a single bit of output. The property tests at the
//! bottom of this file pin the equivalence for arbitrary lengths,
//! factors and tail remainders.
//!
//! The kernels speak `f32` because that is the wire format
//! ([`crate::gateway::SampleFrame`] carries `f32` watts): quantising
//! straight into the payload precision removes a whole `f64 → f32`
//! conversion pass. A 12-bit code (≤ 4096 distinct values) is exactly
//! representable in `f32`, so no acquisition information is lost.

use crate::adc::SarAdc;

/// Outputs processed per blocked-kernel iteration. 8 matches one AVX2
/// `f32` vector; the `wide-kernels` feature widens to 32 (four
/// vectors' worth of independent accumulator chains) for wider cores.
/// Lane count never affects results — see the module docs.
pub const LANES: usize = if cfg!(feature = "wide-kernels") {
    32
} else {
    8
};

/// Precomputed quantise/reconstruct constants for one [`SarAdc`]
/// configuration: the hot loop multiplies by a cached reciprocal
/// instead of dividing by the LSB each sample (the division in
/// [`SarAdc::quantise`] costs more than the rest of the sample's
/// arithmetic combined).
#[derive(Debug, Clone, Copy)]
pub struct AdcKernel {
    /// Watts at code 0.
    min: f32,
    /// Watts at the top code.
    max: f32,
    /// `1 / lsb`, the cached reciprocal.
    inv_lsb: f32,
    /// LSB in watts.
    lsb: f32,
    /// Highest code as `f32` (codes ≤ 2^24 are exact).
    max_code: f32,
}

impl AdcKernel {
    /// Kernel constants for an ADC configuration.
    pub fn new(adc: &SarAdc) -> Self {
        let lsb = adc.lsb() as f32;
        AdcKernel {
            min: adc.full_scale_min as f32,
            max: adc.full_scale_max as f32,
            inv_lsb: 1.0 / lsb,
            lsb,
            max_code: (adc.codes() - 1) as f32,
        }
    }

    /// Quantise one analog watt value and reconstruct the reported
    /// watts — the scalar spec both variants implement. Uses the
    /// multiply-by-reciprocal form, rounding to the nearest code by
    /// exponent alignment: adding and subtracting 2^23 forces an `f32`
    /// in `[0, 2^23)` onto the integer grid under round-to-nearest-
    /// even. `f32::round` would be a library call on baseline x86-64
    /// (no SSE4.1 `roundps`) and block vectorization; the alignment
    /// trick is two `addps`-class ops. RNE vs `round`'s half-away tie
    /// break and the `f32` reciprocal together keep results within one
    /// code of the `f64` [`SarAdc::quantise`] path, differing only on
    /// values at a code boundary.
    #[inline]
    pub fn digitise_one(&self, watts: f32) -> f32 {
        /// 2^23 — smallest positive `f32` magnitude with ulp = 1.
        const ROUND_MAGIC: f32 = 8_388_608.0;
        let clamped = watts.max(self.min).min(self.max);
        let scaled = (clamped - self.min) * self.inv_lsb;
        let code = ((scaled + ROUND_MAGIC) - ROUND_MAGIC).min(self.max_code);
        self.min + code * self.lsb
    }

    /// Scalar reference: digitise `input` into `out` (cleared first),
    /// one sample at a time.
    pub fn digitise_scalar(&self, input: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(input.iter().map(|&w| self.digitise_one(w)));
    }

    /// Blocked kernel: identical arithmetic per element, grouped into
    /// [`LANES`]-wide chunks of straight-line array code the compiler
    /// turns into vector clamp/mul/round sequences. Tail samples run
    /// the scalar spec.
    pub fn digitise_block(&self, input: &[f32], out: &mut Vec<f32>) {
        // Size the output once and write lanes in place — per-chunk
        // `extend` bookkeeping would cost more than the arithmetic.
        // No `clear()` first: every slot is overwritten below, and
        // clear-then-resize would memset the whole buffer each call.
        out.resize(input.len(), 0.0);
        for (o, c) in out.chunks_exact_mut(LANES).zip(input.chunks_exact(LANES)) {
            for (dst, &w) in o.iter_mut().zip(c) {
                *dst = self.digitise_one(w);
            }
        }
        let tail = input.len() - input.len() % LANES;
        for (dst, &w) in out[tail..].iter_mut().zip(&input[tail..]) {
            *dst = self.digitise_one(w);
        }
    }
}

/// Scalar reference boxcar: `out[i]` is the mean of input window
/// `[i*m, (i+1)*m)`, summed in ascending index order. The tail
/// `input.len() % m` samples are dropped, exactly like
/// [`crate::decimation::boxcar_decimate`].
pub fn boxcar_scalar(input: &[f32], m: usize, out: &mut Vec<f32>) {
    assert!(m >= 1, "decimation factor must be ≥ 1");
    let inv = 1.0f32 / m as f32;
    out.clear();
    out.reserve(input.len() / m);
    for w in input.chunks_exact(m) {
        let mut acc = 0.0f32;
        for &x in w {
            acc += x;
        }
        out.push(acc * inv);
    }
}

/// Blocked boxcar: [`LANES`] windows reduced concurrently. Each
/// window's sum still runs in ascending index order (bit-exact vs
/// [`boxcar_scalar`]); the lanes are *independent* windows, so the `k`
/// loop advances [`LANES`] accumulator chains per step instead of
/// stalling on one add's latency.
pub fn boxcar_block(input: &[f32], m: usize, out: &mut Vec<f32>) {
    assert!(m >= 1, "decimation factor must be ≥ 1");
    let inv = 1.0f32 / m as f32;
    let n_out = input.len() / m;
    out.clear();
    out.reserve(n_out);
    let mut i = 0;
    while i + LANES <= n_out {
        let base = i * m;
        let mut acc = [0.0f32; LANES];
        for k in 0..m {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += input[base + j * m + k];
            }
        }
        for a in acc {
            out.push(a * inv);
        }
        i += LANES;
    }
    for w in input[i * m..n_out * m].chunks_exact(m) {
        let mut acc = 0.0f32;
        for &x in w {
            acc += x;
        }
        out.push(acc * inv);
    }
}

/// An anti-alias FIR decimator restructured as per-phase dot products.
///
/// The textbook form ([`crate::decimation::fir_decimate`]) walks all
/// `T` taps for every output. The polyphase form splits `h` into `m`
/// phases `h_p[j] = h[j·m + p]` so each output is a sum of `m` short
/// dot products; the blocked kernel evaluates [`LANES`] outputs per
/// pass with one broadcast coefficient per step.
///
/// Output semantics match `fir_decimate`: output `i` is centred on
/// input `i·m` with a `taps/2` look-back, and outputs whose window is
/// cut short by either stream edge renormalise over the taps that have
/// samples. **Accumulation order is phase-major** (phase `p` outer,
/// taps-within-phase `j` inner) in *both* variants — that order is this
/// kernel's spec, and the reason scalar and blocked agree bit for bit.
/// Against the tap-major `f64` `fir_decimate` the result agrees only to
/// rounding (different association, different precision).
#[derive(Debug, Clone)]
pub struct PolyphaseFir {
    /// Taps in `f32`, original tap order.
    h: Vec<f32>,
    /// Decimation factor (number of phases).
    m: usize,
    /// Centre offset, `taps / 2`.
    half: usize,
}

impl PolyphaseFir {
    /// Build from `f64` taps (e.g.
    /// [`crate::decimation::design_lowpass_fir`]) and factor `m`.
    pub fn new(h: &[f64], m: usize) -> Self {
        assert!(m >= 1, "decimation factor must be ≥ 1");
        assert!(!h.is_empty(), "FIR needs at least one tap");
        PolyphaseFir {
            h: h.iter().map(|&v| v as f32).collect(),
            m,
            half: h.len() / 2,
        }
    }

    /// Number of taps.
    pub fn taps(&self) -> usize {
        self.h.len()
    }

    /// Decimation factor.
    pub fn factor(&self) -> usize {
        self.m
    }

    /// Output count for an input length (mirrors `fir_decimate`).
    pub fn out_len(&self, input_len: usize) -> usize {
        input_len / self.m
    }

    /// First output index whose full tap window is in range, and one
    /// past the last: outputs in `lo..hi` need no edge handling.
    fn interior(&self, input_len: usize) -> (usize, usize) {
        let n_out = self.out_len(input_len);
        // Need i*m ≥ half  and  i*m + (taps-1-half) < len.
        let lo = self.half.div_ceil(self.m);
        let fwd = self.h.len() - 1 - self.half;
        let hi = (input_len.saturating_sub(fwd).saturating_sub(1) / self.m + 1).min(n_out);
        (lo.min(hi), hi)
    }

    /// One edge output (partial window): phase-major accumulation over
    /// the in-range taps, renormalised by their summed weight — the
    /// same edge treatment as `fir_decimate`. Shared by both variants,
    /// so edges are bit-exact trivially.
    fn edge_output(&self, input: &[f32], i: usize) -> f32 {
        let c = (i * self.m) as isize - self.half as isize;
        let mut acc = 0.0f32;
        let mut wsum = 0.0f32;
        for p in 0..self.m {
            let mut k = p;
            while k < self.h.len() {
                let idx = c + k as isize;
                if idx >= 0 && (idx as usize) < input.len() {
                    acc += self.h[k] * input[idx as usize];
                    wsum += self.h[k];
                }
                k += self.m;
            }
        }
        if wsum.abs() > 1e-12 {
            acc / wsum
        } else {
            acc
        }
    }

    /// Scalar reference: every output via phase-major dot products.
    pub fn decimate_scalar(&self, input: &[f32], out: &mut Vec<f32>) {
        let n_out = self.out_len(input.len());
        out.clear();
        out.reserve(n_out);
        let (lo, hi) = self.interior(input.len());
        for i in 0..lo {
            out.push(self.edge_output(input, i));
        }
        for i in lo..hi {
            let base = i * self.m - self.half;
            let mut acc = 0.0f32;
            for p in 0..self.m {
                let mut k = p;
                while k < self.h.len() {
                    acc += self.h[k] * input[base + k];
                    k += self.m;
                }
            }
            out.push(acc);
        }
        for i in hi..n_out {
            out.push(self.edge_output(input, i));
        }
    }

    /// Blocked kernel: interior outputs in [`LANES`]-wide groups. For
    /// each tap the coefficient is broadcast across the lanes and the
    /// [`LANES`] input loads stride by `m` — per-output accumulation
    /// order stays phase-major, identical to [`Self::decimate_scalar`].
    pub fn decimate_block(&self, input: &[f32], out: &mut Vec<f32>) {
        let n_out = self.out_len(input.len());
        out.clear();
        out.reserve(n_out);
        let (lo, hi) = self.interior(input.len());
        for i in 0..lo {
            out.push(self.edge_output(input, i));
        }
        let mut i = lo;
        while i + LANES <= hi {
            let base = i * self.m - self.half;
            let mut acc = [0.0f32; LANES];
            for p in 0..self.m {
                let mut k = p;
                while k < self.h.len() {
                    let hk = self.h[k];
                    for (j, a) in acc.iter_mut().enumerate() {
                        *a += hk * input[base + j * self.m + k];
                    }
                    k += self.m;
                }
            }
            out.extend_from_slice(&acc);
            i += LANES;
        }
        for i in i..hi {
            let base = i * self.m - self.half;
            let mut acc = 0.0f32;
            for p in 0..self.m {
                let mut k = p;
                while k < self.h.len() {
                    acc += self.h[k] * input[base + k];
                    k += self.m;
                }
            }
            out.push(acc);
        }
        for i in hi..n_out {
            out.push(self.edge_output(input, i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decimation::{boxcar_decimate, design_lowpass_fir, fir_decimate};
    use davide_core::power::PowerTrace;
    use davide_core::rng::Rng;
    use davide_core::time::SimTime;
    use proptest::prelude::*;

    fn adc() -> SarAdc {
        SarAdc::am335x_power_channel()
    }

    #[test]
    fn digitise_matches_f64_model_within_one_lsb() {
        let adc = adc();
        let k = AdcKernel::new(&adc);
        let mut rng = Rng::seed_from(1);
        for _ in 0..10_000 {
            let w = rng.uniform_in(-100.0, 4100.0);
            let fast = k.digitise_one(w as f32) as f64;
            let slow = adc.to_watts(adc.quantise(w));
            assert!(
                (fast - slow).abs() <= adc.lsb() + 1e-3,
                "w={w}: kernel {fast} vs model {slow}"
            );
        }
    }

    #[test]
    fn digitise_block_bit_exact_including_tails() {
        let k = AdcKernel::new(&adc());
        let mut rng = Rng::seed_from(2);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for n in [0, 1, 7, LANES - 1, LANES, LANES + 1, 1000, 1003] {
            let input: Vec<f32> = (0..n)
                .map(|_| rng.uniform_in(-50.0, 4200.0) as f32)
                .collect();
            k.digitise_scalar(&input, &mut a);
            k.digitise_block(&input, &mut b);
            assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn boxcar_block_bit_exact_and_drops_tail() {
        let mut rng = Rng::seed_from(3);
        let input: Vec<f32> = (0..1605)
            .map(|_| rng.uniform_in(0.0, 4000.0) as f32)
            .collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for m in [1, 2, 3, 7, 16, 100, 2000] {
            boxcar_scalar(&input, m, &mut a);
            boxcar_block(&input, m, &mut b);
            assert_eq!(a.len(), input.len() / m, "m={m}");
            assert!(
                a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
                "m={m}"
            );
            assert_eq!(a.len(), b.len(), "m={m}");
        }
    }

    #[test]
    fn boxcar_kernel_tracks_f64_decimator() {
        let mut rng = Rng::seed_from(4);
        let input: Vec<f32> = (0..8000)
            .map(|_| rng.uniform_in(1000.0, 2000.0) as f32)
            .collect();
        let tr = PowerTrace::new(
            SimTime::ZERO,
            1.25e-6,
            input.iter().map(|&v| v as f64).collect(),
        );
        let slow = boxcar_decimate(&tr, 16);
        let mut fast = Vec::new();
        boxcar_block(&input, 16, &mut fast);
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow.samples) {
            assert!((*f as f64 - s).abs() < 1e-2, "{f} vs {s}");
        }
    }

    #[test]
    fn polyphase_block_bit_exact_and_tracks_fir_decimate() {
        let h = design_lowpass_fir(63, 0.02);
        let pf = PolyphaseFir::new(&h, 16);
        assert_eq!(pf.taps(), 63);
        assert_eq!(pf.factor(), 16);
        let mut rng = Rng::seed_from(5);
        let input: Vec<f32> = (0..3217)
            .map(|_| rng.uniform_in(900.0, 1100.0) as f32)
            .collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        pf.decimate_scalar(&input, &mut a);
        pf.decimate_block(&input, &mut b);
        assert_eq!(a.len(), pf.out_len(input.len()));
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(a.len(), b.len());

        let tr = PowerTrace::new(
            SimTime::ZERO,
            1.25e-6,
            input.iter().map(|&v| v as f64).collect(),
        );
        let slow = fir_decimate(&tr, &h, 16);
        assert_eq!(a.len(), slow.len());
        for (f, s) in a.iter().zip(&slow.samples) {
            assert!((*f as f64 - s).abs() < 0.05, "{f} vs {s}");
        }
    }

    #[test]
    fn polyphase_dc_gain_is_unity() {
        let h = design_lowpass_fir(101, 0.02);
        let pf = PolyphaseFir::new(&h, 16);
        let input = vec![777.0f32; 10_000];
        let mut out = Vec::new();
        pf.decimate_block(&input, &mut out);
        for &s in &out {
            assert!((s - 777.0).abs() < 1e-2, "s={s}");
        }
    }

    #[test]
    fn kernels_reuse_scratch_without_reallocating() {
        let k = AdcKernel::new(&adc());
        let input = vec![1700.0f32; 8192];
        let mut out = Vec::with_capacity(8192);
        k.digitise_block(&input, &mut out);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        for _ in 0..100 {
            k.digitise_block(&input, &mut out);
            boxcar_block(&input, 16, &mut out);
            k.digitise_block(&input, &mut out);
        }
        assert_eq!(out.capacity(), cap, "steady state never regrows");
        assert_eq!(out.as_ptr(), ptr, "steady state never reallocates");
    }

    proptest! {
        /// Blocked digitise is bit-exact vs the scalar reference for
        /// arbitrary lengths (all tail remainders) and values.
        #[test]
        fn prop_digitise_bit_exact(
            input in proptest::collection::vec(-500.0f32..4500.0, 0..300),
        ) {
            let k = AdcKernel::new(&adc());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            k.digitise_scalar(&input, &mut a);
            k.digitise_block(&input, &mut b);
            prop_assert_eq!(a.len(), b.len());
            prop_assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }

        /// Blocked boxcar is bit-exact vs the scalar reference for
        /// arbitrary lengths, factors and tail remainders.
        #[test]
        fn prop_boxcar_bit_exact(
            input in proptest::collection::vec(0.0f32..4000.0, 0..400),
            m in 1usize..24,
        ) {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            boxcar_scalar(&input, m, &mut a);
            boxcar_block(&input, m, &mut b);
            prop_assert_eq!(a.len(), input.len() / m);
            prop_assert_eq!(a.len(), b.len());
            prop_assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }

        /// Blocked polyphase FIR is bit-exact vs the scalar reference
        /// for arbitrary lengths, factors and odd tap counts (edge
        /// windows on both stream ends included).
        #[test]
        fn prop_polyphase_bit_exact(
            input in proptest::collection::vec(0.0f32..2000.0, 0..400),
            m in 1usize..12,
            half_taps in 1usize..24,
        ) {
            let h = design_lowpass_fir(2 * half_taps + 1, 0.1);
            let pf = PolyphaseFir::new(&h, m);
            let (mut a, mut b) = (Vec::new(), Vec::new());
            pf.decimate_scalar(&input, &mut a);
            pf.decimate_block(&input, &mut b);
            prop_assert_eq!(a.len(), pf.out_len(input.len()));
            prop_assert_eq!(a.len(), b.len());
            prop_assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
        }

        /// The streaming `Decimator` honours its pending-window
        /// contract under arbitrary chunkings: concatenated output is
        /// bit-identical to the batch function over the whole stream,
        /// and `pending()` always reports the partial tail the batch
        /// call would have dropped.
        #[test]
        fn prop_streaming_decimator_pending_contract(
            samples in proptest::collection::vec(0.0f64..4000.0, 1..500),
            m in 1usize..20,
            sizes in proptest::collection::vec(1usize..97, 1..8),
        ) {
            use crate::decimation::{boxcar_remainder, Decimator};
            let tr = PowerTrace::new(SimTime::ZERO, 1e-5, samples.clone());
            let batch = boxcar_decimate(&tr, m);
            let mut dec = Decimator::boxcar(m);
            let mut out = Vec::new();
            let mut i = 0;
            let mut k = 0;
            while i < samples.len() {
                let sz = sizes[k % sizes.len()].min(samples.len() - i);
                dec.push(&samples[i..i + sz], &mut out);
                i += sz;
                k += 1;
                prop_assert_eq!(dec.pending(), boxcar_remainder(i, m));
            }
            dec.finish(&mut out);
            prop_assert_eq!(out, batch.samples);
        }
    }
}

/// Quick per-stage cost probe for kernel work (not a correctness
/// test): `cargo test --release -p davide-telemetry stage_timing --
/// --ignored --nocapture` prints ns/sample for each hot-loop stage at
/// the E25 block size. The criterion benches in `davide-bench` are
/// the maintained numbers; this exists for fast iteration while
/// editing this file.
#[cfg(test)]
mod timing {
    use super::*;
    use std::time::Instant;

    fn per_sample(elapsed_ns: f64, reps: usize, n: usize) -> f64 {
        elapsed_ns / (reps as f64 * n as f64)
    }

    #[test]
    #[ignore]
    fn stage_timing() {
        const BLOCK: usize = 8_000;
        const REPS: usize = 36_000; // 288 M samples, one E25's worth
        let k = AdcKernel::new(&SarAdc::am335x_power_channel());
        let tpl: Vec<f32> = (0..BLOCK).map(|i| 1700.0 + (i % 37) as f32).collect();
        let mut raw = Vec::with_capacity(BLOCK);
        let mut dig = Vec::with_capacity(BLOCK);
        let mut dec = Vec::with_capacity(BLOCK / 16);

        let t = Instant::now();
        for r in 0..REPS {
            raw.clear();
            let w = (r % 7) as f32;
            raw.extend(tpl.iter().map(|&v| v + w));
        }
        let fill = per_sample(t.elapsed().as_nanos() as f64, REPS, BLOCK);
        let t = Instant::now();
        for _ in 0..REPS {
            k.digitise_block(&raw, &mut dig);
        }
        let digitise = per_sample(t.elapsed().as_nanos() as f64, REPS, BLOCK);
        let t = Instant::now();
        for _ in 0..REPS {
            boxcar_block(&dig, 16, &mut dec);
        }
        let boxcar = per_sample(t.elapsed().as_nanos() as f64, REPS, BLOCK);
        println!("fill:     {fill:.2} ns/sample");
        println!("digitise: {digitise:.2} ns/sample");
        println!("boxcar:   {boxcar:.2} ns/sample");
    }
}
