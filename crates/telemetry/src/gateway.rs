//! The energy and power gateway (EG).
//!
//! §III-A1: each node carries a BeagleBone Black that samples the power
//! backplane, decimates in hardware, timestamps with its PTP-disciplined
//! clock and publishes over MQTT so that *multiple* agents (control,
//! aggregation, profiling, accounting) consume the same stream. This
//! module binds the acquisition chain ([`crate::monitor`]), the clock
//! ([`crate::clock`]) and the broker (`davide-mqtt`) together.

use crate::clock::{ClockServo, Oscillator, SyncProtocol};
use crate::monitor::MonitorChain;
use bytes::{BufMut, Bytes, BytesMut};
use davide_core::power::PowerTrace;
use davide_core::rng::Rng;
use davide_mqtt::{Broker, Client, QoS};

/// Magic number identifying an EG sample frame.
pub const FRAME_MAGIC: u32 = 0xDA71_DE01;

/// A timestamped batch of decimated power samples, the EG's MQTT payload
/// unit (one frame per publish keeps broker rates tractable at 50 kS/s).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleFrame {
    /// PTP timestamp of the first sample, seconds.
    pub t0_s: f64,
    /// Sample spacing, seconds.
    pub dt_s: f64,
    /// Power samples, watts.
    pub watts: Vec<f32>,
}

/// Bulk little-endian append of an `f32` slice. On little-endian
/// targets `f32` is plain-old-data whose in-memory layout already *is*
/// the wire layout, so the whole slice goes out as one `memcpy`; other
/// targets fall back to per-sample conversion.
fn put_f32_slice_le(buf: &mut BytesMut, vals: &[f32]) {
    #[cfg(target_endian = "little")]
    {
        // Safety: f32 has no padding or invalid bit patterns; viewing
        // the slice as bytes is always defined.
        let bytes =
            unsafe { std::slice::from_raw_parts(vals.as_ptr() as *const u8, vals.len() * 4) };
        buf.extend_from_slice(bytes);
    }
    #[cfg(not(target_endian = "little"))]
    for &v in vals {
        buf.put_f32_le(v);
    }
}

/// Bulk little-endian read of `n` `f32`s from `bytes` (must hold at
/// least `4 * n` bytes) into caller-owned scratch. Safe byte-exact
/// conversion; the compiler turns the chunked loop into wide copies on
/// little-endian targets.
fn get_f32_slice_le(bytes: &[u8], n: usize, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(n);
    out.extend(
        bytes[..4 * n]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
    );
}

impl SampleFrame {
    /// Serialise to the wire payload (little-endian binary). The sample
    /// block is written with one bulk copy, not a per-sample loop.
    pub fn encode(&self) -> Bytes {
        Self::encode_parts(self.t0_s, self.dt_s, &self.watts)
    }

    /// Serialise a frame from borrowed parts — the acquisition hot
    /// path's form of [`SampleFrame::encode`]: samples stay in the
    /// caller's scratch buffer and go straight onto the wire, so no
    /// owned `SampleFrame` (and no sample copy) is ever built.
    pub fn encode_parts(t0_s: f64, dt_s: f64, watts: &[f32]) -> Bytes {
        let mut buf = BytesMut::with_capacity(24 + 4 * watts.len());
        buf.put_u32_le(FRAME_MAGIC);
        buf.put_f64_le(t0_s);
        buf.put_f64_le(dt_s);
        buf.put_u32_le(watts.len() as u32);
        put_f32_slice_le(&mut buf, watts);
        buf.freeze()
    }

    /// Parse a wire payload; `None` on malformed input (bad magic,
    /// truncated header or body, or a declared length whose byte size
    /// overflows).
    pub fn decode(payload: Bytes) -> Option<SampleFrame> {
        let mut watts = Vec::new();
        let (t0_s, dt_s) = Self::decode_into(&payload, &mut watts)?;
        Some(SampleFrame { t0_s, dt_s, watts })
    }

    /// Parse a wire payload into caller-owned sample scratch, returning
    /// `(t0_s, dt_s)`. This is the ingest hot path's form of
    /// [`SampleFrame::decode`]: the scratch buffer is reused across
    /// frames, so the steady state never allocates per frame. On
    /// malformed input returns `None` and leaves `watts` cleared.
    pub fn decode_into(payload: &[u8], watts: &mut Vec<f32>) -> Option<(f64, f64)> {
        watts.clear();
        if payload.len() < 24 {
            return None;
        }
        if u32::from_le_bytes(payload[0..4].try_into().expect("checked length")) != FRAME_MAGIC {
            return None;
        }
        let t0_s = f64::from_le_bytes(payload[4..12].try_into().expect("checked length"));
        let dt_s = f64::from_le_bytes(payload[12..20].try_into().expect("checked length"));
        let n = u32::from_le_bytes(payload[20..24].try_into().expect("checked length")) as usize;
        let need = n.checked_mul(4)?;
        let body = &payload[24..];
        if body.len() < need {
            return None;
        }
        get_f32_slice_le(body, n, watts);
        Some((t0_s, dt_s))
    }

    /// Energy of this frame (left-rectangle).
    pub fn energy_j(&self) -> f64 {
        self.watts.iter().map(|&w| w as f64).sum::<f64>() * self.dt_s
    }

    /// Mean power of this frame.
    pub fn mean_w(&self) -> f64 {
        if self.watts.is_empty() {
            return 0.0;
        }
        self.watts.iter().map(|&w| w as f64).sum::<f64>() / self.watts.len() as f64
    }
}

/// The per-node power channels the gateway scans (§III-A1: node power
/// plus the main computing components).
pub const CHANNELS: [&str; 8] = [
    "node", "cpu0", "cpu1", "gpu0", "gpu1", "gpu2", "gpu3", "aux12v",
];

/// Topic for a node/channel pair: `davide/node{NN}/power/{channel}`.
pub fn power_topic(node_id: u32, channel: &str) -> String {
    format!("davide/node{node_id:02}/power/{channel}")
}

/// Filter matching every power channel of one node.
pub fn node_filter(node_id: u32) -> String {
    format!("davide/node{node_id:02}/power/#")
}

/// Filter matching one channel across all nodes.
pub fn channel_filter(channel: &str) -> String {
    format!("davide/+/power/{channel}")
}

/// One node's energy gateway.
pub struct EnergyGateway {
    /// Node this gateway serves.
    pub node_id: u32,
    /// Acquisition chain (sensor + ADC + decimation).
    pub chain: MonitorChain,
    /// Local oscillator, PTP-disciplined.
    pub clock: Oscillator,
    servo: ClockServo,
    client: Client,
    /// Samples per published frame.
    pub frame_len: usize,
    frames_published: u64,
    rng: Rng,
}

impl EnergyGateway {
    /// Connect a gateway for `node_id` to `broker`, with hardware PTP.
    pub fn connect(broker: &Broker, node_id: u32, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let chain = MonitorChain::davide_eg(&mut rng.fork());
        let mut clock = Oscillator::crystal(&mut rng.fork());
        let mut servo = ClockServo::new(SyncProtocol::ptp_hw());
        // Lock the servo before service.
        for _ in 0..16 {
            servo.discipline(&mut clock, &mut rng);
            clock.advance(1.0, &mut rng);
        }
        let client = broker.connect(format!("eg-node{node_id:02}"));
        EnergyGateway {
            node_id,
            chain,
            clock,
            servo,
            client,
            frame_len: 500, // 10 ms of 50 kS/s data per frame
            frames_published: 0,
            rng,
        }
    }

    /// Frames published so far.
    pub fn frames_published(&self) -> u64 {
        self.frames_published
    }

    /// Run one PTP exchange and advance the local clock by `dt` true
    /// seconds (call once per second of simulated time).
    pub fn tick_clock(&mut self, dt: f64) {
        self.servo.discipline(&mut self.clock, &mut self.rng);
        self.clock.advance(dt, &mut self.rng);
    }

    /// Acquire a ground-truth trace on `channel` through the chain and
    /// publish it as timestamped frames. Returns the number of frames.
    pub fn acquire_and_publish(
        &mut self,
        channel: &str,
        truth: &PowerTrace,
        true_time_s: f64,
    ) -> usize {
        let reported = self.chain.acquire(truth, &mut self.rng);
        self.publish_reported(channel, &reported, true_time_s)
    }

    /// Publish an already-acquired trace as frames (used when one
    /// acquisition pass feeds several consumers in tests).
    pub fn publish_reported(
        &mut self,
        channel: &str,
        reported: &PowerTrace,
        true_time_s: f64,
    ) -> usize {
        let topic = power_topic(self.node_id, channel);
        let mut frames = 0;
        let mut i = 0;
        while i < reported.len() {
            let end = (i + self.frame_len).min(reported.len());
            let watts: Vec<f32> = reported.samples[i..end].iter().map(|&w| w as f32).collect();
            // Timestamp with the PTP-disciplined local clock.
            let frame = SampleFrame {
                t0_s: self.clock.read(true_time_s + i as f64 * reported.dt),
                dt_s: reported.dt,
                watts,
            };
            self.client
                .publish(&topic, frame.encode(), QoS::AtMostOnce, false)
                .expect("valid power topic");
            frames += 1;
            i = end;
        }
        self.frames_published += frames as u64;
        frames
    }

    /// Publish a retained status message (e.g. the active power cap) —
    /// late subscribers immediately learn the current value.
    pub fn publish_status(&self, key: &str, value: &str) {
        let topic = format!("davide/node{:02}/status/{key}", self.node_id);
        self.client
            .publish(
                &topic,
                Bytes::copy_from_slice(value.as_bytes()),
                QoS::AtLeastOnce,
                true,
            )
            .expect("valid status topic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::WorkloadWaveform;
    use std::time::Duration;

    #[test]
    fn frame_roundtrip() {
        let f = SampleFrame {
            t0_s: 123.456,
            dt_s: 2e-5,
            watts: vec![1700.0, 1710.5, 1695.25],
        };
        let decoded = SampleFrame::decode(f.encode()).unwrap();
        assert_eq!(decoded, f);
        assert!((f.mean_w() - 1701.9166).abs() < 1e-3);
        assert!((f.energy_j() - (1700.0 + 1710.5 + 1695.25) * 2e-5).abs() < 1e-9);
    }

    #[test]
    fn frame_decode_rejects_garbage() {
        assert!(SampleFrame::decode(Bytes::from_static(b"junk")).is_none());
        let mut buf = BytesMut::new();
        buf.put_u32_le(FRAME_MAGIC);
        buf.put_f64_le(0.0);
        buf.put_f64_le(1.0);
        buf.put_u32_le(100); // claims 100 samples, provides none
        assert!(SampleFrame::decode(buf.freeze()).is_none());
    }

    #[test]
    fn topics_are_valid_and_match() {
        use davide_mqtt::topic::{filter_matches, validate_filter, validate_topic};
        let t = power_topic(3, "gpu1");
        assert_eq!(t, "davide/node03/power/gpu1");
        assert!(validate_topic(&t).is_ok());
        assert!(validate_filter(&node_filter(3)).is_ok());
        assert!(filter_matches(&node_filter(3), &t));
        assert!(filter_matches(&channel_filter("gpu1"), &t));
        assert!(!filter_matches(&channel_filter("cpu0"), &t));
    }

    #[test]
    fn gateway_publishes_frames_that_reconstruct_energy() {
        let broker = Broker::default();
        let mut agent = broker.connect("aggregator");
        agent.subscribe(&node_filter(7), QoS::AtMostOnce).unwrap();

        let mut eg = EnergyGateway::connect(&broker, 7, 42);
        let mut gen = Rng::seed_from(9);
        let truth = WorkloadWaveform::hpc_job(1700.0, 0.3).render(800_000.0, 0.5, &mut gen);
        let frames = eg.acquire_and_publish("node", &truth, 100.0);
        assert_eq!(frames, 50, "0.5 s at 50 kS/s in 500-sample frames");

        let mut total_j = 0.0;
        let mut count = 0;
        while let Some(m) = agent.recv_timeout(Duration::from_millis(200)) {
            let f = SampleFrame::decode(m.payload).expect("valid frame");
            total_j += f.energy_j();
            count += 1;
            if count == frames {
                break;
            }
        }
        let truth_j = truth.energy().0;
        let err = (total_j - truth_j).abs() / truth_j * 100.0;
        assert!(err < 1.0, "reconstructed energy error {err}%");
    }

    #[test]
    fn frames_carry_monotonic_ptp_timestamps() {
        let broker = Broker::default();
        let mut agent = broker.connect("a");
        agent.subscribe("davide/#", QoS::AtMostOnce).unwrap();
        let mut eg = EnergyGateway::connect(&broker, 1, 5);
        let mut gen = Rng::seed_from(2);
        let truth = WorkloadWaveform::idle(300.0).render(800_000.0, 0.1, &mut gen);
        eg.acquire_and_publish("node", &truth, 50.0);
        let stamps: Vec<f64> = agent
            .drain()
            .into_iter()
            .map(|m| SampleFrame::decode(m.payload).unwrap().t0_s)
            .collect();
        assert!(stamps.windows(2).all(|w| w[1] > w[0]), "monotonic");
        // PTP keeps the stamp within microseconds of true time.
        assert!(
            (stamps[0] - 50.0).abs() < 1e-4,
            "first stamp {} vs true 50.0",
            stamps[0]
        );
    }

    #[test]
    fn status_is_retained_for_late_subscribers() {
        let broker = Broker::default();
        let eg = EnergyGateway::connect(&broker, 2, 3);
        eg.publish_status("powercap", "1500");
        let mut late = broker.connect("late");
        late.subscribe("davide/+/status/powercap", QoS::AtMostOnce)
            .unwrap();
        let m = late.recv_timeout(Duration::from_millis(200)).unwrap();
        assert!(m.retain);
        assert_eq!(&m.payload[..], b"1500");
    }

    #[test]
    fn multiple_gateways_fan_in_to_one_aggregator() {
        let broker = Broker::default();
        let mut agg = broker.connect("site-aggregator");
        agg.subscribe(&channel_filter("node"), QoS::AtMostOnce)
            .unwrap();
        let mut gen = Rng::seed_from(4);
        let truth = WorkloadWaveform::idle(500.0).render(800_000.0, 0.05, &mut gen);
        for id in 0..4 {
            let mut eg = EnergyGateway::connect(&broker, id, 100 + id as u64);
            eg.acquire_and_publish("node", &truth, 0.0);
        }
        let msgs = agg.drain();
        let nodes: std::collections::HashSet<String> =
            msgs.iter().map(|m| m.topic.clone()).collect();
        assert_eq!(nodes.len(), 4, "one topic per node");
    }
}
