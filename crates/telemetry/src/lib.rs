//! # davide-telemetry
//!
//! The fine-grain power/energy monitoring stack of D.A.V.I.D.E.
//! (§III-A1 of the paper): the per-node *energy gateway* built around a
//! BeagleBone Black, its acquisition chain, its PTP timebase, and the
//! baseline monitors it is compared against in §V-C.
//!
//! * [`waveform`] — synthetic workload power signals (the substitution
//!   for the physical power backplane; see DESIGN.md);
//! * [`sensors`] — shunt / Hall-effect analog front-ends with gain,
//!   offset, bandwidth and noise;
//! * [`adc`] — the AM335x 12-bit SAR ADC (800 kS/s, 8-way mux, jitter);
//! * [`decimation`] — boxcar (hardware-averaging) and windowed-sinc FIR
//!   decimators, plus the aliasing strawman and a Goertzel analyser;
//! * [`clock`] — oscillator drift and NTP/PTP discipline (sub-µs with
//!   hardware timestamps);
//! * [`kernels`] — the same DSP stages as cache-blocked `f32` hot-loop
//!   kernels (bit-exact blocked variants) for the full-rate
//!   acquisition path; [`acquisition`] — the 45-gateway × 8-channel
//!   full-rate driver built on them;
//! * [`monitor`] — complete chains: DAVIDE EG, HDEEM, PowerInsight,
//!   ArduPower, IPMI — used by experiment E3;
//! * [`gateway`] — the EG proper: acquisition + PTP timestamps + MQTT
//!   frame publishing; [`energy`] — stream-side energy integration;
//! * [`events`] — out-of-band architectural-event telemetry and the
//!   correlation primitive profilers use;
//! * [`ingest`] — management-node side: MQTT frames drained into the
//!   [`tsdb`] store with one bulk append per frame, optionally sharded
//!   across cores;
//! * [`storage`] — the tiered storage engine behind [`tsdb`]: sealed
//!   Gorilla-compressed blocks, an in-memory compressed tier, on-disk
//!   segment files, and the block-skipping range scan;
//! * [`selfmon`] — the `davide-obs` self-telemetry bridge's MQTT
//!   adapter: the metrics registry republished as ordinary one-sample
//!   frames on the reserved `davide/obs/#` namespace.

#![warn(missing_docs)]

pub mod acquisition;
pub mod adc;
pub mod calibration;
pub mod clock;
pub mod decimation;
pub mod energy;
pub mod events;
pub mod gateway;
pub mod hazards;
pub mod ingest;
pub mod kernels;
pub mod monitor;
pub mod profiler;
pub mod read;
pub mod selfmon;
pub mod sensors;
pub mod spectral;
pub mod storage;
pub mod tsdb;
pub mod waveform;

pub use acquisition::{AcquisitionConfig, AcquisitionReport, AcquisitionRig};
pub use calibration::{calibrate, standard_calibration, Calibration};
pub use clock::{run_sync_sim, SyncProtocol, SyncStats};
pub use decimation::Decimator;
pub use energy::EnergyIntegrator;
pub use gateway::{EnergyGateway, SampleFrame};
pub use hazards::{fleet_outliers, scan_trace, Hazard, HazardConfig};
pub use ingest::{FrameIngestor, IngestObs, IngestStats, ShardedTsDb};
pub use monitor::MonitorChain;
pub use profiler::{detect_phases, PhaseSegment, ProfilerConfig};
pub use read::{FilterRangeQuery, SeriesRead};
pub use selfmon::{MqttMetricSink, SelfMonitor};
pub use sensors::PowerSensor;
pub use spectral::{welch_psd, Spectrum};
pub use storage::{
    DiskTierConfig, QueryCoverage, RangeQuery, StorageObs, TierStats, TieringConfig,
};
pub use tsdb::{Resolution, SeriesId, TsDb, TsDbConfig};
pub use waveform::WorkloadWaveform;
