//! Tiered storage engine for the [`crate::tsdb`] store.
//!
//! Three tiers per series — hot columnar ring, Gorilla-compressed
//! in-memory blocks, on-disk segment files — with a block-skipping
//! range scan as the single query path. See DESIGN.md §10 for the
//! block format and the seal/demote/compact lifecycle.

pub mod block;
pub mod codec;
pub mod disk;
pub mod tiered;

pub use block::SealedBlock;
pub use codec::{decode_block_into, encode_block, CodecError, MAX_BLOCK_POINTS};
pub use disk::{DiskTier, DiskTierConfig};
pub use tiered::{QueryCoverage, RangeQuery, TierStats, TieredScan, TieringConfig};

use davide_obs::{Gauge, Histogram, MetricsRegistry};

/// `davide-obs` bridge for the storage engine: per-tier occupancy
/// gauges, the achieved compression ratio, and a compaction-latency
/// histogram. Register once, then [`StorageObs::publish`] after each
/// compaction pass.
#[derive(Debug, Clone)]
pub struct StorageObs {
    hot_points: Gauge,
    hot_bytes: Gauge,
    compressed_blocks: Gauge,
    compressed_bytes: Gauge,
    disk_segments: Gauge,
    disk_blocks: Gauge,
    disk_bytes: Gauge,
    sealed_points: Gauge,
    evicted_points: Gauge,
    compression_ratio: Gauge,
    /// Wall time of one whole compact pass (seal + demote + budgets).
    pub compact_ns: Histogram,
}

impl StorageObs {
    /// Register the `tsdb_*` storage instruments on a registry.
    pub fn register(reg: &MetricsRegistry) -> Self {
        StorageObs {
            hot_points: reg.gauge("tsdb_hot_points"),
            hot_bytes: reg.gauge("tsdb_hot_bytes"),
            compressed_blocks: reg.gauge("tsdb_compressed_blocks"),
            compressed_bytes: reg.gauge("tsdb_compressed_bytes"),
            disk_segments: reg.gauge("tsdb_disk_segments"),
            disk_blocks: reg.gauge("tsdb_disk_blocks"),
            disk_bytes: reg.gauge("tsdb_disk_bytes"),
            sealed_points: reg.gauge("tsdb_sealed_points"),
            evicted_points: reg.gauge("tsdb_evicted_points"),
            compression_ratio: reg.gauge("tsdb_compression_ratio"),
            compact_ns: reg.histogram("tsdb_compact_ns"),
        }
    }

    /// Push a stats snapshot into the gauges.
    pub fn publish(&self, st: &TierStats) {
        self.hot_points.set(st.hot_points as f64);
        self.hot_bytes.set(st.hot_bytes as f64);
        self.compressed_blocks.set(st.compressed_blocks as f64);
        self.compressed_bytes.set(st.compressed_bytes as f64);
        self.disk_segments.set(st.disk_segments as f64);
        self.disk_blocks.set(st.disk_blocks as f64);
        self.disk_bytes.set(st.disk_bytes as f64);
        self.sealed_points.set(st.sealed_points as f64);
        self.evicted_points.set(st.evicted_points as f64);
        self.compression_ratio.set(st.compression_ratio());
    }
}
