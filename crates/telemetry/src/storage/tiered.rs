//! Tier engine: seal policy, budgets, demotion and the block-skipping
//! range scan that is the single query path for raw series data.
//!
//! Lifecycle of a point: it lands in the hot ring (zero-alloc append),
//! is **sealed** into a compressed [`SealedBlock`] once the ring holds
//! `hot_retain + seal_block` points (sealing drains the *oldest* run,
//! outside the append path), lives in the compressed in-memory tier
//! until the memory budget forces **demotion** to a disk segment, and
//! is finally **evicted** (and counted) when the disk budget drops its
//! segment file — or immediately on demotion when no disk tier is
//! configured. Every transition is driven by [`crate::TsDb::compact`],
//! never by an append.

use std::collections::VecDeque;

use super::block::SealedBlock;
use super::codec::{decode_block_into, MAX_BLOCK_POINTS};
use super::disk::{DiskScan, DiskTier, DiskTierConfig};
use crate::tsdb::Point;

/// Seal/demote policy for a tiered store. `None` tiering on
/// [`crate::TsDbConfig`] keeps the store hot-ring-only (the PR 5
/// behavior, bit for bit).
#[derive(Debug, Clone)]
pub struct TieringConfig {
    /// Points per sealed block (clamped to 1..=65535). Larger blocks
    /// compress better; smaller blocks skip tighter on scans.
    pub seal_block: usize,
    /// Points kept hot (uncompressed) per series; sealing triggers once
    /// a ring exceeds `hot_retain + seal_block`. Defaults to half the
    /// raw ring capacity.
    pub hot_retain: Option<usize>,
    /// Budget for the compressed in-memory tier (payload bytes, all
    /// series). Overflow demotes oldest blocks to disk — or evicts them,
    /// with accounting, when no disk tier is configured.
    pub mem_budget_bytes: usize,
    /// Optional cold tier.
    pub disk: Option<DiskTierConfig>,
}

impl Default for TieringConfig {
    fn default() -> Self {
        TieringConfig {
            seal_block: 1024,
            hot_retain: None,
            mem_budget_bytes: 256 << 20,
            disk: None,
        }
    }
}

/// Where the points answering a range query came from — and whether the
/// window reached past everything still retained. `evicted == true`
/// means the store *lost* points that may have fallen in the window, so
/// the caller (monitor, profiler, E12 accounting) is looking at
/// truncated history, not complete history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCoverage {
    /// Points served from the hot ring.
    pub hot: usize,
    /// Points decoded from compressed in-memory blocks.
    pub compressed: usize,
    /// Points decoded from on-disk segments.
    pub disk: usize,
    /// The window starts before the earliest retained point AND this
    /// series has dropped points (ring overwrite before tiering, budget
    /// eviction, or a dropped segment file).
    pub evicted: bool,
}

impl QueryCoverage {
    /// Total points the query produced.
    pub fn total(&self) -> usize {
        self.hot + self.compressed + self.disk
    }

    /// True when no requested history could have been lost.
    pub fn is_complete(&self) -> bool {
        !self.evicted
    }

    /// Fold another coverage into this one: per-tier point counts add,
    /// and the truncation flag is sticky (`evicted` ORs). This is how
    /// multi-series and multi-shard queries aggregate provenance — a
    /// merged answer is complete only if *every* contributing series on
    /// *every* shard was complete.
    pub fn merge(&mut self, o: &QueryCoverage) {
        self.hot += o.hot;
        self.compressed += o.compressed;
        self.disk += o.disk;
        self.evicted |= o.evicted;
    }
}

/// A range query result: the points plus where they came from.
#[derive(Debug, Clone, Default)]
pub struct RangeQuery {
    /// Chronological points in `[t0, t1)`.
    pub points: Vec<Point>,
    /// Per-tier provenance and truncation flag.
    pub coverage: QueryCoverage,
}

/// Point-in-time tier occupancy, aggregated across series (and across
/// shards by [`crate::ShardedTsDb::tier_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TierStats {
    /// Points currently in hot rings.
    pub hot_points: u64,
    /// Hot-ring payload bytes (12 bytes per point: f64 ts + f32 value).
    pub hot_bytes: u64,
    /// Compressed in-memory blocks.
    pub compressed_blocks: u64,
    /// Points in compressed in-memory blocks.
    pub compressed_points: u64,
    /// Compressed in-memory payload bytes.
    pub compressed_bytes: u64,
    /// Live on-disk segment files.
    pub disk_segments: u64,
    /// Blocks in live segment files.
    pub disk_blocks: u64,
    /// Points in live segment files.
    pub disk_points: u64,
    /// Bytes in live segment files (headers included).
    pub disk_bytes: u64,
    /// Points sealed out of hot rings since open (monotonic).
    pub sealed_points: u64,
    /// Points dropped from the store since open (monotonic).
    pub evicted_points: u64,
    /// Demotion/scan I/O or decode failures since open (monotonic).
    pub io_errors: u64,
}

impl TierStats {
    /// Compression ratio achieved on everything sealed: uncompressed
    /// payload size of the compressed+disk points over their stored
    /// bytes. 1.0 when nothing is sealed yet.
    pub fn compression_ratio(&self) -> f64 {
        let stored = self.compressed_bytes + self.disk_bytes;
        if stored == 0 {
            return 1.0;
        }
        ((self.compressed_points + self.disk_points) * 12) as f64 / stored as f64
    }

    /// Fold another shard's stats into this one.
    pub fn merge(&mut self, o: &TierStats) {
        self.hot_points += o.hot_points;
        self.hot_bytes += o.hot_bytes;
        self.compressed_blocks += o.compressed_blocks;
        self.compressed_points += o.compressed_points;
        self.compressed_bytes += o.compressed_bytes;
        self.disk_segments += o.disk_segments;
        self.disk_blocks += o.disk_blocks;
        self.disk_points += o.disk_points;
        self.disk_bytes += o.disk_bytes;
        self.sealed_points += o.sealed_points;
        self.evicted_points += o.evicted_points;
        self.io_errors += o.io_errors;
    }
}

/// Per-series compressed in-memory tier.
#[derive(Debug, Default)]
struct SeriesMem {
    blocks: VecDeque<SealedBlock>,
    points: u64,
}

/// The engine behind a tiered [`crate::TsDb`]: compressed tiers,
/// budgets, eviction accounting and seal scratch. Owned by the store,
/// driven only from [`crate::TsDb::compact`].
#[derive(Debug)]
pub(crate) struct TierEngine {
    pub(crate) cfg: TieringConfig,
    hot_retain: usize,
    mem: Vec<SeriesMem>,
    evicted: Vec<u64>,
    pub(crate) disk: Option<DiskTier>,
    mem_bytes: usize,
    sealed_points: u64,
    demoted_blocks: u64,
    io_errors: u64,
    /// Seal staging: `compact` copies a ring's oldest run here (the ring
    /// is a deque, the codec wants slices), reused across every seal.
    pub(crate) scratch_ts: Vec<f64>,
    pub(crate) scratch_vs: Vec<f32>,
}

impl TierEngine {
    pub(crate) fn new(mut cfg: TieringConfig, raw_capacity: usize) -> Self {
        cfg.seal_block = cfg.seal_block.clamp(1, MAX_BLOCK_POINTS);
        let hot_retain = cfg.hot_retain.unwrap_or(raw_capacity / 2).max(1);
        TierEngine {
            cfg,
            hot_retain,
            mem: Vec::new(),
            evicted: Vec::new(),
            disk: None,
            mem_bytes: 0,
            sealed_points: 0,
            demoted_blocks: 0,
            io_errors: 0,
            scratch_ts: Vec::new(),
            scratch_vs: Vec::new(),
        }
    }

    /// Ring length at which sealing triggers.
    pub(crate) fn seal_trigger(&self) -> usize {
        self.hot_retain + self.cfg.seal_block
    }

    /// Points drained per seal.
    pub(crate) fn seal_len(&self) -> usize {
        self.cfg.seal_block
    }

    pub(crate) fn ensure_series(&mut self, n: usize) {
        if self.mem.len() < n {
            self.mem.resize_with(n, SeriesMem::default);
            self.evicted.resize(n, 0);
        }
    }

    /// Seal the staged scratch run as one block of `series`.
    pub(crate) fn commit_seal(&mut self, series: usize) {
        let block = SealedBlock::seal(&self.scratch_ts, &self.scratch_vs);
        self.sealed_points += block.n as u64;
        self.mem_bytes += block.size_bytes();
        let s = &mut self.mem[series];
        s.points += block.n as u64;
        s.blocks.push_back(block);
    }

    /// Demote oldest compressed blocks until the memory budget holds,
    /// writing one segment file for the whole batch (or evicting it,
    /// with accounting, when no disk tier exists), then enforce the disk
    /// budget. Returns true if any blocks moved or dropped.
    pub(crate) fn demote_over_budget(&mut self, names: &[String]) -> bool {
        let mut batch: Vec<(u32, SealedBlock)> = Vec::new();
        while self.mem_bytes > self.cfg.mem_budget_bytes {
            // Oldest front block across all series goes first, so the
            // batch stays chronological per series.
            let mut best: Option<(usize, f64)> = None;
            for (i, s) in self.mem.iter().enumerate() {
                if let Some(b) = s.blocks.front() {
                    if best.is_none_or(|(_, t)| b.t_min < t) {
                        best = Some((i, b.t_min));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            let s = &mut self.mem[i];
            let block = s.blocks.pop_front().expect("front checked");
            s.points -= block.n as u64;
            self.mem_bytes -= block.size_bytes();
            batch.push((i as u32, block));
        }
        let mut changed = !batch.is_empty();
        if !batch.is_empty() {
            match &mut self.disk {
                Some(disk) => {
                    if disk.demote(&batch, names).is_err() {
                        self.io_errors += 1;
                        for (i, b) in &batch {
                            self.evicted[*i as usize] += b.n as u64;
                        }
                    } else {
                        self.demoted_blocks += batch.len() as u64;
                    }
                }
                None => {
                    for (i, b) in &batch {
                        self.evicted[*i as usize] += b.n as u64;
                    }
                }
            }
        }
        if let Some(disk) = &mut self.disk {
            let before: u64 = self.evicted.iter().sum();
            disk.enforce_budget(&mut self.evicted);
            changed |= self.evicted.iter().sum::<u64>() != before;
        }
        changed
    }

    /// Pre-positioned iterator over this series' overlapping compressed
    /// in-memory blocks.
    pub(crate) fn mem_scan(
        &self,
        series: usize,
        t0: f64,
    ) -> Option<std::collections::vec_deque::Iter<'_, SealedBlock>> {
        let s = self.mem.get(series)?;
        let start = s.blocks.partition_point(|b| b.t_max < t0);
        Some(s.blocks.range(start..))
    }

    pub(crate) fn disk_scan(&self, series: usize, t0: f64, t1: f64) -> Option<DiskScan<'_>> {
        Some(self.disk.as_ref()?.scan(series, t0, t1))
    }

    /// Points this series has lost to budget eviction (compressed or
    /// disk tier).
    pub(crate) fn lost_points(&self, series: usize) -> u64 {
        self.evicted.get(series).copied().unwrap_or(0)
    }

    /// Earliest timestamp still retained in a compressed tier for this
    /// series (disk is always older than the in-memory tier).
    pub(crate) fn first_retained_t(&self, series: usize) -> Option<f64> {
        if let Some(t) = self.disk.as_ref().and_then(|d| d.first_retained_t(series)) {
            return Some(t);
        }
        self.mem.get(series)?.blocks.front().map(|b| b.t_min)
    }

    /// Engine-side stats (hot-ring occupancy is added by the store).
    pub(crate) fn stats(&self) -> TierStats {
        let mut st = TierStats {
            compressed_bytes: self.mem_bytes as u64,
            sealed_points: self.sealed_points,
            evicted_points: self.evicted.iter().sum(),
            io_errors: self.io_errors,
            ..TierStats::default()
        };
        for s in &self.mem {
            st.compressed_blocks += s.blocks.len() as u64;
            st.compressed_points += s.points;
        }
        if let Some(disk) = &self.disk {
            let (bytes, blocks, points, segments) = disk.totals();
            st.disk_bytes = bytes;
            st.disk_blocks = blocks;
            st.disk_points = points;
            st.disk_segments = segments;
        }
        st
    }
}

/// Iterator-based range scan across all three tiers, chronological
/// (disk → compressed → hot), yielding [`Point`]s for the half-open
/// window `[t0, t1)`.
///
/// Compressed blocks are decoded **only** when their `[t_min, t_max]`
/// overlaps the window (binary-searched start, early stop) into a
/// per-scan scratch buffer that is allocated lazily — a scan that never
/// touches a compressed tier (the common monitoring query, and every
/// query on an untiered store) allocates nothing — and reused across
/// blocks, so there is no per-block allocation and never a
/// full-segment decompression.
pub struct TieredScan<'a> {
    t0: f64,
    t1: f64,
    disk: Option<DiskScan<'a>>,
    mem: Option<std::collections::vec_deque::Iter<'a, SealedBlock>>,
    hot_ts: std::collections::vec_deque::Iter<'a, f64>,
    hot_vs: std::collections::vec_deque::Iter<'a, f32>,
    buf: Vec<u8>,
    ts: Vec<f64>,
    vs: Vec<f32>,
    pos: usize,
    end: usize,
    from_disk: bool,
    tally: QueryCoverage,
    errors: u32,
}

impl<'a> TieredScan<'a> {
    pub(crate) fn new(
        t0: f64,
        t1: f64,
        disk: Option<DiskScan<'a>>,
        mem: Option<std::collections::vec_deque::Iter<'a, SealedBlock>>,
        hot_ts: std::collections::vec_deque::Iter<'a, f64>,
        hot_vs: std::collections::vec_deque::Iter<'a, f32>,
    ) -> Self {
        TieredScan {
            t0,
            t1,
            disk,
            mem,
            hot_ts,
            hot_vs,
            buf: Vec::new(),
            ts: Vec::new(),
            vs: Vec::new(),
            pos: 0,
            end: 0,
            from_disk: false,
            tally: QueryCoverage::default(),
            errors: 0,
        }
    }

    /// Per-tier points yielded so far (`evicted` is filled in by the
    /// store, which owns the loss accounting).
    pub fn coverage(&self) -> QueryCoverage {
        self.tally
    }

    /// Blocks skipped because of an I/O or decode failure (0 on any
    /// healthy store).
    pub fn skipped_blocks(&self) -> u32 {
        self.errors
    }

    /// Decode `self.buf`'s block, window it, and charge the windowed
    /// span to the owning tier's tally up front (block granularity, so
    /// the per-point paths stay branch-free).
    fn window_decoded(&mut self) {
        self.ts.clear();
        self.vs.clear();
        if decode_block_into(&self.buf, &mut self.ts, &mut self.vs).is_err() {
            self.errors += 1;
            self.pos = 0;
            self.end = 0;
            return;
        }
        self.pos = self.ts.partition_point(|&t| t < self.t0);
        self.end = self.ts.partition_point(|&t| t < self.t1);
        if self.from_disk {
            self.tally.disk += self.end - self.pos;
        } else {
            self.tally.compressed += self.end - self.pos;
        }
    }

    /// Pull blocks (disk first, then in-memory) until one decodes with
    /// points inside the window; false once both block tiers are
    /// exhausted and only the hot tail remains.
    fn advance_block(&mut self) -> bool {
        loop {
            if let Some(d) = self.disk.as_mut() {
                match d.next_block(&mut self.buf) {
                    Some(Ok(())) => {
                        self.from_disk = true;
                        self.window_decoded();
                        if self.pos < self.end {
                            return true;
                        }
                        continue;
                    }
                    Some(Err(_)) => {
                        self.errors += 1;
                        continue;
                    }
                    None => {
                        self.disk = None;
                        continue;
                    }
                }
            }
            if let Some(m) = self.mem.as_mut() {
                match m.next() {
                    Some(b) if b.t_min < self.t1 => {
                        if b.t_max < self.t0 {
                            continue;
                        }
                        self.buf.clear();
                        self.buf.extend_from_slice(&b.bytes);
                        self.from_disk = false;
                        self.window_decoded();
                        if self.pos < self.end {
                            return true;
                        }
                        continue;
                    }
                    _ => {
                        self.mem = None;
                        continue;
                    }
                }
            }
            return false;
        }
    }

    /// Fold every windowed point in chronological order, visiting each
    /// decoded block as a pair of slices. The accumulation order — and
    /// therefore every f64 fold built on it (means, energy integrals)
    /// — is identical to the [`Iterator`] path; what this drops is the
    /// per-point call, bounds-check and tier-branch machinery, which is
    /// what the ≥100 M samples/s range-scan budget (E26) goes to
    /// otherwise.
    pub fn fold_points<B>(&mut self, init: B, mut f: impl FnMut(B, f64, f64) -> B) -> B {
        let mut acc = init;
        loop {
            for (&t, &v) in self.ts[self.pos..self.end]
                .iter()
                .zip(&self.vs[self.pos..self.end])
            {
                acc = f(acc, t, v as f64);
            }
            self.pos = self.end;
            if !self.advance_block() {
                break;
            }
        }
        while let (Some(&t), Some(&v)) = (self.hot_ts.next(), self.hot_vs.next()) {
            self.tally.hot += 1;
            acc = f(acc, t, v as f64);
        }
        acc
    }
}

impl Iterator for TieredScan<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        loop {
            if self.pos < self.end {
                let p = Point {
                    t: self.ts[self.pos],
                    v: self.vs[self.pos] as f64,
                };
                self.pos += 1;
                return Some(p);
            }
            if self.advance_block() {
                continue;
            }
            return match (self.hot_ts.next(), self.hot_vs.next()) {
                (Some(&t), Some(&v)) => {
                    self.tally.hot += 1;
                    Some(Point { t, v: v as f64 })
                }
                _ => None,
            };
        }
    }
}
