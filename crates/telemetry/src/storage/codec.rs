//! Gorilla-style sealed-block codec: delta-of-delta timestamps and
//! XOR-mantissa float values in one bitstream.
//!
//! The encoder works purely on **bit patterns** — timestamps are
//! delta-of-delta'd on their raw `f64` bits as wrapping `i64`s, values
//! are XOR'd on their raw `f32` bits — so the round trip is bit-exact
//! for *every* input: NaN payloads, `±0.0`, subnormals, infinities and
//! non-monotonic timestamps all reconstruct to the identical bits. A
//! uniformly-spaced frame (the ingest common case) has a constant
//! bit-delta between consecutive timestamps, so its delta-of-delta is
//! zero and each timestamp costs **one bit**; the widest bucket is a
//! raw 64-bit escape, which is what a non-monotonic or otherwise
//! pathological timestamp stream degrades to instead of failing.
//!
//! Wire layout of one block (`encode_block`):
//!
//! ```text
//! [n: u16 LE]                      point count (1..=MAX_BLOCK_POINTS)
//! [bitstream, MSB-first]
//!   ts[0]  raw 64 bits             value[0] raw 32 bits
//!   for each subsequent point:
//!     timestamp dod bucket         value XOR bucket
//! ```
//!
//! Timestamp delta-of-delta buckets (`z` = zigzag of the dod):
//!
//! | prefix  | payload | covers |
//! |---------|---------|--------|
//! | `0`     | —       | dod = 0 (exactly uniform spacing) |
//! | `10`    | 2 bits  | z ∈ 1..=4, i.e. dod = ±1, ±2 (the ±ulp wobble `t0 + i·dt` rounding leaves on real frames) |
//! | `110`   | 8 bits  | z < 2⁸ |
//! | `1110`  | 16 bits | z < 2¹⁶ |
//! | `11110` | 32 bits | z < 2³² |
//! | `11111` | 64 bits | raw escape (anything, incl. non-monotonic) |
//!
//! Value buckets (classic Gorilla): `0` = XOR is zero (repeat), `10` =
//! meaningful bits fit the previous leading/trailing window, `11` = new
//! window (5 bits leading zeros, 5 bits length−1, then the bits).
//!
//! Decoding is bounds-checked everywhere: a truncated or corrupt block
//! returns [`CodecError`], never panics and never reads past the slice.

/// Hard cap on points per block: keeps per-scan scratch bounded and the
/// `u16` point-count header honest.
pub const MAX_BLOCK_POINTS: usize = 65_535;

/// Why a block failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The byte slice ended before the declared points were decoded.
    Truncated,
    /// The header declared zero points (sealed blocks are never empty).
    EmptyBlock,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed block truncated"),
            CodecError::EmptyBlock => write!(f, "compressed block declares zero points"),
        }
    }
}

impl std::error::Error for CodecError {}

#[inline]
fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// MSB-first bit accumulator over a byte vector.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    /// Append the low `n` bits of `bits` (n ≤ 57 per call).
    #[inline]
    fn push(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 57);
        self.acc |= (bits & mask(n)) << (64 - self.nbits - n);
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc >> 56) as u8);
            self.acc <<= 8;
            self.nbits -= 8;
        }
    }

    /// Append a full 64-bit word.
    #[inline]
    fn push64(&mut self, bits: u64) {
        self.push(bits >> 32, 32);
        self.push(bits & 0xffff_ffff, 32);
    }

    fn finish(self) {
        if self.nbits > 0 {
            self.out.push((self.acc >> 56) as u8);
        }
    }
}

#[inline]
fn mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// MSB-first bounds-checked bit cursor over a byte slice.
///
/// Keeps up to 64 decoded-ahead bits staged MSB-aligned in `acc`, so
/// the per-read cost is a shift pair; the buffer refills with one
/// unaligned big-endian load (amortized to about one per decoded
/// point). Re-OR-ing overlapping stream bits on refill is idempotent —
/// any bit beyond `have` that is already in `acc` is the true next
/// stream bit, never garbage.
struct BitReader<'a> {
    buf: &'a [u8],
    /// Next byte of `buf` to stage.
    byte: usize,
    /// Staged bits, MSB-aligned.
    acc: u64,
    /// Count of valid staged bits.
    have: u32,
}

impl<'a> BitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BitReader {
            buf,
            byte: 0,
            acc: 0,
            have: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        if self.byte + 8 <= self.buf.len() {
            let w = u64::from_be_bytes(self.buf[self.byte..self.byte + 8].try_into().unwrap());
            self.acc |= w >> self.have;
            let add_bytes = (64 - self.have) >> 3;
            self.byte += add_bytes as usize;
            self.have += add_bytes * 8;
        } else {
            while self.have <= 56 && self.byte < self.buf.len() {
                self.acc |= (self.buf[self.byte] as u64) << (56 - self.have);
                self.byte += 1;
                self.have += 8;
            }
        }
    }

    /// Read `n` bits (1 ≤ n ≤ 57), MSB-first.
    #[inline]
    fn read(&mut self, n: u32) -> Result<u64, CodecError> {
        debug_assert!((1..=57).contains(&n));
        if self.have < n {
            self.refill();
            if self.have < n {
                return Err(CodecError::Truncated);
            }
        }
        let v = self.acc >> (64 - n);
        self.acc <<= n;
        self.have -= n;
        Ok(v)
    }

    /// Read one bit.
    #[inline]
    fn read_bit(&mut self) -> Result<u64, CodecError> {
        self.read(1)
    }

    /// Read a full 64-bit word.
    #[inline]
    fn read64(&mut self) -> Result<u64, CodecError> {
        Ok((self.read(32)? << 32) | self.read(32)?)
    }
}

/// Compress one sealed run of points into `out` (append; `out` is not
/// cleared). `ts` and `vs` must be the same length, between 1 and
/// [`MAX_BLOCK_POINTS`]. The round trip through [`decode_block_into`]
/// reproduces both slices bit-for-bit.
///
/// # Panics
/// If the slices are empty, differ in length, or exceed
/// [`MAX_BLOCK_POINTS`] — sealing is driver-controlled, so those are
/// wiring bugs, not data errors.
pub fn encode_block(ts: &[f64], vs: &[f32], out: &mut Vec<u8>) {
    assert_eq!(ts.len(), vs.len(), "columns must align");
    assert!(!ts.is_empty(), "sealed blocks are never empty");
    assert!(ts.len() <= MAX_BLOCK_POINTS, "block too large to seal");
    out.extend_from_slice(&(ts.len() as u16).to_le_bytes());
    let mut w = BitWriter::new(out);

    // First point: raw bits.
    w.push64(ts[0].to_bits());
    w.push(vs[0].to_bits() as u64, 32);

    let mut prev_t = ts[0].to_bits() as i64;
    let mut prev_delta: i64 = 0;
    let mut prev_v = vs[0].to_bits();
    // Current XOR window (leading zeros, meaningful length); u32::MAX
    // leading marks "no window yet".
    let mut win_lead: u32 = u32::MAX;
    let mut win_len: u32 = 0;

    for i in 1..ts.len() {
        // Timestamp: delta-of-delta on raw bits.
        let t_bits = ts[i].to_bits() as i64;
        let delta = t_bits.wrapping_sub(prev_t);
        let dod = delta.wrapping_sub(prev_delta);
        prev_t = t_bits;
        prev_delta = delta;
        let z = zigzag(dod);
        if z == 0 {
            w.push(0b0, 1);
        } else if z <= 4 {
            w.push(0b10, 2);
            w.push(z - 1, 2);
        } else if z < (1 << 8) {
            w.push(0b110, 3);
            w.push(z, 8);
        } else if z < (1 << 16) {
            w.push(0b1110, 4);
            w.push(z, 16);
        } else if z < (1 << 32) {
            w.push(0b11110, 5);
            w.push(z, 32);
        } else {
            // Raw escape: arbitrary (e.g. non-monotonic) timestamps.
            w.push(0b11111, 5);
            w.push64(z);
        }

        // Value: XOR against the previous value's bits.
        let v_bits = vs[i].to_bits();
        let x = v_bits ^ prev_v;
        prev_v = v_bits;
        if x == 0 {
            w.push(0b0, 1);
            continue;
        }
        let lead = x.leading_zeros();
        let trail = x.trailing_zeros();
        let len = 32 - lead - trail;
        let fits_window = win_lead != u32::MAX
            && lead >= win_lead
            && trail >= 32 - win_lead - win_len
            && win_len <= 57 - 2;
        if fits_window {
            let win_trail = 32 - win_lead - win_len;
            w.push(0b10, 2);
            w.push((x >> win_trail) as u64, win_len);
        } else {
            // New window: 5 bits leading (≤31 by construction of a
            // nonzero 32-bit XOR), 5 bits length−1, then the bits.
            w.push(0b11, 2);
            w.push(lead as u64, 5);
            w.push((len - 1) as u64, 5);
            w.push((x >> trail) as u64, len);
            win_lead = lead;
            win_len = len;
        }
    }
    w.finish();
}

/// Decode a block produced by [`encode_block`], appending the points to
/// `ts`/`vs` (existing contents are preserved, so a scan scratch can be
/// cleared by the caller at its own cadence). Returns the number of
/// points appended. Truncated or corrupt input returns an error and
/// leaves any partially-appended points in the buffers — callers that
/// care should truncate back to the pre-call length on `Err`.
pub fn decode_block_into(
    bytes: &[u8],
    ts: &mut Vec<f64>,
    vs: &mut Vec<f32>,
) -> Result<usize, CodecError> {
    if bytes.len() < 2 {
        return Err(CodecError::Truncated);
    }
    let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    if n == 0 {
        return Err(CodecError::EmptyBlock);
    }
    let mut r = BitReader::new(&bytes[2..]);
    ts.reserve(n);
    vs.reserve(n);

    let mut t_bits = r.read64()?;
    let mut v_bits = r.read(32)? as u32;
    ts.push(f64::from_bits(t_bits));
    vs.push(f32::from_bits(v_bits));

    let mut prev_delta: i64 = 0;
    let mut win_lead: u32 = 0;
    let mut win_len: u32 = 32;

    for _ in 1..n {
        // Timestamp bucket.
        let dod = if r.read_bit()? == 0 {
            0i64
        } else if r.read_bit()? == 0 {
            unzigzag(r.read(2)? + 1)
        } else if r.read_bit()? == 0 {
            unzigzag(r.read(8)?)
        } else if r.read_bit()? == 0 {
            unzigzag(r.read(16)?)
        } else if r.read_bit()? == 0 {
            unzigzag(r.read(32)?)
        } else {
            unzigzag(r.read64()?)
        };
        prev_delta = prev_delta.wrapping_add(dod);
        t_bits = (t_bits as i64).wrapping_add(prev_delta) as u64;
        ts.push(f64::from_bits(t_bits));

        // Value bucket.
        if r.read_bit()? == 1 {
            if r.read_bit()? == 1 {
                win_lead = r.read(5)? as u32;
                win_len = r.read(5)? as u32 + 1;
            }
            let win_trail = 32 - win_lead - win_len;
            let x = (r.read(win_len)? as u32) << win_trail;
            v_bits ^= x;
        }
        vs.push(f32::from_bits(v_bits));
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ts: &[f64], vs: &[f32]) {
        let mut bytes = Vec::new();
        encode_block(ts, vs, &mut bytes);
        let (mut dt, mut dv) = (Vec::new(), Vec::new());
        let n = decode_block_into(&bytes, &mut dt, &mut dv).expect("decodes");
        assert_eq!(n, ts.len());
        for i in 0..n {
            assert_eq!(ts[i].to_bits(), dt[i].to_bits(), "ts[{i}]");
            assert_eq!(vs[i].to_bits(), dv[i].to_bits(), "vs[{i}]");
        }
    }

    #[test]
    fn uniform_frame_roundtrips_and_compresses() {
        let ts: Vec<f64> = (0..2000).map(|i| 10.0 + i as f64 * 2e-5).collect();
        // A slow power wobble (full swing over the whole frame), the
        // shape a node rail takes between load changes.
        let vs: Vec<f32> = (0..2000)
            .map(|i| 1700.0 + (i as f32 * 0.002).sin() * 30.0)
            .collect();
        let mut bytes = Vec::new();
        encode_block(&ts, &vs, &mut bytes);
        roundtrip(&ts, &vs);
        let raw = ts.len() * (8 + 4);
        assert!(
            bytes.len() * 4 < raw,
            "≥4× on a smooth frame: {} vs {raw}",
            bytes.len()
        );
    }

    #[test]
    fn special_values_bit_exact() {
        let ts = [
            0.0,
            -0.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE / 2.0, // subnormal
            1e300,
            -7.25,
        ];
        let vs = [
            f32::NAN,
            f32::from_bits(0x7fc0_dead), // NaN with payload
            -0.0,
            0.0,
            f32::INFINITY,
            f32::MIN_POSITIVE / 4.0,
            f32::MAX,
            -1.5e-40,
        ];
        roundtrip(&ts, &vs);
    }

    #[test]
    fn non_monotonic_timestamps_take_the_escape() {
        let ts = [5.0, 3.0, 100.0, -2.0, 4.0];
        let vs = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        roundtrip(&ts, &vs);
    }

    #[test]
    fn constant_run_costs_two_bits_per_point() {
        let ts: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let vs = vec![42.5f32; 1000];
        let mut bytes = Vec::new();
        encode_block(&ts, &vs, &mut bytes);
        // Integer timestamps are NOT uniform in f64 bit space: the bit
        // delta is constant inside a binade but jumps at each power of
        // two, costing a raw escape there. Header 2 + first point ~13 +
        // ~2 bits/point + ~10 binade crossings × ~70 bits.
        assert!(
            bytes.len() < 2 + 13 + 1000 / 4 + 110,
            "constant run: {} bytes",
            bytes.len()
        );
        roundtrip(&ts, &vs);
    }

    #[test]
    fn single_point_block() {
        roundtrip(&[123.456], &[789.0]);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let ts: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let vs: Vec<f32> = (0..100).map(|i| (i * 7 % 13) as f32 * 1.25).collect();
        let mut bytes = Vec::new();
        encode_block(&ts, &vs, &mut bytes);
        for cut in 0..bytes.len() {
            let (mut dt, mut dv) = (Vec::new(), Vec::new());
            assert_eq!(
                decode_block_into(&bytes[..cut], &mut dt, &mut dv),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn empty_block_header_is_an_error() {
        let (mut dt, mut dv) = (Vec::new(), Vec::new());
        assert_eq!(
            decode_block_into(&[0, 0, 0], &mut dt, &mut dv),
            Err(CodecError::EmptyBlock)
        );
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for x in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }
}
