//! Sealed, immutable compressed blocks — the unit the tier engine
//! seals out of the hot ring, holds in the compressed in-memory tier,
//! and demotes to disk segments.

use super::codec::{encode_block, MAX_BLOCK_POINTS};

/// One immutable compressed run of a single series. Timestamps inside a
/// block are nondecreasing (they come out of a ring that enforces it),
/// so `t_min`/`t_max` are simply the first and last timestamp and a
/// range scan can skip whole blocks on metadata alone.
#[derive(Debug, Clone)]
pub struct SealedBlock {
    /// First timestamp in the block.
    pub t_min: f64,
    /// Last timestamp in the block.
    pub t_max: f64,
    /// Point count.
    pub n: u32,
    /// Gorilla-compressed payload (see [`super::codec`]).
    pub bytes: Vec<u8>,
}

impl SealedBlock {
    /// Seal a run of points (nondecreasing timestamps, 1..=65535 points)
    /// into a compressed block.
    pub fn seal(ts: &[f64], vs: &[f32]) -> SealedBlock {
        assert!(!ts.is_empty() && ts.len() <= MAX_BLOCK_POINTS);
        let mut bytes = Vec::new();
        encode_block(ts, vs, &mut bytes);
        SealedBlock {
            t_min: ts[0],
            t_max: ts[ts.len() - 1],
            n: ts.len() as u32,
            bytes,
        }
    }

    /// Does this block overlap the half-open window `[t0, t1)`?
    #[inline]
    pub fn overlaps(&self, t0: f64, t1: f64) -> bool {
        self.t_max >= t0 && self.t_min < t1
    }

    /// Compressed payload size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::codec::decode_block_into;

    #[test]
    fn seal_records_bounds_and_roundtrips() {
        let ts: Vec<f64> = (0..300).map(|i| 5.0 + i as f64 * 0.25).collect();
        let vs: Vec<f32> = (0..300).map(|i| (i % 17) as f32 * 3.5).collect();
        let b = SealedBlock::seal(&ts, &vs);
        assert_eq!(b.t_min, 5.0);
        assert_eq!(b.t_max, 5.0 + 299.0 * 0.25);
        assert_eq!(b.n, 300);
        let (mut dt, mut dv) = (Vec::new(), Vec::new());
        assert_eq!(decode_block_into(&b.bytes, &mut dt, &mut dv), Ok(300));
        assert_eq!(dt, ts);
        assert_eq!(dv, vs);
    }

    #[test]
    fn overlap_is_half_open() {
        let b = SealedBlock::seal(&[10.0, 20.0], &[1.0, 2.0]);
        assert!(b.overlaps(0.0, 10.5));
        assert!(b.overlaps(20.0, 21.0), "t_max is inclusive");
        assert!(b.overlaps(15.0, 16.0));
        assert!(!b.overlaps(0.0, 10.0), "t1 exclusive");
        assert!(!b.overlaps(20.0 + 1e-9, 30.0));
    }
}
