//! Cold tier: compressed blocks demoted to append-once segment files.
//!
//! Each demotion batch becomes ONE self-describing segment file
//! (`seg-<seq>.bin`), written tmp → `sync_all` → atomic rename so a
//! crash mid-write leaves at most a `.tmp` orphan that recovery deletes
//! — a renamed segment is always complete. Records carry the series
//! *name* (not the in-memory id), so a fresh process can rebuild the
//! whole index from the directory alone ([`DiskTier::open`]).
//!
//! File layout:
//!
//! ```text
//! magic  "DVSEG01\n"                      8 bytes
//! count  u32 LE                           record count
//! record × count:
//!   name_len u16 LE | name utf-8 | n u32 | t_min f64 | t_max f64
//!   payload_len u32 | payload (codec bitstream)
//! footer "DVSEGEND"                       8 bytes, must land exactly at EOF
//! ```
//!
//! Reads are mmap-free buffered `read_exact_at` calls straight into the
//! caller's scan scratch — no page-cache pinning, no per-block
//! allocation, and `&self` queries (positioned reads never seek the
//! shared handle).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::os::unix::fs::FileExt;
use std::path::PathBuf;

use super::block::SealedBlock;

const SEG_MAGIC: &[u8; 8] = b"DVSEG01\n";
const SEG_FOOTER: &[u8; 8] = b"DVSEGEND";

/// Where and how big the cold tier is allowed to be.
#[derive(Debug, Clone)]
pub struct DiskTierConfig {
    /// Directory holding the segment files (created if absent; existing
    /// segments are recovered into the index on open).
    pub dir: PathBuf,
    /// Total on-disk budget; the oldest whole segment files are dropped
    /// (and their points counted as evicted) once exceeded.
    pub budget_bytes: u64,
}

impl DiskTierConfig {
    /// Cold tier in `dir` with an effectively unlimited budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskTierConfig {
            dir: dir.into(),
            budget_bytes: u64::MAX,
        }
    }
}

/// One block's location inside a segment file, plus enough metadata to
/// skip it without touching the disk.
#[derive(Debug, Clone, Copy)]
struct BlockRef {
    file: u32,
    offset: u64,
    len: u32,
    n: u32,
    t_min: f64,
    t_max: f64,
}

#[derive(Debug)]
struct SegmentFile {
    path: PathBuf,
    file: File,
    bytes: u64,
    points: u64,
    blocks: u64,
}

/// The cold tier: segment files plus an in-memory per-series sparse
/// time index rebuilt from the files themselves on open.
#[derive(Debug)]
pub struct DiskTier {
    dir: PathBuf,
    budget: u64,
    /// Slot per segment ever seen this process; dropped files become
    /// `None` so [`BlockRef::file`] indices stay stable.
    files: Vec<Option<SegmentFile>>,
    /// Per-series (by in-memory series index) chronological block refs.
    index: Vec<Vec<BlockRef>>,
    next_seq: u64,
    total_bytes: u64,
    total_points: u64,
    total_blocks: u64,
}

impl DiskTier {
    /// Open (or create) the tier directory, delete crash orphans
    /// (`*.tmp`), and rebuild the index from every valid segment file.
    /// `resolve` maps a recovered series name to its in-memory series
    /// index (interning it on first sight).
    pub fn open(
        cfg: &DiskTierConfig,
        mut resolve: impl FnMut(&str) -> u32,
    ) -> io::Result<DiskTier> {
        fs::create_dir_all(&cfg.dir)?;
        let mut segs: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&cfg.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            } else if let Some(seq) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".bin"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                segs.push((seq, entry.path()));
            }
        }
        segs.sort_by_key(|&(seq, _)| seq);
        let mut tier = DiskTier {
            dir: cfg.dir.clone(),
            budget: cfg.budget_bytes,
            files: Vec::new(),
            index: Vec::new(),
            next_seq: segs.last().map_or(0, |&(seq, _)| seq + 1),
            total_bytes: 0,
            total_points: 0,
            total_blocks: 0,
        };
        for (_, path) in segs {
            // A segment that fails validation (torn by a crashed rename
            // or bit rot) is skipped, not trusted.
            let _ = tier.recover_segment(path, &mut resolve);
        }
        Ok(tier)
    }

    fn recover_segment(
        &mut self,
        path: PathBuf,
        resolve: &mut impl FnMut(&str) -> u32,
    ) -> io::Result<()> {
        let mut file = File::open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let refs = parse_segment(&buf, self.files.len() as u32)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "corrupt segment"))?;
        let mut points = 0u64;
        let blocks = refs.len() as u64;
        for (name, r) in refs {
            let series = resolve(&name) as usize;
            if self.index.len() <= series {
                self.index.resize_with(series + 1, Vec::new);
            }
            points += r.n as u64;
            self.index[series].push(r);
        }
        let bytes = buf.len() as u64;
        self.files.push(Some(SegmentFile {
            path,
            file,
            bytes,
            points,
            blocks,
        }));
        self.total_bytes += bytes;
        self.total_points += points;
        self.total_blocks += blocks;
        Ok(())
    }

    /// Demote a batch of sealed blocks as one new segment file. The
    /// batch must be in chronological order per series (the engine
    /// demotes oldest-first, which guarantees it). `names` maps series
    /// index → series name for the self-describing records.
    pub fn demote(&mut self, batch: &[(u32, SealedBlock)], names: &[String]) -> io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let file_idx = self.files.len() as u32;

        let mut buf = Vec::new();
        buf.extend_from_slice(SEG_MAGIC);
        buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
        let mut refs: Vec<(u32, BlockRef)> = Vec::with_capacity(batch.len());
        let mut points = 0u64;
        for (series, b) in batch {
            let name = names[*series as usize].as_bytes();
            buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
            buf.extend_from_slice(name);
            buf.extend_from_slice(&b.n.to_le_bytes());
            buf.extend_from_slice(&b.t_min.to_le_bytes());
            buf.extend_from_slice(&b.t_max.to_le_bytes());
            buf.extend_from_slice(&(b.bytes.len() as u32).to_le_bytes());
            let offset = buf.len() as u64;
            buf.extend_from_slice(&b.bytes);
            points += b.n as u64;
            refs.push((
                *series,
                BlockRef {
                    file: file_idx,
                    offset,
                    len: b.bytes.len() as u32,
                    n: b.n,
                    t_min: b.t_min,
                    t_max: b.t_max,
                },
            ));
        }
        buf.extend_from_slice(SEG_FOOTER);

        // tmp → fsync → rename: the published name is always complete.
        let tmp = self.dir.join(format!("seg-{seq:010}.tmp"));
        let path = self.dir.join(format!("seg-{seq:010}.bin"));
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
        fs::rename(&tmp, &path)?;

        for (series, r) in refs {
            let series = series as usize;
            if self.index.len() <= series {
                self.index.resize_with(series + 1, Vec::new);
            }
            self.index[series].push(r);
        }
        self.files.push(Some(SegmentFile {
            path,
            file: f,
            bytes: buf.len() as u64,
            points,
            blocks: batch.len() as u64,
        }));
        self.total_bytes += buf.len() as u64;
        self.total_points += points;
        self.total_blocks += batch.len() as u64;
        Ok(())
    }

    /// Drop whole oldest segment files until the tier fits its budget,
    /// crediting each dropped block's points to `evicted[series]`.
    pub fn enforce_budget(&mut self, evicted: &mut Vec<u64>) {
        while self.total_bytes > self.budget {
            let Some(oldest) = self.files.iter().position(Option::is_some) else {
                break;
            };
            let seg = self.files[oldest].take().expect("position found Some");
            self.total_bytes -= seg.bytes;
            self.total_points -= seg.points;
            self.total_blocks -= seg.blocks;
            let _ = fs::remove_file(&seg.path);
            for (series, refs) in self.index.iter_mut().enumerate() {
                // Oldest file ⇒ its refs sit at the front of each series.
                let k = refs.iter().take_while(|r| r.file == oldest as u32).count();
                if k > 0 {
                    if evicted.len() <= series {
                        evicted.resize(series + 1, 0);
                    }
                    evicted[series] += refs.drain(..k).map(|r| r.n as u64).sum::<u64>();
                }
            }
        }
    }

    /// Block-skipping cursor over this series' on-disk blocks that
    /// overlap `[t0, t1)`.
    pub fn scan(&self, series: usize, t0: f64, t1: f64) -> DiskScan<'_> {
        let refs: &[BlockRef] = self
            .index
            .get(series)
            .map(Vec::as_slice)
            .unwrap_or_default();
        let start = refs.partition_point(|r| r.t_max < t0);
        DiskScan {
            refs,
            files: &self.files,
            i: start,
            t1,
        }
    }

    /// Earliest retained on-disk timestamp for a series.
    pub fn first_retained_t(&self, series: usize) -> Option<f64> {
        self.index.get(series)?.first().map(|r| r.t_min)
    }

    /// (bytes, blocks, points, live segment files).
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        (
            self.total_bytes,
            self.total_blocks,
            self.total_points,
            self.files.iter().flatten().count() as u64,
        )
    }

    /// Recovered series names → on-disk point counts (test/inspection).
    pub fn points_by_series(&self, names: &[String]) -> HashMap<String, u64> {
        let mut out = HashMap::new();
        for (series, refs) in self.index.iter().enumerate() {
            let pts: u64 = refs.iter().map(|r| r.n as u64).sum();
            if pts > 0 {
                if let Some(name) = names.get(series) {
                    out.insert(name.clone(), pts);
                }
            }
        }
        out
    }
}

/// Cursor over one series' overlapping on-disk blocks; each call reads
/// the next compressed payload into the caller's scratch buffer.
pub struct DiskScan<'a> {
    refs: &'a [BlockRef],
    files: &'a [Option<SegmentFile>],
    i: usize,
    t1: f64,
}

impl DiskScan<'_> {
    /// Read the next overlapping block's payload into `buf` (cleared and
    /// resized in place — capacity is reused across blocks). Returns
    /// `None` when past the window.
    pub fn next_block(&mut self, buf: &mut Vec<u8>) -> Option<io::Result<()>> {
        let r = *self.refs.get(self.i)?;
        if r.t_min >= self.t1 {
            return None;
        }
        self.i += 1;
        let Some(seg) = self.files.get(r.file as usize).and_then(Option::as_ref) else {
            // Refs to dropped files are drained eagerly; a miss here is a
            // wiring bug but must not panic a query path.
            return Some(Err(io::Error::new(
                io::ErrorKind::NotFound,
                "segment dropped",
            )));
        };
        buf.clear();
        buf.resize(r.len as usize, 0);
        Some(seg.file.read_exact_at(buf, r.offset))
    }
}

/// Validate and index one segment image; `None` if torn or corrupt.
fn parse_segment(buf: &[u8], file_idx: u32) -> Option<Vec<(String, BlockRef)>> {
    let body = buf.strip_prefix(SEG_MAGIC.as_slice())?;
    if buf.len() < 8 + 4 + 8 {
        return None;
    }
    let count = u32::from_le_bytes(body.get(..4)?.try_into().ok()?) as usize;
    let mut pos = 8 + 4;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = u16::from_le_bytes(buf.get(pos..pos + 2)?.try_into().ok()?) as usize;
        pos += 2;
        let name = std::str::from_utf8(buf.get(pos..pos + name_len)?).ok()?;
        pos += name_len;
        let n = u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?);
        pos += 4;
        let t_min = f64::from_le_bytes(buf.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        let t_max = f64::from_le_bytes(buf.get(pos..pos + 8)?.try_into().ok()?);
        pos += 8;
        let len = u32::from_le_bytes(buf.get(pos..pos + 4)?.try_into().ok()?);
        pos += 4;
        let offset = pos as u64;
        pos = pos.checked_add(len as usize)?;
        buf.get(offset as usize..pos)?;
        out.push((
            name.to_string(),
            BlockRef {
                file: file_idx,
                offset,
                len,
                n,
                t_min,
                t_max,
            },
        ));
    }
    if buf.get(pos..) != Some(SEG_FOOTER.as_slice()) {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::codec::decode_block_into;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn test_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "davide-disk-{}-{}-{}",
            std::process::id(),
            tag,
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn mk_block(t0: f64, n: usize) -> SealedBlock {
        let ts: Vec<f64> = (0..n).map(|i| t0 + i as f64 * 0.5).collect();
        let vs: Vec<f32> = (0..n).map(|i| (i % 7) as f32 + t0 as f32).collect();
        SealedBlock::seal(&ts, &vs)
    }

    #[test]
    fn demote_scan_roundtrip() {
        let dir = test_dir("roundtrip");
        let cfg = DiskTierConfig::new(&dir);
        let mut tier = DiskTier::open(&cfg, |_| 0).unwrap();
        let names = vec!["node00/power/node".to_string(), "b".to_string()];
        tier.demote(&[(0, mk_block(0.0, 100)), (1, mk_block(0.0, 10))], &names)
            .unwrap();
        tier.demote(&[(0, mk_block(50.0, 100))], &names).unwrap();

        // Skip the first block entirely: window starts after its t_max.
        let mut scan = tier.scan(0, 50.0, 1e9);
        let mut buf = Vec::new();
        let (mut ts, mut vs) = (Vec::new(), Vec::new());
        let mut blocks = 0;
        while let Some(r) = scan.next_block(&mut buf) {
            r.unwrap();
            decode_block_into(&buf, &mut ts, &mut vs).unwrap();
            blocks += 1;
        }
        assert_eq!(blocks, 1, "window-skipping cursor decodes only 1 block");
        assert_eq!(ts.len(), 100);
        assert_eq!(ts[0], 50.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_rebuilds_index_and_drops_tmp_orphans() {
        let dir = test_dir("recover");
        let cfg = DiskTierConfig::new(&dir);
        let names = vec!["x".to_string(), "y".to_string()];
        {
            let mut tier = DiskTier::open(&cfg, |_| 0).unwrap();
            tier.demote(&[(0, mk_block(0.0, 64)), (1, mk_block(0.0, 32))], &names)
                .unwrap();
            tier.demote(&[(0, mk_block(100.0, 64))], &names).unwrap();
        }
        // Crash artifacts: a torn tmp and a corrupt published segment.
        fs::write(dir.join("seg-9999999999.tmp"), b"torn").unwrap();
        fs::write(dir.join("seg-0000009998.bin"), b"DVSEG01\ngarbage").unwrap();

        let mut name_map: Vec<String> = Vec::new();
        let mut tier = DiskTier::open(&cfg, |name| {
            if let Some(i) = name_map.iter().position(|n| n == name) {
                i as u32
            } else {
                name_map.push(name.to_string());
                name_map.len() as u32 - 1
            }
        })
        .unwrap();
        assert!(!dir.join("seg-9999999999.tmp").exists(), "tmp orphan gone");
        let pts = tier.points_by_series(&name_map);
        assert_eq!(pts.get("x"), Some(&128));
        assert_eq!(pts.get("y"), Some(&32));
        let (_, blocks, points, segs) = tier.totals();
        assert_eq!((blocks, points, segs), (3, 160, 2), "corrupt seg skipped");

        // Recovered refs still scan in chronological order.
        let x = name_map.iter().position(|n| n == "x").unwrap();
        let mut scan = tier.scan(x, 0.0, 1e9);
        let mut buf = Vec::new();
        let (mut ts, mut vs) = (Vec::new(), Vec::new());
        while let Some(r) = scan.next_block(&mut buf) {
            r.unwrap();
            decode_block_into(&buf, &mut ts, &mut vs).unwrap();
        }
        assert_eq!(ts.len(), 128);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        // New demotions continue the sequence without clobbering.
        tier.demote(&[(x as u32, mk_block(200.0, 8))], &name_map)
            .unwrap();
        assert_eq!(tier.totals().2, 168);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_drops_oldest_files_and_counts_evictions() {
        let dir = test_dir("budget");
        let mut cfg = DiskTierConfig::new(&dir);
        let names = vec!["s".to_string()];
        let mut tier = DiskTier::open(&cfg, |_| 0).unwrap();
        for k in 0..4 {
            tier.demote(&[(0, mk_block(k as f64 * 100.0, 256))], &names)
                .unwrap();
        }
        let (bytes, _, _, segs) = tier.totals();
        assert_eq!(segs, 4);
        cfg.budget_bytes = bytes / 2;
        tier.budget = cfg.budget_bytes;
        let mut evicted = Vec::new();
        tier.enforce_budget(&mut evicted);
        let (bytes2, _, points2, segs2) = tier.totals();
        assert!(bytes2 <= cfg.budget_bytes);
        assert!((1..4).contains(&segs2));
        assert_eq!(evicted[0] + points2, 4 * 256, "every point accounted");
        assert_eq!(
            tier.first_retained_t(0),
            Some((4 - segs2) as f64 * 100.0),
            "oldest dropped first"
        );
        // Scans over the evicted range return nothing rather than erroring.
        let mut scan = tier.scan(0, 0.0, 50.0);
        let mut buf = Vec::new();
        if segs2 < 4 {
            assert!(scan.next_block(&mut buf).is_none());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
