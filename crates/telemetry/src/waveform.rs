//! Synthetic node-power waveforms.
//!
//! The hardware gate of this reproduction (no power backplane to probe) is
//! closed here: we synthesise power signals whose structure matches what
//! HPC nodes actually emit — slow job phases (0.01–1 Hz), iteration
//! harmonics (1–100 Hz), OS/runtime jitter (0.1–10 kHz) and VRM ripple —
//! so the measurement-chain experiments (E3/E4) exercise the same
//! spectral content the BeagleBone ADC sees in D.A.V.I.D.E.

use davide_core::power::PowerTrace;
use davide_core::rng::Rng;
use davide_core::time::SimTime;

/// One spectral component of a workload power signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tone {
    /// Frequency in Hz.
    pub freq: f64,
    /// Peak amplitude in watts.
    pub amplitude: f64,
    /// Phase in radians.
    pub phase: f64,
}

/// A description of a synthetic workload power signal.
#[derive(Debug, Clone)]
pub struct WorkloadWaveform {
    /// DC (mean) power level in watts.
    pub dc: f64,
    /// Periodic components.
    pub tones: Vec<Tone>,
    /// Square-wave phase alternation: `(period_s, high_extra_w)`;
    /// models compute/communication phase switching which is what makes
    /// slow instantaneous sampling alias badly.
    pub phases: Option<(f64, f64)>,
    /// White-noise RMS in watts (runtime jitter).
    pub noise_rms: f64,
}

impl WorkloadWaveform {
    /// A quiet, almost-DC signal (idle node).
    pub fn idle(dc: f64) -> Self {
        WorkloadWaveform {
            dc,
            tones: vec![],
            phases: None,
            noise_rms: dc * 0.002,
        }
    }

    /// An HPC job with iteration structure: phase switching at
    /// `phase_period` seconds plus iteration harmonics.
    pub fn hpc_job(dc: f64, phase_period: f64) -> Self {
        WorkloadWaveform {
            dc,
            tones: vec![
                Tone {
                    freq: 4.0 / phase_period,
                    amplitude: dc * 0.05,
                    phase: 0.7,
                },
                Tone {
                    freq: 47.0,
                    amplitude: dc * 0.03,
                    phase: 1.9,
                },
                Tone {
                    freq: 310.0,
                    amplitude: dc * 0.015,
                    phase: 0.2,
                },
            ],
            phases: Some((phase_period, dc * 0.35)),
            noise_rms: dc * 0.01,
        }
    }

    /// A GPU-burst job: strong kHz-scale content from kernel launches —
    /// the regime where only fast sampling captures the energy.
    pub fn gpu_burst(dc: f64) -> Self {
        WorkloadWaveform {
            dc,
            tones: vec![
                Tone {
                    freq: 1_000.0,
                    amplitude: dc * 0.12,
                    phase: 0.0,
                },
                Tone {
                    freq: 3_400.0,
                    amplitude: dc * 0.06,
                    phase: 2.4,
                },
                Tone {
                    freq: 9_800.0,
                    amplitude: dc * 0.03,
                    phase: 1.1,
                },
            ],
            phases: Some((0.075, dc * 0.4)),
            noise_rms: dc * 0.015,
        }
    }

    /// Evaluate the deterministic part of the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        let mut p = self.dc;
        for tone in &self.tones {
            p += tone.amplitude * (2.0 * std::f64::consts::PI * tone.freq * t + tone.phase).sin();
        }
        if let Some((period, extra)) = self.phases {
            let in_high = (t / period).floor() as i64 % 2 == 0;
            if in_high {
                p += extra;
            }
        }
        p.max(0.0)
    }

    /// Render the waveform to a [`PowerTrace`] at `rate_hz` for
    /// `duration_s`, adding white noise from `rng`.
    pub fn render(&self, rate_hz: f64, duration_s: f64, rng: &mut Rng) -> PowerTrace {
        let n = (rate_hz * duration_s).round() as usize;
        let dt = 1.0 / rate_hz;
        let samples = (0..n)
            .map(|i| {
                let t = i as f64 * dt;
                (self.eval(t) + rng.normal(0.0, self.noise_rms)).max(0.0)
            })
            .collect();
        PowerTrace::new(SimTime::ZERO, dt, samples)
    }

    /// Ground-truth energy over `duration_s`, from dense analytic
    /// evaluation (noise contributes zero mean).
    pub fn true_energy(&self, duration_s: f64) -> f64 {
        // Integrate the deterministic signal at very high resolution.
        let rate = 4.0e6;
        let n = (rate * duration_s) as usize;
        let dt = 1.0 / rate;
        let mut acc = 0.0;
        let mut prev = self.eval(0.0);
        for i in 1..=n {
            let cur = self.eval(i as f64 * dt);
            acc += 0.5 * (prev + cur) * dt;
            prev = cur;
        }
        acc
    }

    /// Highest deterministic frequency present (for Nyquist reasoning).
    pub fn max_frequency(&self) -> f64 {
        let tone_max = self.tones.iter().map(|t| t.freq).fold(0.0_f64, f64::max);
        let phase_f = self.phases.map(|(p, _)| 1.0 / p).unwrap_or(0.0);
        // Square-wave switching has harmonics well above its fundamental.
        tone_max.max(phase_f * 21.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_includes_all_components() {
        let w = WorkloadWaveform::hpc_job(1500.0, 2.0);
        // At t=0 we are in a high phase.
        let p = w.eval(0.0);
        assert!(p > 1500.0, "high phase adds power: {p}");
        // Low phase.
        let p_low = w.eval(3.0);
        assert!(p_low < p);
    }

    #[test]
    fn render_geometry_and_positivity() {
        let mut rng = Rng::seed_from(1);
        let w = WorkloadWaveform::gpu_burst(1700.0);
        let tr = w.render(50_000.0, 0.5, &mut rng);
        assert_eq!(tr.len(), 25_000);
        assert!((tr.sample_rate() - 50_000.0).abs() < 1e-6);
        assert!(tr.min().0 >= 0.0);
    }

    #[test]
    fn rendered_mean_tracks_dc_plus_duty() {
        let mut rng = Rng::seed_from(2);
        let w = WorkloadWaveform::hpc_job(1000.0, 0.5);
        let tr = w.render(100_000.0, 4.0, &mut rng);
        // 50 % duty of +350 W → mean ≈ 1175 W.
        assert!((tr.mean().0 - 1175.0).abs() < 25.0, "mean={}", tr.mean());
    }

    #[test]
    fn true_energy_matches_dense_render() {
        let mut rng = Rng::seed_from(3);
        let w = WorkloadWaveform::hpc_job(1200.0, 0.4);
        let duration = 2.0;
        let truth = w.true_energy(duration);
        let dense = w.render(800_000.0, duration, &mut rng).energy();
        let rel = (dense.0 - truth).abs() / truth;
        assert!(rel < 0.002, "rel error {rel}");
    }

    #[test]
    fn idle_waveform_is_flat() {
        let w = WorkloadWaveform::idle(300.0);
        assert_eq!(w.eval(0.0), 300.0);
        assert_eq!(w.eval(10.0), 300.0);
        assert!(w.max_frequency() < 1.0);
    }

    #[test]
    fn gpu_burst_has_khz_content() {
        let w = WorkloadWaveform::gpu_burst(1700.0);
        assert!(w.max_frequency() >= 9_800.0);
    }
}
