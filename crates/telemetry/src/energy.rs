//! Energy integration from telemetry streams.
//!
//! Consumers of the EG's MQTT frames — per-job aggregators, accounting —
//! need to turn timestamped power frames back into joules, including
//! partial overlap with a job's `[start, end)` window.

use crate::gateway::SampleFrame;
use davide_core::units::{Joules, Watts};

/// Accumulates energy from a stream of [`SampleFrame`]s.
#[derive(Debug, Clone, Default)]
pub struct EnergyIntegrator {
    joules: f64,
    samples: u64,
    first_t: Option<f64>,
    last_t: Option<f64>,
    peak_w: f64,
}

impl EnergyIntegrator {
    /// Fresh integrator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume a whole frame.
    pub fn push(&mut self, frame: &SampleFrame) {
        self.joules += frame.energy_j();
        self.samples += frame.watts.len() as u64;
        let end = frame.t0_s + frame.watts.len() as f64 * frame.dt_s;
        self.first_t.get_or_insert(frame.t0_s);
        self.last_t = Some(self.last_t.map_or(end, |t: f64| t.max(end)));
        for &w in &frame.watts {
            self.peak_w = self.peak_w.max(w as f64);
        }
    }

    /// Consume only the part of a frame that overlaps `[start, end)`
    /// (job-window attribution).
    pub fn push_window(&mut self, frame: &SampleFrame, start_s: f64, end_s: f64) {
        for (i, &w) in frame.watts.iter().enumerate() {
            let t = frame.t0_s + i as f64 * frame.dt_s;
            if t >= start_s && t < end_s {
                self.joules += w as f64 * frame.dt_s;
                self.samples += 1;
                self.first_t.get_or_insert(t);
                self.last_t = Some(t + frame.dt_s);
                self.peak_w = self.peak_w.max(w as f64);
            }
        }
    }

    /// Accumulated energy.
    pub fn energy(&self) -> Joules {
        Joules(self.joules)
    }

    /// Samples consumed.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Mean power over the observed span.
    pub fn mean_power(&self) -> Watts {
        match (self.first_t, self.last_t) {
            (Some(a), Some(b)) if b > a => Watts(self.joules / (b - a)),
            _ => Watts::ZERO,
        }
    }

    /// Highest instantaneous sample seen.
    pub fn peak_power(&self) -> Watts {
        Watts(self.peak_w)
    }

    /// Observed time span in seconds.
    pub fn span_s(&self) -> f64 {
        match (self.first_t, self.last_t) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(t0: f64, dt: f64, watts: &[f32]) -> SampleFrame {
        SampleFrame {
            t0_s: t0,
            dt_s: dt,
            watts: watts.to_vec(),
        }
    }

    #[test]
    fn integrates_constant_power() {
        let mut acc = EnergyIntegrator::new();
        // 10 frames × 100 samples × 1 ms × 2000 W = 2000 J.
        for k in 0..10 {
            acc.push(&frame(k as f64 * 0.1, 1e-3, &[2000.0; 100]));
        }
        assert!((acc.energy().0 - 2000.0).abs() < 1e-6);
        assert_eq!(acc.sample_count(), 1000);
        assert!((acc.mean_power().0 - 2000.0).abs() < 1e-6);
        assert_eq!(acc.peak_power(), Watts(2000.0));
        assert!((acc.span_s() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn window_attribution_takes_partial_frames() {
        let mut acc = EnergyIntegrator::new();
        // Frame covers [0, 1); job runs [0.25, 0.75) at 1000 W.
        let f = frame(0.0, 0.01, &[1000.0; 100]);
        acc.push_window(&f, 0.25, 0.75);
        assert!((acc.energy().0 - 500.0).abs() < 10.0 + 1e-9);
        assert_eq!(acc.sample_count(), 50);
    }

    #[test]
    fn empty_integrator_is_zero() {
        let acc = EnergyIntegrator::new();
        assert_eq!(acc.energy(), Joules::ZERO);
        assert_eq!(acc.mean_power(), Watts::ZERO);
        assert_eq!(acc.span_s(), 0.0);
    }

    #[test]
    fn disjoint_window_contributes_nothing() {
        let mut acc = EnergyIntegrator::new();
        acc.push_window(&frame(0.0, 0.01, &[500.0; 100]), 5.0, 6.0);
        assert_eq!(acc.energy(), Joules::ZERO);
        assert_eq!(acc.sample_count(), 0);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut acc = EnergyIntegrator::new();
        acc.push(&frame(0.0, 0.1, &[100.0, 900.0, 400.0]));
        assert_eq!(acc.peak_power(), Watts(900.0));
    }
}
