//! The unified read-path surface: one trait, every store.
//!
//! Before this module, each store grew its own ad-hoc accessor shapes —
//! [`TsDb`] answers by interned id (`last_id`, `mean_id_with_coverage`,
//! `query_range_id`), [`ShardedTsDb`](crate::ShardedTsDb) grew
//! name-keyed one-offs (`query`, `query_range`, `mean`, `energy_j`),
//! and none of them agreed on whether a caller gets provenance back.
//! [`SeriesRead`] redesigns that into a single name-keyed, versionable
//! contract that `davide-api`'s `QueryService` (and any in-repo report
//! code) can be generic over:
//!
//! * every range/aggregate answer carries its [`QueryCoverage`], so a
//!   serving layer can always tell complete history from truncated;
//! * multi-series answers ([`SeriesRead::series_range_filter`]) merge
//!   coverage with [`QueryCoverage::merge`] — per-tier counts add and
//!   the `evicted` truncation flag is sticky across series *and
//!   shards*, so one evicted shard taints the merged answer instead of
//!   being masked by whichever shard answered last;
//! * [`SeriesRead::series_watermark`] exposes the per-series ingest
//!   watermark (total points absorbed) that caches key invalidation on.
//!
//! The id-keyed [`TsDb`] methods remain the allocation-free ingest/hot
//! path; this trait is the *serving* path, where a string lookup per
//! request is noise against cache and socket costs.

use crate::storage::{QueryCoverage, RangeQuery, TierStats};
use crate::tsdb::{Point, Resolution, TsDb};
use davide_mqtt::topic::filter_matches;

/// A multi-series range answer: per-series results plus the coverage
/// merged across all of them ([`QueryCoverage::merge`] semantics).
#[derive(Debug, Clone, Default)]
pub struct FilterRangeQuery {
    /// Matching series in sorted name order, each with its own points
    /// and per-series coverage.
    pub series: Vec<(String, RangeQuery)>,
    /// Coverage folded over every matching series: tier counts summed,
    /// `evicted` true if *any* contributor lost requested history.
    pub coverage: QueryCoverage,
}

/// The one read-path contract over telemetry stores.
///
/// Implemented by [`TsDb`] and [`ShardedTsDb`](crate::ShardedTsDb);
/// `davide-api`'s `QueryService` is generic over it, so the serving
/// layer neither knows nor cares whether the store is sharded. All
/// methods are name-keyed and total: unknown series answer empty (zero
/// count, `None` latest, empty ranges) rather than erroring, matching
/// what a remote caller can distinguish anyway.
pub trait SeriesRead {
    /// Known series names, sorted.
    fn series_names(&self) -> Vec<String>;

    /// Total observations absorbed by a series — monotonic, never
    /// reduced by eviction, so it doubles as the ingest watermark that
    /// rollup caches validate against.
    fn series_watermark(&self, key: &str) -> u64;

    /// Latest raw observation, if any (the staleness probe).
    fn series_last(&self, key: &str) -> Option<Point>;

    /// Range query with provenance over `[t0, t1)` at a resolution.
    fn series_range(&self, key: &str, res: Resolution, t0: f64, t1: f64) -> RangeQuery;

    /// Mean over a window at a resolution, with the provenance of the
    /// points that made it.
    fn series_mean(
        &self,
        key: &str,
        res: Resolution,
        t0: f64,
        t1: f64,
    ) -> (Option<f64>, QueryCoverage);

    /// Energy (rectangle rule over raw spacing) over a window, with
    /// provenance — a true 0 J and an evicted-history 0 J differ.
    fn series_energy_j(&self, key: &str, t0: f64, t1: f64) -> (f64, QueryCoverage);

    /// Point-in-time tier occupancy for the whole store (all shards).
    fn store_tier_stats(&self) -> TierStats;

    /// Range query over every series matching an MQTT-style filter
    /// (`davide/+/power/#`), in sorted name order, with coverage merged
    /// across all matches per [`QueryCoverage::merge`].
    fn series_range_filter(
        &self,
        filter: &str,
        res: Resolution,
        t0: f64,
        t1: f64,
    ) -> FilterRangeQuery {
        let mut out = FilterRangeQuery::default();
        for name in self.series_names() {
            if filter_matches(filter, &name) {
                let rq = self.series_range(&name, res, t0, t1);
                out.coverage.merge(&rq.coverage);
                out.series.push((name, rq));
            }
        }
        out
    }
}

impl SeriesRead for TsDb {
    fn series_names(&self) -> Vec<String> {
        self.keys()
    }

    fn series_watermark(&self, key: &str) -> u64 {
        self.lookup(key).map_or(0, |id| self.count_id(id))
    }

    fn series_last(&self, key: &str) -> Option<Point> {
        self.last_id(self.lookup(key)?)
    }

    fn series_range(&self, key: &str, res: Resolution, t0: f64, t1: f64) -> RangeQuery {
        match self.lookup(key) {
            Some(id) => self.query_range_id(id, res, t0, t1),
            None => RangeQuery::default(),
        }
    }

    fn series_mean(
        &self,
        key: &str,
        res: Resolution,
        t0: f64,
        t1: f64,
    ) -> (Option<f64>, QueryCoverage) {
        match self.lookup(key) {
            Some(id) => self.mean_id_with_coverage(id, res, t0, t1),
            None => (None, QueryCoverage::default()),
        }
    }

    fn series_energy_j(&self, key: &str, t0: f64, t1: f64) -> (f64, QueryCoverage) {
        match self.lookup(key) {
            Some(id) => self.energy_j_id_with_coverage(id, t0, t1),
            None => (0.0, QueryCoverage::default()),
        }
    }

    fn store_tier_stats(&self) -> TierStats {
        self.tier_stats()
    }
}

impl SeriesRead for crate::ingest::ShardedTsDb {
    fn series_names(&self) -> Vec<String> {
        self.keys()
    }

    fn series_watermark(&self, key: &str) -> u64 {
        self.owning_shard(key).series_watermark(key)
    }

    fn series_last(&self, key: &str) -> Option<Point> {
        self.owning_shard(key).series_last(key)
    }

    fn series_range(&self, key: &str, res: Resolution, t0: f64, t1: f64) -> RangeQuery {
        self.owning_shard(key).series_range(key, res, t0, t1)
    }

    fn series_mean(
        &self,
        key: &str,
        res: Resolution,
        t0: f64,
        t1: f64,
    ) -> (Option<f64>, QueryCoverage) {
        self.owning_shard(key).series_mean(key, res, t0, t1)
    }

    fn series_energy_j(&self, key: &str, t0: f64, t1: f64) -> (f64, QueryCoverage) {
        self.owning_shard(key).series_energy_j(key, t0, t1)
    }

    fn store_tier_stats(&self) -> TierStats {
        self.tier_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ShardedTsDb;
    use crate::storage::TieringConfig;
    use crate::tsdb::TsDbConfig;

    fn fill(db: &mut TsDb, key: &str, n: usize) {
        let id = db.resolve(key);
        for i in 0..n {
            db.append_id(id, i as f64, 100.0 + i as f64);
        }
    }

    #[test]
    fn coverage_merge_sums_and_sticks() {
        let mut a = QueryCoverage {
            hot: 3,
            compressed: 1,
            disk: 0,
            evicted: false,
        };
        let b = QueryCoverage {
            hot: 2,
            compressed: 0,
            disk: 5,
            evicted: true,
        };
        a.merge(&b);
        assert_eq!(a.hot, 5);
        assert_eq!(a.compressed, 1);
        assert_eq!(a.disk, 5);
        assert!(a.evicted, "evicted is sticky");
        // Merging a clean coverage cannot clear the flag.
        a.merge(&QueryCoverage::default());
        assert!(a.evicted);
        assert_eq!(a.total(), 11);
    }

    #[test]
    fn tsdb_trait_answers_match_id_path() {
        let mut db = TsDb::new();
        fill(&mut db, "node00/power/node", 100);
        let id = db.lookup("node00/power/node").unwrap();

        assert_eq!(db.series_names(), db.keys());
        assert_eq!(db.series_watermark("node00/power/node"), db.count_id(id));
        assert_eq!(db.series_last("node00/power/node"), db.last_id(id));
        let rq = db.series_range("node00/power/node", Resolution::Raw, 10.0, 20.0);
        let direct = db.query_range_id(id, Resolution::Raw, 10.0, 20.0);
        assert_eq!(rq.points, direct.points);
        assert_eq!(rq.coverage, direct.coverage);
        assert_eq!(
            db.series_mean("node00/power/node", Resolution::Raw, 0.0, 1e9),
            db.mean_id_with_coverage(id, Resolution::Raw, 0.0, 1e9)
        );
        assert_eq!(
            db.series_energy_j("node00/power/node", 0.0, 1e9),
            db.energy_j_id_with_coverage(id, 0.0, 1e9)
        );
    }

    #[test]
    fn unknown_series_answer_empty() {
        let db = TsDb::new();
        assert_eq!(db.series_watermark("missing"), 0);
        assert_eq!(db.series_last("missing"), None);
        let rq = db.series_range("missing", Resolution::Raw, 0.0, 1e9);
        assert!(rq.points.is_empty());
        assert!(rq.coverage.is_complete());
        assert_eq!(db.series_mean("missing", Resolution::Raw, 0.0, 1e9).0, None);
        assert_eq!(db.series_energy_j("missing", 0.0, 1e9).0, 0.0);
    }

    #[test]
    fn energy_coverage_flags_evicted_history() {
        let mut db = TsDb::with_capacity(8, 100);
        fill(&mut db, "s", 20); // points 0..12 evicted
        let (e_all, cov_all) = db.series_energy_j("s", 0.0, 1e9);
        assert!(e_all > 0.0);
        assert!(cov_all.evicted, "window reaches into lost history");
        let (_, cov_tail) = db.series_energy_j("s", 12.0, 1e9);
        assert!(
            cov_tail.is_complete(),
            "window entirely inside retained history"
        );
    }

    #[test]
    fn filter_query_merges_coverage_across_series() {
        let mut db = TsDb::with_capacity(8, 100);
        fill(&mut db, "davide/node00/power/node", 20); // overflows: evicted
        fill(&mut db, "davide/node01/power/node", 4); // fits: complete
        let all = db.series_range_filter("davide/+/power/#", Resolution::Raw, 0.0, 1e9);
        assert_eq!(all.series.len(), 2);
        assert!(all.coverage.evicted, "one truncated series taints merge");
        assert_eq!(all.coverage.total(), 8 + 4);
        // Per-series coverage is preserved alongside the merge.
        let by_name: std::collections::HashMap<_, _> = all
            .series
            .iter()
            .map(|(k, rq)| (k.as_str(), rq.coverage))
            .collect();
        assert!(by_name["davide/node00/power/node"].evicted);
        assert!(by_name["davide/node01/power/node"].is_complete());
        let none = db.series_range_filter("other/#", Resolution::Raw, 0.0, 1e9);
        assert!(none.series.is_empty());
        assert!(none.coverage.is_complete());
    }

    /// The satellite fix: a sharded store must merge per-shard coverage
    /// flags instead of reporting whichever shard answered. Two series
    /// land in different shards; only one overflows its ring. The
    /// merged filter answer must carry the evicted bit even though the
    /// other shard (and the shard answering "last" in sorted order) is
    /// complete.
    #[test]
    fn sharded_filter_merges_eviction_across_shards() {
        let mut db = ShardedTsDb::new(4, 8, 100);
        // Find two keys that land in different shards.
        let keys: Vec<String> = (0..32)
            .map(|i| format!("davide/node{i:02}/power/node"))
            .collect();
        let a = keys[0].clone();
        let b = keys
            .iter()
            .find(|k| db.shard_of(k) != db.shard_of(&a))
            .expect("32 keys over 4 shards must span at least two")
            .clone();
        // Overflow only `a`'s ring (capacity 8).
        for i in 0..20 {
            db.append_frame(&a, i as f64, 0.0, &[1000.0]);
        }
        for i in 0..4 {
            db.append_frame(&b, i as f64, 0.0, &[500.0]);
        }
        assert!(
            !db.series_range(&b, Resolution::Raw, 0.0, 1e9)
                .coverage
                .evicted
        );
        assert!(
            db.series_range(&a, Resolution::Raw, 0.0, 1e9)
                .coverage
                .evicted
        );
        let merged = db.series_range_filter("davide/+/power/#", Resolution::Raw, 0.0, 1e9);
        assert_eq!(merged.series.len(), 2);
        assert!(
            merged.coverage.evicted,
            "evicted shard must taint the merged coverage"
        );
        assert_eq!(merged.coverage.total(), 8 + 4);
        // Sorted order puts the complete series (`b` may sort either
        // side of `a`) somewhere in the answer; the merge must not
        // depend on which answered last.
        let mut rev = merged.series.clone();
        rev.reverse();
        let mut cov = QueryCoverage::default();
        for (_, rq) in &rev {
            cov.merge(&rq.coverage);
        }
        assert!(cov.evicted);
    }

    #[test]
    fn sharded_trait_matches_flat_store() {
        let mut flat = TsDb::new();
        let mut sharded = ShardedTsDb::new(4, 100_000, 100_000);
        for node in 0..6 {
            let key = format!("davide/node{node:02}/power/node");
            for i in 0..50 {
                let t = i as f64;
                let v = 1000.0 + (node * 7 + i) as f64;
                let id = flat.resolve(&key);
                flat.append_id(id, t, v);
                sharded.append_frame(&key, t, 0.0, &[v as f32]);
            }
        }
        assert_eq!(flat.series_names(), sharded.series_names());
        for key in flat.series_names() {
            assert_eq!(flat.series_watermark(&key), sharded.series_watermark(&key));
            assert_eq!(flat.series_last(&key), sharded.series_last(&key));
            let (fr, sr) = (
                flat.series_range(&key, Resolution::Raw, 0.0, 1e9),
                sharded.series_range(&key, Resolution::Raw, 0.0, 1e9),
            );
            assert_eq!(fr.points, sr.points);
            assert_eq!(fr.coverage, sr.coverage);
            assert_eq!(
                flat.series_energy_j(&key, 0.0, 1e9),
                sharded.series_energy_j(&key, 0.0, 1e9)
            );
        }
    }

    #[test]
    fn tiered_store_reports_tier_stats_via_trait() {
        let mut db = TsDb::with_config(TsDbConfig {
            raw_capacity: 4096,
            rollup_capacity: 1024,
            ring_prealloc: 256,
            tiering: Some(TieringConfig {
                seal_block: 256,
                hot_retain: Some(256),
                ..TieringConfig::default()
            }),
        })
        .unwrap();
        let id = db.resolve("s");
        for i in 0..2000 {
            db.append_id(id, i as f64 * 0.001, 1500.0);
        }
        db.compact();
        let st = db.store_tier_stats();
        assert!(st.sealed_points > 0, "compaction sealed blocks");
        assert_eq!(st, db.tier_stats());
    }
}
