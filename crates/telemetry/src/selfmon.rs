//! Self-telemetry over MQTT: the monitoring plane in its own pipeline.
//!
//! `davide-obs` keeps its bridge codec-agnostic; this module supplies
//! the MQTT adapter. [`MqttMetricSink`] encodes each registry sample as
//! a one-element [`SampleFrame`] and publishes it on the reserved
//! `davide/obs/self/<metric>` topic, so the ordinary
//! [`FrameIngestor`](crate::ingest::FrameIngestor) → [`TsDb`] chain
//! records the stack's own metrics exactly like node power — the
//! EG → MQTT → aggregator loop of the paper, pointed at itself.

use crate::gateway::SampleFrame;
use davide_mqtt::{Broker, BrokerError, Client, QoS};
use davide_obs::{FrameSink, MetricsRegistry, SelfTelemetry};

/// A [`FrameSink`] publishing one-sample frames over an MQTT client.
pub struct MqttMetricSink {
    client: Client,
}

impl MqttMetricSink {
    /// Connect `name` to `broker` as the self-telemetry publisher.
    pub fn connect(broker: &Broker, name: &str) -> Self {
        MqttMetricSink {
            client: broker.connect(name.to_string()),
        }
    }
}

impl FrameSink for MqttMetricSink {
    fn publish_sample(&mut self, topic: &str, t_s: f64, value: f64) {
        let frame = SampleFrame {
            t0_s: t_s,
            dt_s: 0.0,
            watts: vec![value as f32],
        };
        // Obs topics are pre-sanitised; a publish can only fail if the
        // metric name defeats sanitisation, which is a wiring bug we
        // surface loudly rather than silently dropping telemetry.
        self.client
            .publish(topic, frame.encode(), QoS::AtMostOnce, false)
            .expect("obs topic must be publishable");
    }
}

/// Periodic registry → MQTT pump: [`SelfTelemetry`] wired to an
/// [`MqttMetricSink`]. Call [`SelfMonitor::pump`] from the control
/// loop; emission instants derive from the caller's clock, so the
/// deterministic harness stays bit-identical.
pub struct SelfMonitor {
    bridge: SelfTelemetry,
    sink: MqttMetricSink,
}

impl SelfMonitor {
    /// A monitor publishing every `period_s` seconds as client `name`.
    pub fn connect(broker: &Broker, name: &str, period_s: f64) -> Result<Self, BrokerError> {
        Ok(SelfMonitor {
            bridge: SelfTelemetry::new(period_s),
            sink: MqttMetricSink::connect(broker, name),
        })
    }

    /// Publish a registry snapshot if the period has elapsed; returns
    /// samples published (0 when not yet due).
    pub fn pump(&mut self, now_s: f64, registry: &MetricsRegistry) -> usize {
        self.bridge.maybe_publish(now_s, registry, &mut self.sink)
    }

    /// Total samples published so far.
    pub fn emitted(&self) -> u64 {
        self.bridge.emitted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::FrameIngestor;
    use crate::tsdb::{Resolution, TsDb};
    use davide_obs::{obs_topic, OBS_FILTER};

    #[test]
    fn registry_roundtrips_through_mqtt_into_tsdb() {
        let broker = Broker::default();
        let registry = MetricsRegistry::new();
        registry.counter("ingest_frames_total").add(42);
        registry.gauge("cluster_cap_w").set(9000.0);
        let h = registry.histogram("ctl_loop_ns");
        h.record(1 << 20);

        // The obs subscriber uses the same ingest plumbing as power
        // telemetry.
        let mut ing = FrameIngestor::subscribe(&broker, "obs-agent", &[OBS_FILTER]).unwrap();
        let mut mon = SelfMonitor::connect(&broker, "obs-pub", 10.0).unwrap();

        assert_eq!(mon.pump(5.0, &registry), 0, "not due yet");
        // counter + gauge + 6 histogram series.
        assert_eq!(mon.pump(10.0, &registry), 8);

        let mut db = TsDb::new();
        assert_eq!(ing.drain_into(&mut db), 8);
        let id = db.lookup(&obs_topic("ingest_frames_total")).unwrap();
        let pts = db.query_id(id, Resolution::Raw, 0.0, 1e9);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].t, 10.0);
        assert_eq!(pts[0].v, 42.0);
        let cap = db.lookup(&obs_topic("cluster_cap_w")).unwrap();
        assert_eq!(db.query_id(cap, Resolution::Raw, 0.0, 1e9)[0].v, 9000.0);
        assert!(db.lookup(&obs_topic("ctl_loop_ns_p99")).is_some());

        // A later pump appends a second point to the same series.
        registry.counter("ingest_frames_total").add(1);
        assert_eq!(mon.pump(20.0, &registry), 8);
        ing.drain_into(&mut db);
        assert_eq!(db.count_id(id), 2);
        assert_eq!(db.query_id(id, Resolution::Raw, 0.0, 1e9)[1].v, 43.0);
    }

    #[test]
    fn obs_frames_invisible_to_power_subscribers() {
        let broker = Broker::default();
        let registry = MetricsRegistry::new();
        registry.counter("x").add(1);
        let mut power_agent =
            FrameIngestor::subscribe(&broker, "mgmt", &["davide/+/power/#"]).unwrap();
        let mut mon = SelfMonitor::connect(&broker, "obs-pub", 1.0).unwrap();
        assert_eq!(mon.pump(1.0, &registry), 1);
        let mut db = TsDb::new();
        assert_eq!(power_agent.drain_into(&mut db), 0, "namespace isolation");
    }
}
