//! Sensor calibration.
//!
//! §V-C stresses "the accuracy of the power sensors and their
//! acquisition chain" ([25]). Shunt channels are calibrated at
//! installation against reference loads: a two-point (or least-squares
//! multi-point) fit recovers the channel's gain and offset, which the
//! gateway then inverts on every sample.

use crate::sensors::PowerSensor;
use davide_core::power::PowerTrace;
use davide_core::rng::Rng;
use davide_core::time::SimTime;

/// A calibration: corrected = (measured − offset) / gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Estimated multiplicative gain of the chain.
    pub gain: f64,
    /// Estimated additive offset, watts.
    pub offset_w: f64,
}

impl Calibration {
    /// The identity calibration.
    pub const IDENTITY: Calibration = Calibration {
        gain: 1.0,
        offset_w: 0.0,
    };

    /// Correct one measured value.
    pub fn correct(&self, measured: f64) -> f64 {
        (measured - self.offset_w) / self.gain
    }

    /// Correct a whole trace.
    pub fn correct_trace(&self, trace: &PowerTrace) -> PowerTrace {
        PowerTrace::new(
            trace.t0,
            trace.dt,
            trace.samples.iter().map(|&s| self.correct(s)).collect(),
        )
    }
}

/// Calibrate a sensor channel against reference loads: apply each known
/// `reference_w` load for `samples` samples, average the channel's
/// reading, then least-squares fit `measured = gain·true + offset`.
pub fn calibrate(
    sensor: &PowerSensor,
    reference_w: &[f64],
    samples: usize,
    rng: &mut Rng,
) -> Calibration {
    assert!(reference_w.len() >= 2, "need at least two reference points");
    assert!(samples >= 1);
    let mut xs = Vec::with_capacity(reference_w.len());
    let mut ys = Vec::with_capacity(reference_w.len());
    for &w in reference_w {
        let truth = PowerTrace::new(SimTime::ZERO, 1e-4, vec![w; samples]);
        let measured = sensor.acquire(&truth, rng);
        xs.push(w);
        ys.push(measured.mean().0);
    }
    // Least squares for y = a·x + b.
    let n = xs.len() as f64;
    let sx: f64 = xs.iter().sum();
    let sy: f64 = ys.iter().sum();
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-9, "reference points must differ");
    let gain = (n * sxy - sx * sy) / denom;
    let offset = (sy - gain * sx) / n;
    Calibration {
        gain,
        offset_w: offset,
    }
}

/// The standard site procedure: calibrate against 10 %, 50 % and 90 %
/// of the channel's range.
pub fn standard_calibration(sensor: &PowerSensor, full_scale_w: f64, rng: &mut Rng) -> Calibration {
    calibrate(
        sensor,
        &[0.1 * full_scale_w, 0.5 * full_scale_w, 0.9 * full_scale_w],
        5_000,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::SensorKind;

    fn skewed_sensor() -> PowerSensor {
        PowerSensor {
            kind: SensorKind::Shunt,
            gain: 1.03,
            offset_w: 7.5,
            noise_rms_w: 1.0,
            bandwidth_hz: f64::INFINITY,
        }
    }

    #[test]
    fn recovers_gain_and_offset() {
        let sensor = skewed_sensor();
        let mut rng = Rng::seed_from(1);
        let cal = standard_calibration(&sensor, 4000.0, &mut rng);
        assert!((cal.gain - 1.03).abs() < 0.001, "gain {}", cal.gain);
        assert!((cal.offset_w - 7.5).abs() < 1.5, "offset {}", cal.offset_w);
    }

    #[test]
    fn calibration_fixes_measurements() {
        let sensor = skewed_sensor();
        let mut rng = Rng::seed_from(2);
        let cal = standard_calibration(&sensor, 4000.0, &mut rng);
        // Measure an out-of-calibration-set load.
        let truth = PowerTrace::new(SimTime::ZERO, 1e-4, vec![1234.0; 20_000]);
        let raw = sensor.acquire(&truth, &mut rng);
        let corrected = cal.correct_trace(&raw);
        let raw_err = (raw.mean().0 - 1234.0).abs();
        let cal_err = (corrected.mean().0 - 1234.0).abs();
        assert!(raw_err > 40.0, "uncalibrated is visibly wrong: {raw_err}");
        assert!(cal_err < 1.0, "calibrated within a watt: {cal_err}");
    }

    #[test]
    fn identity_on_perfect_sensor() {
        let sensor = PowerSensor::ideal();
        let mut rng = Rng::seed_from(3);
        let cal = standard_calibration(&sensor, 4000.0, &mut rng);
        assert!((cal.gain - 1.0).abs() < 1e-9);
        assert!(cal.offset_w.abs() < 1e-9);
        assert_eq!(Calibration::IDENTITY.correct(42.0), 42.0);
    }

    #[test]
    fn calibration_improves_energy_accounting() {
        use crate::waveform::WorkloadWaveform;
        let sensor = skewed_sensor();
        let mut rng = Rng::seed_from(4);
        let cal = standard_calibration(&sensor, 4000.0, &mut rng);
        let truth = WorkloadWaveform::hpc_job(1500.0, 0.5).render(10_000.0, 2.0, &mut rng.fork());
        let raw = sensor.acquire(&truth, &mut rng);
        let corrected = cal.correct_trace(&raw);
        let e_true = truth.energy().0;
        let err_raw = (raw.energy().0 - e_true).abs() / e_true;
        let err_cal = (corrected.energy().0 - e_true).abs() / e_true;
        assert!(err_cal < err_raw / 5.0, "cal {err_cal} vs raw {err_raw}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn needs_two_points() {
        let mut rng = Rng::seed_from(5);
        calibrate(&PowerSensor::ideal(), &[100.0], 10, &mut rng);
    }
}
