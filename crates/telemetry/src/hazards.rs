//! Hazard detection on telemetry streams.
//!
//! §III-A1: the out-of-band monitoring "runs data intelligence on the
//! monitored data to identify sources of not-optimality and hazards".
//! Detectors here flag the conditions a site cares about: sustained
//! over-power, thermal-runaway trends, stuck sensors, and nodes whose
//! power diverges from their fleet peers (early failure signature).

use davide_core::power::PowerTrace;
use davide_core::units::Watts;

/// A detected hazard.
#[derive(Debug, Clone, PartialEq)]
pub enum Hazard {
    /// Power stayed above `limit` for longer than the tolerance.
    SustainedOverPower {
        /// The limit that was exceeded.
        limit: Watts,
        /// Seconds continuously above the limit.
        duration_s: f64,
    },
    /// A monotone upward trend consistent with thermal runaway or a
    /// failing VRM: watts-per-second slope over the window.
    RunawayTrend {
        /// Fitted slope, W/s.
        slope_w_per_s: f64,
    },
    /// The sensor repeats the same value — a stuck ADC/mux channel.
    StuckSensor {
        /// The repeated value.
        value: Watts,
        /// How many consecutive identical samples.
        run_length: usize,
    },
    /// A node deviates from the fleet median by more than the threshold
    /// under nominally identical load.
    FleetOutlier {
        /// Node index in the fleet slice.
        node: usize,
        /// Its mean power.
        mean: Watts,
        /// The fleet median.
        median: Watts,
    },
}

/// Detector thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HazardConfig {
    /// Over-power limit.
    pub power_limit: Watts,
    /// Seconds above the limit before flagging.
    pub overpower_tolerance_s: f64,
    /// Minimum runaway slope, W/s.
    pub runaway_slope: f64,
    /// Identical-sample run length that means "stuck".
    pub stuck_run: usize,
    /// Fleet-outlier threshold as a fraction of the median.
    pub outlier_fraction: f64,
}

impl Default for HazardConfig {
    fn default() -> Self {
        HazardConfig {
            power_limit: Watts(2_100.0),
            overpower_tolerance_s: 1.0,
            runaway_slope: 5.0,
            stuck_run: 1_000,
            outlier_fraction: 0.12,
        }
    }
}

/// Scan one node's trace for over-power, runaway and stuck-sensor
/// hazards.
pub fn scan_trace(trace: &PowerTrace, cfg: HazardConfig) -> Vec<Hazard> {
    let mut out = Vec::new();
    if trace.len() < 2 {
        return out;
    }
    // Sustained over-power: longest run above the limit.
    let mut run = 0usize;
    let mut worst_run = 0usize;
    for &s in &trace.samples {
        if s > cfg.power_limit.0 {
            run += 1;
            worst_run = worst_run.max(run);
        } else {
            run = 0;
        }
    }
    let over_s = worst_run as f64 * trace.dt;
    if over_s >= cfg.overpower_tolerance_s {
        out.push(Hazard::SustainedOverPower {
            limit: cfg.power_limit,
            duration_s: over_s,
        });
    }
    // Runaway trend: least-squares slope.
    let n = trace.len() as f64;
    let mean_t = (n - 1.0) / 2.0 * trace.dt;
    let mean_p = trace.mean().0;
    let mut cov = 0.0;
    let mut var_t = 0.0;
    for (i, &p) in trace.samples.iter().enumerate() {
        let t = i as f64 * trace.dt - mean_t;
        cov += t * (p - mean_p);
        var_t += t * t;
    }
    let slope = if var_t > 0.0 { cov / var_t } else { 0.0 };
    if slope >= cfg.runaway_slope {
        out.push(Hazard::RunawayTrend {
            slope_w_per_s: slope,
        });
    }
    // Stuck sensor: longest run of bit-identical samples.
    let mut same = 1usize;
    let mut worst_same = 1usize;
    for w in trace.samples.windows(2) {
        if w[0] == w[1] {
            same += 1;
            worst_same = worst_same.max(same);
        } else {
            same = 1;
        }
    }
    if worst_same >= cfg.stuck_run {
        // Find the value of the longest run (re-scan).
        let mut best_val = trace.samples[0];
        let mut same = 1usize;
        for w in trace.samples.windows(2) {
            if w[0] == w[1] {
                same += 1;
                if same == worst_same {
                    best_val = w[1];
                }
            } else {
                same = 1;
            }
        }
        out.push(Hazard::StuckSensor {
            value: Watts(best_val),
            run_length: worst_same,
        });
    }
    out
}

/// Compare fleet members under identical load: nodes whose mean power
/// deviates from the median by more than the configured fraction.
pub fn fleet_outliers(means: &[Watts], cfg: HazardConfig) -> Vec<Hazard> {
    if means.len() < 3 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = means.iter().map(|m| m.0).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[sorted.len() / 2];
    means
        .iter()
        .enumerate()
        .filter(|(_, m)| (m.0 - median).abs() > cfg.outlier_fraction * median)
        .map(|(i, m)| Hazard::FleetOutlier {
            node: i,
            mean: *m,
            median: Watts(median),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::time::SimTime;

    fn cfg() -> HazardConfig {
        HazardConfig::default()
    }

    #[test]
    fn clean_trace_raises_nothing() {
        let tr = PowerTrace::from_fn(SimTime::ZERO, 0.01, 2_000, |t| {
            1700.0 + 30.0 * (t * 7.0).sin()
        });
        assert!(scan_trace(&tr, cfg()).is_empty());
    }

    #[test]
    fn sustained_overpower_detected() {
        // 2 s above 2.1 kW inside an otherwise normal trace.
        let tr = PowerTrace::from_fn(SimTime::ZERO, 0.01, 1_000, |t| {
            if (3.0..5.0).contains(&t) {
                2_300.0
            } else {
                1_700.0 + (t * 13.0).sin()
            }
        });
        let hz = scan_trace(&tr, cfg());
        assert!(
            matches!(
                hz.as_slice(),
                [Hazard::SustainedOverPower { duration_s, .. }] if (*duration_s - 2.0).abs() < 0.05
            ),
            "{hz:?}"
        );
        // A 0.5 s excursion is tolerated.
        let brief = PowerTrace::from_fn(SimTime::ZERO, 0.01, 1_000, |t| {
            if (3.0..3.5).contains(&t) {
                2_300.0
            } else {
                1_700.0 + (t * 13.0).sin()
            }
        });
        assert!(scan_trace(&brief, cfg()).is_empty());
    }

    #[test]
    fn runaway_trend_detected() {
        // +8 W/s climb — a cooling failure in progress.
        let tr = PowerTrace::from_fn(SimTime::ZERO, 0.1, 600, |t| 1_500.0 + 8.0 * t);
        let hz = scan_trace(&tr, cfg());
        assert!(
            hz.iter().any(|h| matches!(
                h,
                Hazard::RunawayTrend { slope_w_per_s } if (*slope_w_per_s - 8.0).abs() < 0.5
            )),
            "{hz:?}"
        );
        // Flat traces do not trip it.
        let flat = PowerTrace::from_fn(SimTime::ZERO, 0.1, 600, |t| 1_500.0 + (t * 3.0).sin());
        assert!(!scan_trace(&flat, cfg())
            .iter()
            .any(|h| matches!(h, Hazard::RunawayTrend { .. })));
    }

    #[test]
    fn stuck_sensor_detected() {
        let mut samples: Vec<f64> = (0..500).map(|i| 1600.0 + (i % 7) as f64).collect();
        samples.extend(std::iter::repeat_n(1234.5, 1_500));
        let tr = PowerTrace::new(SimTime::ZERO, 0.001, samples);
        let hz = scan_trace(&tr, cfg());
        assert!(hz.iter().any(|h| matches!(
            h,
            Hazard::StuckSensor { value, run_length } if value.0 == 1234.5 && *run_length >= 1_500
        )), "{hz:?}");
    }

    #[test]
    fn fleet_outlier_detected() {
        // 8 healthy nodes near 1.7 kW; one dragging 1.3 kW (dead GPU).
        let mut means = vec![Watts(1_700.0); 8];
        means[3] = Watts(1_300.0);
        let hz = fleet_outliers(&means, cfg());
        assert_eq!(hz.len(), 1);
        assert!(matches!(hz[0], Hazard::FleetOutlier { node: 3, .. }));
        // A tight fleet raises nothing.
        let tight: Vec<Watts> = (0..8).map(|i| Watts(1_700.0 + i as f64)).collect();
        assert!(fleet_outliers(&tight, cfg()).is_empty());
        // Tiny fleets are not judged.
        assert!(fleet_outliers(&means[..2], cfg()).is_empty());
    }

    #[test]
    fn node_model_produces_clean_bill() {
        // A healthy node's waveform through the EG raises no hazards.
        use crate::waveform::WorkloadWaveform;
        use davide_core::rng::Rng;
        let mut rng = Rng::seed_from(6);
        let truth = WorkloadWaveform::hpc_job(1_700.0, 0.5).render(50_000.0, 3.0, &mut rng);
        assert!(scan_trace(&truth, cfg()).is_empty());
    }
}
