//! Complete acquisition chains for node power monitoring, including the
//! related-work baselines of §V-C.
//!
//! Each [`MonitorChain`] models sensor → ADC → rate reduction for one
//! monitoring system, so E3 can compare energy-measurement fidelity
//! across: the D.A.V.I.D.E. energy gateway (800 kS/s → 50 kS/s averaged),
//! HDEEM (8 kS/s averaged via FPGA+BMC), PowerInsight and ArduPower
//! (≈1 kS/s instantaneous via external ADCs) and plain IPMI polling
//! (≈1 S/s instantaneous, no timestamps, aliased).

use crate::adc::SarAdc;
use crate::decimation::{boxcar_decimate, pick_decimate, Decimator};
use crate::sensors::PowerSensor;
use davide_core::power::{energy_error_pct, PowerTrace};
use davide_core::rng::Rng;
use davide_core::units::Joules;

/// How the chain reduces the ADC rate to its reporting rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateReduction {
    /// Hardware averaging (alias-free energy accounting).
    Averaged,
    /// Instantaneous snapshots (aliases).
    Instantaneous,
}

/// A complete monitoring chain.
#[derive(Debug, Clone)]
pub struct MonitorChain {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Analog front-end.
    pub sensor: PowerSensor,
    /// Converter model (None = BMC register readout, no extra
    /// quantisation beyond the sensor).
    pub adc: Option<SarAdc>,
    /// Rate the chain reports samples at, Hz.
    pub report_rate_hz: f64,
    /// Averaging or snapshotting.
    pub reduction: RateReduction,
    /// RMS timestamp error attached to reported samples, seconds.
    pub timestamp_error_s: f64,
}

impl MonitorChain {
    /// The D.A.V.I.D.E. energy gateway: shunt on the DC backplane,
    /// AM335x at 800 kS/s, hardware-averaged ×16 to 50 kS/s,
    /// PTP-hardware timestamps.
    pub fn davide_eg(rng: &mut Rng) -> Self {
        MonitorChain {
            name: "DAVIDE EG (800kS/s→50kS/s avg)",
            sensor: PowerSensor::davide_shunt(rng),
            adc: Some(SarAdc::am335x_power_channel()),
            report_rate_hz: 50_000.0,
            reduction: RateReduction::Averaged,
            timestamp_error_s: 1e-6,
        }
    }

    /// HDEEM [25][26]: Hall sensors per power line, FPGA acquisition at
    /// 8 kS/s (alias-free), accurate timestamps, but readout through the
    /// closed BMC.
    pub fn hdeem(rng: &mut Rng) -> Self {
        MonitorChain {
            name: "HDEEM (8kS/s avg via BMC)",
            sensor: PowerSensor::hall_effect(rng),
            adc: Some(SarAdc {
                bits: 16,
                full_scale_min: 0.0,
                full_scale_max: 4000.0,
                sample_rate: 8_000.0,
                aperture_jitter_s: 50e-9,
            }),
            report_rate_hz: 8_000.0,
            reduction: RateReduction::Averaged,
            timestamp_error_s: 5e-6,
        }
    }

    /// PowerInsight [28]: BeagleBone + *external* ADCs at 1 kS/s,
    /// instantaneous samples, custom interface.
    pub fn powerinsight(rng: &mut Rng) -> Self {
        MonitorChain {
            name: "PowerInsight (1kS/s inst.)",
            sensor: PowerSensor::davide_shunt(rng),
            adc: Some(SarAdc {
                bits: 12,
                full_scale_min: 0.0,
                full_scale_max: 4000.0,
                sample_rate: 1_000.0,
                aperture_jitter_s: 100e-9,
            }),
            report_rate_hz: 1_000.0,
            reduction: RateReduction::Instantaneous,
            timestamp_error_s: 100e-6,
        }
    }

    /// ArduPower [27]: Arduino Mega wattmeter, ~1 kS/s aggregate,
    /// instantaneous, 10-bit ADC.
    pub fn ardupower(rng: &mut Rng) -> Self {
        MonitorChain {
            name: "ArduPower (1kS/s inst., 10-bit)",
            sensor: PowerSensor::hall_effect(rng),
            adc: Some(SarAdc {
                bits: 10,
                full_scale_min: 0.0,
                full_scale_max: 4000.0,
                sample_rate: 1_000.0,
                aperture_jitter_s: 500e-9,
            }),
            report_rate_hz: 1_000.0,
            reduction: RateReduction::Instantaneous,
            timestamp_error_s: 1e-3,
        }
    }

    /// IPMI BMC polling: ~1 S/s, instantaneous register reads, no
    /// timestamping (seconds of uncertainty), coarse resolution.
    pub fn ipmi(rng: &mut Rng) -> Self {
        MonitorChain {
            name: "IPMI BMC (1S/s inst., no ts)",
            sensor: PowerSensor {
                noise_rms_w: 4.0,
                ..PowerSensor::hall_effect(rng)
            },
            adc: Some(SarAdc {
                bits: 8,
                full_scale_min: 0.0,
                full_scale_max: 4000.0,
                sample_rate: 1.0,
                aperture_jitter_s: 1e-6,
            }),
            report_rate_hz: 1.0,
            reduction: RateReduction::Instantaneous,
            timestamp_error_s: 1.0,
        }
    }

    /// Pass a ground-truth trace (rendered at a high rate, ≥ the chain's
    /// ADC rate) through the full chain and return the reported trace.
    pub fn acquire(&self, truth: &PowerTrace, rng: &mut Rng) -> PowerTrace {
        // 1. Analog front-end at the truth rate.
        let analog = self.sensor.acquire(truth, rng);
        // 2. Bring to the ADC sampling grid.
        let adc_rate = self
            .adc
            .as_ref()
            .map_or(truth.sample_rate(), |a| a.sample_rate);
        let at_adc_rate = if (adc_rate - truth.sample_rate()).abs() < 1e-6 {
            analog
        } else {
            let m = (truth.sample_rate() / adc_rate).round() as usize;
            // The converter sees the instantaneous analog value at its
            // sampling instants (anti-aliasing only from the sensor pole).
            pick_decimate(&analog, m.max(1))
        };
        // 3. Quantise.
        let digital = match &self.adc {
            Some(adc) => adc.digitise(&at_adc_rate),
            None => at_adc_rate,
        };
        // 4. Reduce to the report rate.
        let m = (digital.sample_rate() / self.report_rate_hz).round() as usize;
        if m <= 1 {
            digital
        } else {
            match self.reduction {
                RateReduction::Averaged => boxcar_decimate(&digital, m),
                RateReduction::Instantaneous => pick_decimate(&digital, m),
            }
        }
    }

    /// Streaming rate reducer for continuous operation: feed digitised
    /// chunks (at the ADC rate) as they arrive and collect report-rate
    /// output incrementally; over a whole stream the output matches
    /// [`Self::acquire`]'s reduction stage exactly, with the partial
    /// window carried across chunk boundaries instead of dropped.
    /// `None` for chains that report at the ADC rate or snapshot
    /// instantaneously (no averaging state to carry).
    pub fn streaming_reducer(&self) -> Option<Decimator> {
        let adc_rate = self.adc.as_ref().map(|a| a.sample_rate)?;
        let m = (adc_rate / self.report_rate_hz).round() as usize;
        if m <= 1 || self.reduction != RateReduction::Averaged {
            return None;
        }
        Some(Decimator::boxcar(m))
    }

    /// Energy-measurement error (percent) for this chain on `truth`.
    pub fn energy_error(&self, truth: &PowerTrace, rng: &mut Rng) -> f64 {
        let reported = self.acquire(truth, rng);
        energy_error_pct(reported.energy_rect(), truth.energy())
    }

    /// Measured energy for this chain on `truth`.
    pub fn measured_energy(&self, truth: &PowerTrace, rng: &mut Rng) -> Joules {
        self.acquire(truth, rng).energy_rect()
    }
}

/// All five chains, freshly calibrated from `rng`, EG first.
pub fn all_chains(rng: &mut Rng) -> Vec<MonitorChain> {
    vec![
        MonitorChain::davide_eg(&mut rng.fork()),
        MonitorChain::hdeem(&mut rng.fork()),
        MonitorChain::powerinsight(&mut rng.fork()),
        MonitorChain::ardupower(&mut rng.fork()),
        MonitorChain::ipmi(&mut rng.fork()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::WorkloadWaveform;

    fn truth(seed: u64, duration: f64) -> PowerTrace {
        let mut rng = Rng::seed_from(seed);
        WorkloadWaveform::hpc_job(1700.0, 0.7).render(800_000.0, duration, &mut rng)
    }

    #[test]
    fn eg_chain_reports_at_50ksps() {
        let mut rng = Rng::seed_from(1);
        let t = truth(10, 0.2);
        let eg = MonitorChain::davide_eg(&mut rng);
        let out = eg.acquire(&t, &mut rng);
        assert!((out.sample_rate() - 50_000.0).abs() < 1.0);
        assert_eq!(out.len(), 10_000);
    }

    #[test]
    fn eg_energy_error_below_one_percent() {
        let mut rng = Rng::seed_from(2);
        let t = truth(11, 1.0);
        let eg = MonitorChain::davide_eg(&mut rng);
        let err = eg.energy_error(&t, &mut rng);
        assert!(err < 1.0, "EG error {err}% too high");
    }

    #[test]
    fn chain_rates_match_claims() {
        let mut rng = Rng::seed_from(3);
        let rates: Vec<f64> = all_chains(&mut rng)
            .iter()
            .map(|c| c.report_rate_hz)
            .collect();
        assert_eq!(rates, vec![50_000.0, 8_000.0, 1_000.0, 1_000.0, 1.0]);
    }

    #[test]
    fn ipmi_worst_eg_best_on_bursty_load() {
        let mut rng = Rng::seed_from(4);
        let mut gen = Rng::seed_from(12);
        let t = WorkloadWaveform::gpu_burst(1700.0).render(800_000.0, 2.0, &mut gen);
        let chains = all_chains(&mut rng);
        let errs: Vec<f64> = chains
            .iter()
            .map(|c| c.energy_error(&t, &mut rng))
            .collect();
        let eg = errs[0];
        let ipmi = errs[4];
        assert!(eg < 1.0, "EG {eg}%");
        assert!(ipmi > eg * 2.0, "IPMI {ipmi}% vs EG {eg}%");
    }

    #[test]
    fn averaged_chains_beat_instantaneous_at_same_rate() {
        // Build a synthetic pair: same 1 kS/s rate, averaged vs
        // instantaneous, on a phase-switching signal.
        let mut rng = Rng::seed_from(5);
        let mut gen = Rng::seed_from(6);
        let t = WorkloadWaveform::hpc_job(1500.0, 0.11).render(800_000.0, 2.0, &mut gen);
        let mut avg = MonitorChain::powerinsight(&mut rng.fork());
        avg.reduction = RateReduction::Averaged;
        avg.sensor = PowerSensor::ideal();
        let mut inst = MonitorChain::powerinsight(&mut rng.fork());
        inst.sensor = PowerSensor::ideal();
        // Averaged path needs the full-rate stream: give it an ADC at
        // the truth rate that then averages down.
        avg.adc = Some(SarAdc {
            sample_rate: 800_000.0,
            ..SarAdc::am335x_power_channel()
        });
        let e_avg = avg.energy_error(&t, &mut rng);
        let e_inst = inst.energy_error(&t, &mut rng);
        assert!(
            e_avg <= e_inst + 0.05,
            "averaging must not lose to snapshots: {e_avg}% vs {e_inst}%"
        );
    }

    #[test]
    fn streaming_reducer_matches_batch_acquire() {
        // Run the EG reduction stage continuously in 500-sample chunks:
        // the concatenated output must equal the batch acquire()'s.
        let mut rng = Rng::seed_from(8);
        let t = truth(13, 0.1);
        let eg = MonitorChain::davide_eg(&mut rng.fork());
        let batch = eg.acquire(&t, &mut rng.fork());

        // Reproduce the pre-reduction pipeline with an identical rng.
        let mut rng2 = Rng::seed_from(8);
        let eg2 = MonitorChain::davide_eg(&mut rng2.fork());
        let mut acq_rng = rng2.fork();
        let analog = eg2.sensor.acquire(&t, &mut acq_rng);
        let digital = eg2.adc.as_ref().unwrap().digitise(&analog);

        let mut dec = eg2.streaming_reducer().expect("EG averages");
        assert_eq!(dec.factor(), 16);
        let mut out = Vec::new();
        for chunk in digital.samples.chunks(500) {
            dec.push(chunk, &mut out);
        }
        dec.finish(&mut out);
        assert_eq!(out, batch.samples, "streaming == batch reduction");
        // Instantaneous chains carry no averaging state.
        assert!(MonitorChain::ipmi(&mut rng).streaming_reducer().is_none());
    }

    #[test]
    fn timestamp_errors_ordered() {
        let mut rng = Rng::seed_from(7);
        let chains = all_chains(&mut rng);
        assert!(chains[0].timestamp_error_s < chains[1].timestamp_error_s);
        assert!(chains[1].timestamp_error_s < chains[4].timestamp_error_s);
        assert!(chains[4].timestamp_error_s >= 1.0, "IPMI: seconds");
    }
}
