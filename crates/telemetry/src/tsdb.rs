//! Telemetry time-series store.
//!
//! Fig. 4: monitoring information "is recorded into a database, and
//! computed by the management node for the training of job-to-power
//! predictors". This is that database, RRD-style: per-series ring
//! buffers at multiple rollup resolutions (raw, 1 s, 1 min means) with
//! range and downsampling queries — enough to hold months of per-node
//! power history in bounded memory.

use std::collections::HashMap;

/// One (timestamp, value) observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Timestamp, seconds.
    pub t: f64,
    /// Value (watts for power series).
    pub v: f64,
}

/// A bounded ring of points.
#[derive(Debug, Clone)]
struct Ring {
    points: std::collections::VecDeque<Point>,
    capacity: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            points: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    fn push(&mut self, p: Point) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(p);
    }

    fn range(&self, t0: f64, t1: f64) -> Vec<Point> {
        self.points
            .iter()
            .filter(|p| p.t >= t0 && p.t < t1)
            .copied()
            .collect()
    }
}

/// Rollup accumulator: averages raw points into fixed buckets.
#[derive(Debug, Clone)]
struct Rollup {
    bucket_s: f64,
    ring: Ring,
    acc_sum: f64,
    acc_n: u64,
    acc_bucket: i64,
}

impl Rollup {
    fn new(bucket_s: f64, capacity: usize) -> Self {
        Rollup {
            bucket_s,
            ring: Ring::new(capacity),
            acc_sum: 0.0,
            acc_n: 0,
            acc_bucket: i64::MIN,
        }
    }

    fn push(&mut self, p: Point) {
        let bucket = (p.t / self.bucket_s).floor() as i64;
        if bucket != self.acc_bucket {
            self.flush();
            self.acc_bucket = bucket;
        }
        self.acc_sum += p.v;
        self.acc_n += 1;
    }

    fn flush(&mut self) {
        if self.acc_n > 0 {
            self.ring.push(Point {
                t: (self.acc_bucket as f64 + 0.5) * self.bucket_s,
                v: self.acc_sum / self.acc_n as f64,
            });
        }
        self.acc_sum = 0.0;
        self.acc_n = 0;
    }
}

/// One series: raw ring plus rollups.
#[derive(Debug, Clone)]
struct Series {
    raw: Ring,
    rollups: Vec<Rollup>,
    count: u64,
    last_t: f64,
}

/// Query resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Raw samples (shortest retention).
    Raw,
    /// 1-second means.
    Second,
    /// 1-minute means.
    Minute,
}

/// The store: keyed by series name (e.g. `node03/power/node`).
#[derive(Debug, Default)]
pub struct TsDb {
    series: HashMap<String, Series>,
    raw_capacity: usize,
    rollup_capacity: usize,
}

impl TsDb {
    /// Store with default retention: 100k raw points and 100k rollup
    /// buckets per series (≈2 s of 50 kS/s raw, a day of seconds, two
    /// months of minutes).
    pub fn new() -> Self {
        Self::with_capacity(100_000, 100_000)
    }

    /// Store with explicit per-series capacities.
    pub fn with_capacity(raw: usize, rollup: usize) -> Self {
        TsDb {
            series: HashMap::new(),
            raw_capacity: raw,
            rollup_capacity: rollup,
        }
    }

    fn series_mut(&mut self, key: &str) -> &mut Series {
        let raw_cap = self.raw_capacity;
        let roll_cap = self.rollup_capacity;
        self.series.entry(key.to_string()).or_insert_with(|| Series {
            raw: Ring::new(raw_cap),
            rollups: vec![Rollup::new(1.0, roll_cap), Rollup::new(60.0, roll_cap)],
            count: 0,
            last_t: f64::NEG_INFINITY,
        })
    }

    /// Append one observation (timestamps must be nondecreasing per
    /// series; out-of-order points are dropped, as in production TSDBs).
    pub fn append(&mut self, key: &str, t: f64, v: f64) {
        let s = self.series_mut(key);
        if t < s.last_t {
            return;
        }
        s.last_t = t;
        s.count += 1;
        let p = Point { t, v };
        s.raw.push(p);
        for r in &mut s.rollups {
            r.push(p);
        }
    }

    /// Append a whole frame of uniformly-spaced samples.
    pub fn append_frame(&mut self, key: &str, t0: f64, dt: f64, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.append(key, t0 + i as f64 * dt, v as f64);
        }
    }

    /// Flush rollup accumulators (call before querying rollups for data
    /// that has not crossed a bucket boundary yet).
    pub fn flush(&mut self) {
        for s in self.series.values_mut() {
            for r in &mut s.rollups {
                r.flush();
                // flush() clears the accumulator; reset bucket marker so
                // a subsequent point in the same bucket re-opens it.
                r.acc_bucket = i64::MIN;
            }
        }
    }

    /// Known series names, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut k: Vec<String> = self.series.keys().cloned().collect();
        k.sort();
        k
    }

    /// Total observations absorbed for a series.
    pub fn count(&self, key: &str) -> u64 {
        self.series.get(key).map_or(0, |s| s.count)
    }

    /// Range query at a resolution.
    pub fn query(&self, key: &str, res: Resolution, t0: f64, t1: f64) -> Vec<Point> {
        let s = match self.series.get(key) {
            Some(s) => s,
            None => return Vec::new(),
        };
        match res {
            Resolution::Raw => s.raw.range(t0, t1),
            Resolution::Second => s.rollups[0].ring.range(t0, t1),
            Resolution::Minute => s.rollups[1].ring.range(t0, t1),
        }
    }

    /// Mean of a series over a window at a resolution.
    pub fn mean(&self, key: &str, res: Resolution, t0: f64, t1: f64) -> Option<f64> {
        let pts = self.query(key, res, t0, t1);
        if pts.is_empty() {
            return None;
        }
        Some(pts.iter().map(|p| p.v).sum::<f64>() / pts.len() as f64)
    }

    /// Energy (rectangle rule over raw points' spacing) in a window —
    /// the accounting query.
    pub fn energy_j(&self, key: &str, t0: f64, t1: f64) -> f64 {
        let pts = self.query(key, Resolution::Raw, t0, t1);
        if pts.len() < 2 {
            return 0.0;
        }
        let mut acc = 0.0;
        for w in pts.windows(2) {
            acc += w[0].v * (w[1].t - w[0].t);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_raw_query() {
        let mut db = TsDb::new();
        for i in 0..100 {
            db.append("node00/power/node", i as f64 * 0.1, 1000.0 + i as f64);
        }
        assert_eq!(db.count("node00/power/node"), 100);
        let pts = db.query("node00/power/node", Resolution::Raw, 2.0, 4.0);
        assert_eq!(pts.len(), 20);
        assert_eq!(pts[0].t, 2.0);
        assert!(db.query("missing", Resolution::Raw, 0.0, 1e9).is_empty());
    }

    #[test]
    fn out_of_order_points_dropped() {
        let mut db = TsDb::new();
        db.append("s", 10.0, 1.0);
        db.append("s", 5.0, 2.0); // stale: dropped
        db.append("s", 11.0, 3.0);
        assert_eq!(db.count("s"), 2);
    }

    #[test]
    fn raw_ring_evicts_oldest() {
        let mut db = TsDb::with_capacity(10, 100);
        for i in 0..25 {
            db.append("s", i as f64, i as f64);
        }
        let pts = db.query("s", Resolution::Raw, 0.0, 100.0);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].t, 15.0, "oldest retained is t=15");
    }

    #[test]
    fn second_rollup_means() {
        let mut db = TsDb::new();
        // 10 samples per second for 5 s, value = second index.
        for i in 0..50 {
            let t = i as f64 * 0.1;
            db.append("s", t, t.floor());
        }
        db.flush();
        let pts = db.query("s", Resolution::Second, 0.0, 10.0);
        assert_eq!(pts.len(), 5);
        for (k, p) in pts.iter().enumerate() {
            assert!((p.v - k as f64).abs() < 1e-9, "bucket {k}: {}", p.v);
            assert!((p.t - (k as f64 + 0.5)).abs() < 1e-9);
        }
    }

    #[test]
    fn minute_rollup_spans_seconds() {
        let mut db = TsDb::new();
        for i in 0..180 {
            db.append("s", i as f64, if i < 60 { 100.0 } else { 200.0 });
        }
        db.flush();
        let pts = db.query("s", Resolution::Minute, 0.0, 1e9);
        assert_eq!(pts.len(), 3);
        assert!((pts[0].v - 100.0).abs() < 1e-9);
        assert!((pts[1].v - 200.0).abs() < 1e-9);
    }

    #[test]
    fn energy_query_matches_constant_power() {
        let mut db = TsDb::new();
        for i in 0..=100 {
            db.append("s", i as f64 * 0.01, 1500.0);
        }
        let e = db.energy_j("s", 0.0, 2.0);
        assert!((e - 1500.0).abs() < 16.0, "≈1500 J over 1 s: {e}");
    }

    #[test]
    fn frame_ingest_from_gateway() {
        use crate::gateway::SampleFrame;
        let mut db = TsDb::new();
        let frame = SampleFrame {
            t0_s: 100.0,
            dt_s: 2e-5,
            watts: vec![1700.0; 500],
        };
        db.append_frame("node03/power/node", frame.t0_s, frame.dt_s, &frame.watts);
        assert_eq!(db.count("node03/power/node"), 500);
        let mean = db
            .mean("node03/power/node", Resolution::Raw, 100.0, 100.01)
            .unwrap();
        assert!((mean - 1700.0).abs() < 1e-9);
    }

    #[test]
    fn keys_sorted() {
        let mut db = TsDb::new();
        db.append("b", 0.0, 1.0);
        db.append("a", 0.0, 1.0);
        assert_eq!(db.keys(), vec!["a".to_string(), "b".to_string()]);
    }
}
