//! Telemetry time-series store.
//!
//! Fig. 4: monitoring information "is recorded into a database, and
//! computed by the management node for the training of job-to-power
//! predictors". This is that database, RRD-style: per-series ring
//! buffers at multiple rollup resolutions (raw, 1 s, 1 min means) with
//! range and downsampling queries — enough to hold months of per-node
//! power history in bounded memory.
//!
//! ## Ingest hot path
//!
//! The store is built for frame-granular ingest at EG rates (45 nodes ×
//! 8 channels × 50 kS/s after decimation):
//!
//! * **Interned series handles.** [`TsDb::resolve`] interns a series
//!   name once and returns a copyable [`SeriesId`]; all appends and
//!   queries go through the `_id` methods, which never hash a string or
//!   allocate ([`TsDb::lookup`] maps a name to its id read-only).
//! * **Columnar rings.** Each series stores timestamps (`f64`) and
//!   values (`f32`) in separate ring buffers, halving raw-sample memory
//!   versus `(f64, f64)` pairs and making bulk copies cache-friendly.
//!   Rollup means stay `f64` and are accumulated from the original
//!   values, so rollup precision is unchanged.
//! * **Bulk frame append.** [`TsDb::append_frame_id`] ingests a whole
//!   uniformly-spaced frame: one monotonicity check, one reserve, bulk
//!   extend of both columns, and closed-form rollup bucketing (bucket
//!   boundaries are computed from `t0`/`dt` arithmetic, so samples are
//!   accumulated in contiguous runs with no per-sample `floor`).
//! * **Binary-search range queries.** Timestamps are nondecreasing by
//!   construction (stale points are dropped), so [`TsDb::query_id`] finds
//!   window bounds with `partition_point` instead of scanning the ring.

use std::collections::{HashMap, VecDeque};
use std::io;

use crate::storage::tiered::TierEngine;
use crate::storage::{DiskTier, QueryCoverage, RangeQuery, TierStats, TieredScan, TieringConfig};

/// One (timestamp, value) observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Timestamp, seconds.
    pub t: f64,
    /// Value (watts for power series).
    pub v: f64,
}

/// Interned handle for a series name: resolve once with
/// [`TsDb::resolve`], then append and query without string hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeriesId(u32);

impl SeriesId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Stored sample value: `f32` for raw columns, `f64` for rollup means.
trait SampleValue: Copy {
    fn to_f64(self) -> f64;
}

impl SampleValue for f32 {
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
}

impl SampleValue for f64 {
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

/// A bounded columnar ring: timestamps and values in separate arrays.
#[derive(Debug, Clone)]
struct Ring<V> {
    ts: VecDeque<f64>,
    vs: VecDeque<V>,
    capacity: usize,
    /// Points overwritten by the ring before anything could seal them —
    /// lost history, surfaced through [`QueryCoverage::evicted`].
    evicted: u64,
}

impl<V: SampleValue> Ring<V> {
    fn new(capacity: usize, prealloc: usize) -> Self {
        let pre = capacity.min(prealloc);
        Ring {
            ts: VecDeque::with_capacity(pre),
            vs: VecDeque::with_capacity(pre),
            capacity,
            evicted: 0,
        }
    }

    #[inline]
    fn push(&mut self, t: f64, v: V) {
        if self.ts.len() == self.capacity {
            self.ts.pop_front();
            self.vs.pop_front();
            self.evicted += 1;
        }
        self.ts.push_back(t);
        self.vs.push_back(v);
    }

    /// Bulk-append a uniformly-spaced frame: evict in one step, then
    /// extend both columns (no per-sample capacity branch).
    fn extend_uniform(&mut self, t0: f64, dt: f64, vals: &[V]) {
        let n = vals.len();
        // If the frame alone exceeds capacity only its tail survives.
        let skip = n.saturating_sub(self.capacity);
        let kept = n - skip;
        let overflow = (self.ts.len() + kept).saturating_sub(self.capacity);
        self.evicted += (skip + overflow.min(self.ts.len())) as u64;
        if overflow >= self.ts.len() {
            self.ts.clear();
            self.vs.clear();
        } else if overflow > 0 {
            self.ts.drain(..overflow);
            self.vs.drain(..overflow);
        }
        self.ts.extend((skip..n).map(|i| t0 + i as f64 * dt));
        self.vs.extend(vals[skip..].iter().copied());
    }

    /// Half-open window `[t0, t1)` as deque index bounds, found by
    /// binary search (timestamps are nondecreasing by construction).
    #[inline]
    fn bounds(&self, t0: f64, t1: f64) -> (usize, usize) {
        let a = self.ts.partition_point(|&t| t < t0);
        let b = self.ts.partition_point(|&t| t < t1);
        (a, b.max(a))
    }

    fn range(&self, t0: f64, t1: f64) -> Vec<Point> {
        let (a, b) = self.bounds(t0, t1);
        self.ts
            .range(a..b)
            .zip(self.vs.range(a..b))
            .map(|(&t, &v)| Point { t, v: v.to_f64() })
            .collect()
    }
}

/// Rollup accumulator: averages raw points into fixed buckets.
#[derive(Debug, Clone)]
struct Rollup {
    bucket_s: f64,
    ring: Ring<f64>,
    acc_sum: f64,
    acc_n: u64,
    acc_bucket: i64,
}

impl Rollup {
    fn new(bucket_s: f64, capacity: usize, prealloc: usize) -> Self {
        Rollup {
            bucket_s,
            ring: Ring::new(capacity, prealloc),
            acc_sum: 0.0,
            acc_n: 0,
            acc_bucket: i64::MIN,
        }
    }

    #[inline]
    fn bucket_of(&self, t: f64) -> i64 {
        (t / self.bucket_s).floor() as i64
    }

    #[inline]
    fn push(&mut self, t: f64, v: f64) {
        let bucket = self.bucket_of(t);
        if bucket != self.acc_bucket {
            self.flush();
            self.acc_bucket = bucket;
        }
        self.acc_sum += v;
        self.acc_n += 1;
    }

    /// Bulk-accumulate a uniformly-spaced frame. Bucket boundaries are
    /// located in closed form from `(t0, dt)` — `ceil(((b+1)·B − t0)/dt)`
    /// gives the first index of the next bucket — so each bucket's
    /// samples are summed as one contiguous run without per-sample
    /// `floor` or branch. Matches the per-sample path exactly (a short
    /// adjustment loop absorbs any float rounding of the boundary).
    fn push_frame(&mut self, t0: f64, dt: f64, vals: &[f32]) {
        let n = vals.len();
        if n == 0 {
            return;
        }
        if dt <= 0.0 {
            // Degenerate spacing: fall back to per-sample accumulation.
            for (i, &v) in vals.iter().enumerate() {
                self.push(t0 + i as f64 * dt, v as f64);
            }
            return;
        }
        let mut start = 0usize;
        while start < n {
            let b = self.bucket_of(t0 + start as f64 * dt);
            if b != self.acc_bucket {
                self.flush();
                self.acc_bucket = b;
            }
            let boundary = (b + 1) as f64 * self.bucket_s;
            let mut end = (((boundary - t0) / dt).ceil().max(0.0) as usize).clamp(start + 1, n);
            // Float-rounding guards: converge to the exact per-sample
            // boundary (each loop runs at most a step or two).
            while end > start + 1 && self.bucket_of(t0 + (end - 1) as f64 * dt) != b {
                end -= 1;
            }
            while end < n && self.bucket_of(t0 + end as f64 * dt) == b {
                end += 1;
            }
            let mut sum = 0.0f64;
            for &v in &vals[start..end] {
                sum += v as f64;
            }
            self.acc_sum += sum;
            self.acc_n += (end - start) as u64;
            start = end;
        }
    }

    fn flush(&mut self) {
        if self.acc_n > 0 {
            self.ring.push(
                (self.acc_bucket as f64 + 0.5) * self.bucket_s,
                self.acc_sum / self.acc_n as f64,
            );
        }
        self.acc_sum = 0.0;
        self.acc_n = 0;
    }
}

/// One series: raw ring plus rollups.
#[derive(Debug, Clone)]
struct Series {
    raw: Ring<f32>,
    rollups: Vec<Rollup>,
    count: u64,
    last_t: f64,
}

impl Series {
    fn new(raw_cap: usize, roll_cap: usize, prealloc: usize) -> Self {
        Series {
            raw: Ring::new(raw_cap, prealloc),
            rollups: vec![
                Rollup::new(1.0, roll_cap, prealloc),
                Rollup::new(60.0, roll_cap, prealloc),
            ],
            count: 0,
            last_t: f64::NEG_INFINITY,
        }
    }
}

/// Query resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Raw samples (shortest retention).
    Raw,
    /// 1-second means.
    Second,
    /// 1-minute means.
    Minute,
}

/// Full store configuration: ring sizes (the PR 5 cache-tuning
/// constants, lifted out of the code) plus the optional tiering policy.
#[derive(Debug, Clone)]
pub struct TsDbConfig {
    /// Hot raw points retained per series.
    pub raw_capacity: usize,
    /// Rollup buckets retained per series per resolution.
    pub rollup_capacity: usize,
    /// Ring pre-allocation cap (was hardcoded to 4096 by PR 5's cache
    /// tuning): rings reserve `min(capacity, ring_prealloc)` up front.
    pub ring_prealloc: usize,
    /// Tiered-storage policy; `None` keeps the store hot-ring-only.
    pub tiering: Option<TieringConfig>,
}

impl Default for TsDbConfig {
    /// The PR 5 defaults: 100k raw points and 100k rollup buckets per
    /// series, 4096-slot pre-allocation, no tiering.
    fn default() -> Self {
        TsDbConfig {
            raw_capacity: 100_000,
            rollup_capacity: 100_000,
            ring_prealloc: 4096,
            tiering: None,
        }
    }
}

/// The store: keyed by series name (e.g. `node03/power/node`), with
/// interned [`SeriesId`] handles for the allocation-free hot path.
#[derive(Debug, Default)]
pub struct TsDb {
    ids: HashMap<String, SeriesId>,
    names: Vec<String>,
    series: Vec<Series>,
    cfg: TsDbConfig,
    tier: Option<TierEngine>,
}

impl TsDb {
    /// Store with default retention: 100k raw points and 100k rollup
    /// buckets per series (≈2 s of 50 kS/s raw, a day of seconds, two
    /// months of minutes).
    pub fn new() -> Self {
        Self::with_capacity(100_000, 100_000)
    }

    /// Store with explicit per-series capacities (no tiering).
    pub fn with_capacity(raw: usize, rollup: usize) -> Self {
        Self::with_config(TsDbConfig {
            raw_capacity: raw,
            rollup_capacity: rollup,
            tiering: None,
            ..TsDbConfig::default()
        })
        .expect("untiered construction is infallible")
    }

    /// Store from a full [`TsDbConfig`]. With a disk tier configured
    /// this opens the segment directory and **recovers** any history a
    /// previous process left there (series are re-interned by name), so
    /// the only fallible part is disk-tier I/O.
    pub fn with_config(cfg: TsDbConfig) -> io::Result<Self> {
        let mut db = TsDb {
            ids: HashMap::new(),
            names: Vec::new(),
            series: Vec::new(),
            cfg,
            tier: None,
        };
        if let Some(tcfg) = db.cfg.tiering.clone() {
            let mut engine = TierEngine::new(tcfg, db.cfg.raw_capacity);
            if let Some(dcfg) = engine.cfg.disk.clone() {
                let ids = &mut db.ids;
                let names = &mut db.names;
                let series = &mut db.series;
                let cfg = &db.cfg;
                let disk = DiskTier::open(&dcfg, |name| {
                    if let Some(id) = ids.get(name) {
                        return id.0;
                    }
                    let id = SeriesId(series.len() as u32);
                    ids.insert(name.to_string(), id);
                    names.push(name.to_string());
                    series.push(Series::new(
                        cfg.raw_capacity,
                        cfg.rollup_capacity,
                        cfg.ring_prealloc,
                    ));
                    id.0
                })?;
                engine.ensure_series(db.series.len());
                engine.disk = Some(disk);
            }
            db.tier = Some(engine);
        }
        Ok(db)
    }

    /// The configuration this store was built with.
    pub fn config(&self) -> &TsDbConfig {
        &self.cfg
    }

    /// Intern a series name, creating the series on first sight.
    /// Allocates only on that first miss; afterwards the returned id
    /// appends and queries with zero hashing or allocation.
    pub fn resolve(&mut self, key: &str) -> SeriesId {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = SeriesId(self.series.len() as u32);
        self.ids.insert(key.to_string(), id);
        self.names.push(key.to_string());
        self.series.push(Series::new(
            self.cfg.raw_capacity,
            self.cfg.rollup_capacity,
            self.cfg.ring_prealloc,
        ));
        id
    }

    /// Look up an already-interned series without creating it.
    pub fn lookup(&self, key: &str) -> Option<SeriesId> {
        self.ids.get(key).copied()
    }

    /// The name a [`SeriesId`] was interned under.
    pub fn name(&self, id: SeriesId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Append one observation by interned id (timestamps must be
    /// nondecreasing per series; out-of-order points are dropped, as in
    /// production TSDBs). Returns whether the point was stored, so lossy
    /// ingest paths can account for what a degraded link cost them.
    /// Allocation-free in steady state.
    #[inline]
    pub fn append_id(&mut self, id: SeriesId, t: f64, v: f64) -> bool {
        let s = &mut self.series[id.index()];
        if t < s.last_t {
            return false;
        }
        s.last_t = t;
        s.count += 1;
        s.raw.push(t, v as f32);
        for r in &mut s.rollups {
            r.push(t, v);
        }
        true
    }

    /// Bulk-append a whole frame of uniformly-spaced samples by
    /// interned id: one monotonicity check, one eviction step, bulk
    /// column extends, and closed-form rollup accumulation. Frames that
    /// start before the series tail (or run backwards) fall back to the
    /// per-sample path, which drops the stale points. Returns the number
    /// of samples actually stored (`values.len()` on the fast path), so
    /// callers can account for samples lost to reordering faults.
    pub fn append_frame_id(&mut self, id: SeriesId, t0: f64, dt: f64, values: &[f32]) -> usize {
        let n = values.len();
        if n == 0 {
            return 0;
        }
        let s = &mut self.series[id.index()];
        if t0 < s.last_t || dt < 0.0 {
            let mut stored = 0;
            for (i, &v) in values.iter().enumerate() {
                stored += usize::from(self.append_id(id, t0 + i as f64 * dt, v as f64));
            }
            return stored;
        }
        s.last_t = t0 + (n - 1) as f64 * dt;
        s.count += n as u64;
        s.raw.extend_uniform(t0, dt, values);
        for r in &mut s.rollups {
            r.push_frame(t0, dt, values);
        }
        n
    }

    /// Flush rollup accumulators (call before querying rollups for data
    /// that has not crossed a bucket boundary yet).
    pub fn flush(&mut self) {
        for s in &mut self.series {
            for r in &mut s.rollups {
                r.flush();
                // flush() clears the accumulator; reset bucket marker so
                // a subsequent point in the same bucket re-opens it.
                r.acc_bucket = i64::MIN;
            }
        }
    }

    /// Known series names, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut k = self.names.clone();
        k.sort();
        k
    }

    /// Total observations absorbed, by interned id.
    pub fn count_id(&self, id: SeriesId) -> u64 {
        self.series[id.index()].count
    }

    /// Latest raw observation of a series, if any — the staleness probe
    /// the control plane runs per node before trusting telemetry.
    pub fn last_id(&self, id: SeriesId) -> Option<Point> {
        let raw = &self.series[id.index()].raw;
        match (raw.ts.back(), raw.vs.back()) {
            (Some(&t), Some(&v)) => Some(Point { t, v: v.to_f64() }),
            _ => None,
        }
    }

    /// Run one seal/demote/budget pass over every series. This is the
    /// ONLY place points leave the hot rings for the compressed tiers —
    /// appends never compress — so drivers call it from drain/tick
    /// sites, outside the append path. A single branch when tiering is
    /// disabled (the zero-alloc ingest guard covers that path).
    /// Returns true if any points were sealed, demoted or evicted.
    pub fn compact(&mut self) -> bool {
        let Some(engine) = self.tier.as_mut() else {
            return false;
        };
        engine.ensure_series(self.series.len());
        let trigger = engine.seal_trigger();
        let k = engine.seal_len();
        let mut changed = false;
        for (i, s) in self.series.iter_mut().enumerate() {
            while s.raw.ts.len() >= trigger {
                // The ring is a deque (possibly wrapped); stage the
                // oldest run in the engine's reusable scratch slices.
                engine.scratch_ts.clear();
                engine.scratch_ts.extend(s.raw.ts.iter().take(k).copied());
                engine.scratch_vs.clear();
                engine.scratch_vs.extend(s.raw.vs.iter().take(k).copied());
                engine.commit_seal(i);
                s.raw.ts.drain(..k);
                s.raw.vs.drain(..k);
                changed = true;
            }
        }
        changed | engine.demote_over_budget(&self.names)
    }

    /// Iterator-based raw range scan over all three tiers, chronological
    /// (disk → compressed → hot). The single query path: every raw query
    /// below is built on it. Compressed blocks are decoded only when
    /// they overlap `[t0, t1)`, into a per-scan scratch that is lazily
    /// allocated (a purely-hot scan allocates nothing) and reused across
    /// blocks.
    pub fn scan_id(&self, id: SeriesId, t0: f64, t1: f64) -> TieredScan<'_> {
        let idx = id.index();
        let s = &self.series[idx];
        let (a, b) = s.raw.bounds(t0, t1);
        let (disk, mem) = match &self.tier {
            Some(e) => (e.disk_scan(idx, t0, t1), e.mem_scan(idx, t0)),
            None => (None, None),
        };
        TieredScan::new(
            t0,
            t1,
            disk,
            mem,
            s.raw.ts.range(a..b),
            s.raw.vs.range(a..b),
        )
    }

    /// Has this series lost history that a window starting at `t0`
    /// could have included?
    fn evicted_before(&self, idx: usize, t0: f64) -> bool {
        let s = &self.series[idx];
        let lost = s.raw.evicted + self.tier.as_ref().map_or(0, |e| e.lost_points(idx));
        if lost == 0 {
            return false;
        }
        let first_retained = self
            .tier
            .as_ref()
            .and_then(|e| e.first_retained_t(idx))
            .or_else(|| s.raw.ts.front().copied())
            .unwrap_or(f64::INFINITY);
        t0 < first_retained
    }

    /// Range query with provenance: the points plus a
    /// [`QueryCoverage`] telling the caller which tiers answered and
    /// whether the window reached past retained history (truncated vs
    /// complete — the E12 accounting distinction). Rollup resolutions
    /// are hot-ring only by design; their coverage reports `hot` counts
    /// and the rollup ring's own eviction state.
    pub fn query_range_id(&self, id: SeriesId, res: Resolution, t0: f64, t1: f64) -> RangeQuery {
        match res {
            Resolution::Raw => {
                let mut scan = self.scan_id(id, t0, t1);
                let points = scan.fold_points(Vec::new(), |mut points, t, v| {
                    points.push(Point { t, v });
                    points
                });
                let mut coverage = scan.coverage();
                coverage.evicted = self.evicted_before(id.index(), t0);
                RangeQuery { points, coverage }
            }
            Resolution::Second | Resolution::Minute => {
                let ring =
                    &self.series[id.index()].rollups[usize::from(res == Resolution::Minute)].ring;
                let points = ring.range(t0, t1);
                let coverage = QueryCoverage {
                    hot: points.len(),
                    evicted: ring.evicted > 0
                        && t0 < ring.ts.front().copied().unwrap_or(f64::INFINITY),
                    ..QueryCoverage::default()
                };
                RangeQuery { points, coverage }
            }
        }
    }

    /// Range query by interned id (points only; see
    /// [`TsDb::query_range_id`] for coverage).
    pub fn query_id(&self, id: SeriesId, res: Resolution, t0: f64, t1: f64) -> Vec<Point> {
        match res {
            Resolution::Raw => self.scan_id(id, t0, t1).collect(),
            Resolution::Second => self.series[id.index()].rollups[0].ring.range(t0, t1),
            Resolution::Minute => self.series[id.index()].rollups[1].ring.range(t0, t1),
        }
    }

    /// Mean of a series over a window at a resolution, by interned id.
    /// Raw means fold the tiered scan in chronological order — the same
    /// sequential f64 accumulation as the hot-only path, so results are
    /// bit-identical whether or not the window spans compressed tiers.
    pub fn mean_id(&self, id: SeriesId, res: Resolution, t0: f64, t1: f64) -> Option<f64> {
        self.mean_id_with_coverage(id, res, t0, t1).0
    }

    /// [`TsDb::mean_id`] plus the provenance of the points that made
    /// the mean, so accounting callers can flag truncated windows.
    pub fn mean_id_with_coverage(
        &self,
        id: SeriesId,
        res: Resolution,
        t0: f64,
        t1: f64,
    ) -> (Option<f64>, QueryCoverage) {
        match res {
            Resolution::Raw => {
                let mut scan = self.scan_id(id, t0, t1);
                let (sum, n) =
                    scan.fold_points((0.0f64, 0usize), |(sum, n), _t, v| (sum + v, n + 1));
                let mut coverage = scan.coverage();
                coverage.evicted = self.evicted_before(id.index(), t0);
                let mean = if n == 0 { None } else { Some(sum / n as f64) };
                (mean, coverage)
            }
            Resolution::Second | Resolution::Minute => {
                let ring =
                    &self.series[id.index()].rollups[usize::from(res == Resolution::Minute)].ring;
                let (a, b) = ring.bounds(t0, t1);
                let n = b - a;
                let coverage = QueryCoverage {
                    hot: n,
                    evicted: ring.evicted > 0
                        && t0 < ring.ts.front().copied().unwrap_or(f64::INFINITY),
                    ..QueryCoverage::default()
                };
                let mean = if n == 0 {
                    None
                } else {
                    Some(ring.vs.range(a..b).sum::<f64>() / n as f64)
                };
                (mean, coverage)
            }
        }
    }

    /// Energy (rectangle rule over raw points' spacing) in a window by
    /// interned id — the accounting query, folded over the tiered scan
    /// in chronological order (bit-identical to the hot-only fold).
    /// Windows with fewer than two raw points integrate to 0.
    pub fn energy_j_id(&self, id: SeriesId, t0: f64, t1: f64) -> f64 {
        self.energy_j_id_with_coverage(id, t0, t1).0
    }

    /// [`TsDb::energy_j_id`] plus the provenance of the integrated
    /// points, so accounting callers can tell a true zero from a window
    /// whose history was evicted before it could be billed.
    pub fn energy_j_id_with_coverage(
        &self,
        id: SeriesId,
        t0: f64,
        t1: f64,
    ) -> (f64, QueryCoverage) {
        let mut scan = self.scan_id(id, t0, t1);
        let (acc, _) = scan.fold_points(
            (0.0f64, None::<(f64, f64)>),
            |(acc, prev), t, v| match prev {
                Some((pt, pv)) => (acc + pv * (t - pt), Some((t, v))),
                None => (acc, Some((t, v))),
            },
        );
        let mut coverage = scan.coverage();
        coverage.evicted = self.evicted_before(id.index(), t0);
        (acc, coverage)
    }

    /// Point-in-time tier occupancy across every series (hot ring
    /// counts always; compressed/disk fields populated when tiering is
    /// enabled).
    pub fn tier_stats(&self) -> TierStats {
        let mut st = self
            .tier
            .as_ref()
            .map_or_else(TierStats::default, |e| e.stats());
        for s in &self.series {
            st.hot_points += s.raw.ts.len() as u64;
            st.evicted_points += s.raw.evicted;
        }
        st.hot_bytes = st.hot_points * 12;
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test-local string-keyed conveniences over the id-keyed API.
    fn append(db: &mut TsDb, key: &str, t: f64, v: f64) {
        let id = db.resolve(key);
        db.append_id(id, t, v);
    }
    fn append_frame(db: &mut TsDb, key: &str, t0: f64, dt: f64, values: &[f32]) {
        let id = db.resolve(key);
        db.append_frame_id(id, t0, dt, values);
    }
    fn count(db: &TsDb, key: &str) -> u64 {
        db.lookup(key).map_or(0, |id| db.count_id(id))
    }
    fn query(db: &TsDb, key: &str, res: Resolution, t0: f64, t1: f64) -> Vec<Point> {
        db.lookup(key)
            .map_or_else(Vec::new, |id| db.query_id(id, res, t0, t1))
    }
    fn mean(db: &TsDb, key: &str, res: Resolution, t0: f64, t1: f64) -> Option<f64> {
        db.mean_id(db.lookup(key)?, res, t0, t1)
    }
    fn energy_j(db: &TsDb, key: &str, t0: f64, t1: f64) -> f64 {
        db.lookup(key).map_or(0.0, |id| db.energy_j_id(id, t0, t1))
    }

    #[test]
    fn append_and_raw_query() {
        let mut db = TsDb::new();
        for i in 0..100 {
            append(
                &mut db,
                "node00/power/node",
                i as f64 * 0.1,
                1000.0 + i as f64,
            );
        }
        assert_eq!(count(&db, "node00/power/node"), 100);
        let pts = query(&db, "node00/power/node", Resolution::Raw, 2.0, 4.0);
        assert_eq!(pts.len(), 20);
        assert_eq!(pts[0].t, 2.0);
        assert!(query(&db, "missing", Resolution::Raw, 0.0, 1e9).is_empty());
    }

    #[test]
    fn out_of_order_points_dropped() {
        let mut db = TsDb::new();
        append(&mut db, "s", 10.0, 1.0);
        append(&mut db, "s", 5.0, 2.0); // stale: dropped
        append(&mut db, "s", 11.0, 3.0);
        assert_eq!(count(&db, "s"), 2);
    }

    #[test]
    fn raw_ring_evicts_oldest() {
        let mut db = TsDb::with_capacity(10, 100);
        for i in 0..25 {
            append(&mut db, "s", i as f64, i as f64);
        }
        let pts = query(&db, "s", Resolution::Raw, 0.0, 100.0);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].t, 15.0, "oldest retained is t=15");
    }

    #[test]
    fn second_rollup_means() {
        let mut db = TsDb::new();
        // 10 samples per second for 5 s, value = second index.
        for i in 0..50 {
            let t = i as f64 * 0.1;
            append(&mut db, "s", t, t.floor());
        }
        db.flush();
        let pts = query(&db, "s", Resolution::Second, 0.0, 10.0);
        assert_eq!(pts.len(), 5);
        for (k, p) in pts.iter().enumerate() {
            assert!((p.v - k as f64).abs() < 1e-9, "bucket {k}: {}", p.v);
            assert!((p.t - (k as f64 + 0.5)).abs() < 1e-9);
        }
    }

    #[test]
    fn minute_rollup_spans_seconds() {
        let mut db = TsDb::new();
        for i in 0..180 {
            append(&mut db, "s", i as f64, if i < 60 { 100.0 } else { 200.0 });
        }
        db.flush();
        let pts = query(&db, "s", Resolution::Minute, 0.0, 1e9);
        assert_eq!(pts.len(), 3);
        assert!((pts[0].v - 100.0).abs() < 1e-9);
        assert!((pts[1].v - 200.0).abs() < 1e-9);
    }

    #[test]
    fn energy_query_matches_constant_power() {
        let mut db = TsDb::new();
        for i in 0..=100 {
            append(&mut db, "s", i as f64 * 0.01, 1500.0);
        }
        let e = energy_j(&db, "s", 0.0, 2.0);
        assert!((e - 1500.0).abs() < 16.0, "≈1500 J over 1 s: {e}");
    }

    #[test]
    fn frame_ingest_from_gateway() {
        use crate::gateway::SampleFrame;
        let mut db = TsDb::new();
        let frame = SampleFrame {
            t0_s: 100.0,
            dt_s: 2e-5,
            watts: vec![1700.0; 500],
        };
        append_frame(
            &mut db,
            "node03/power/node",
            frame.t0_s,
            frame.dt_s,
            &frame.watts,
        );
        assert_eq!(count(&db, "node03/power/node"), 500);
        let m = mean(&db, "node03/power/node", Resolution::Raw, 100.0, 100.01).unwrap();
        assert!((m - 1700.0).abs() < 1e-9);
    }

    #[test]
    fn keys_sorted() {
        let mut db = TsDb::new();
        append(&mut db, "b", 0.0, 1.0);
        append(&mut db, "a", 0.0, 1.0);
        assert_eq!(db.keys(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn interned_id_matches_string_path() {
        let mut db = TsDb::new();
        let id = db.resolve("node01/power/cpu0");
        assert_eq!(db.resolve("node01/power/cpu0"), id, "stable on re-resolve");
        assert_eq!(db.lookup("node01/power/cpu0"), Some(id));
        assert_eq!(db.lookup("never-seen"), None);
        assert_eq!(db.name(id), Some("node01/power/cpu0"));
        db.append_id(id, 1.0, 500.0);
        append(&mut db, "node01/power/cpu0", 2.0, 700.0);
        assert_eq!(db.count_id(id), 2);
        let pts = db.query_id(id, Resolution::Raw, 0.0, 10.0);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].v, 700.0);
    }

    #[test]
    fn frame_fast_path_matches_per_sample() {
        // Awkward spacing: dt does not divide the bucket width, frames
        // straddle 1 s and 60 s boundaries mid-frame.
        let vals: Vec<f32> = (0..977)
            .map(|i| (i as f32 * 0.37).sin() * 900.0 + 1000.0)
            .collect();
        let (t0, dt) = (58.3, 0.013);

        let mut bulk = TsDb::new();
        append_frame(&mut bulk, "s", t0, dt, &vals);
        let mut scalar = TsDb::new();
        for (i, &v) in vals.iter().enumerate() {
            append(&mut scalar, "s", t0 + i as f64 * dt, v as f64);
        }
        bulk.flush();
        scalar.flush();

        assert_eq!(count(&bulk, "s"), count(&scalar, "s"));
        for res in [Resolution::Raw, Resolution::Second, Resolution::Minute] {
            let a = query(&bulk, "s", res, 0.0, 1e9);
            let b = query(&scalar, "s", res, 0.0, 1e9);
            assert_eq!(a.len(), b.len(), "{res:?} point counts");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.t, y.t, "{res:?} timestamps bit-identical");
                assert!((x.v - y.v).abs() < 1e-9, "{res:?}: {} vs {}", x.v, y.v);
            }
        }
    }

    #[test]
    fn stale_frame_falls_back_and_drops() {
        let mut db = TsDb::new();
        append(&mut db, "s", 10.0, 1.0);
        // Frame starting in the past: the first 5 samples (t < 10) are
        // stale and dropped, the rest land.
        append_frame(&mut db, "s", 5.0, 1.0, &[9.0; 8]);
        assert_eq!(count(&db, "s"), 1 + 3);
        let pts = query(&db, "s", Resolution::Raw, 0.0, 1e9);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[1].t, 10.0);
    }

    #[test]
    fn flush_then_same_bucket_reopens() {
        // flush() mid-bucket emits a partial mean; later points in the
        // SAME bucket re-open it and emit a second rollup point at the
        // same bucket midpoint. Both are retained, in arrival order.
        let mut db = TsDb::new();
        append(&mut db, "s", 0.1, 10.0);
        append(&mut db, "s", 0.2, 20.0);
        db.flush();
        append(&mut db, "s", 0.3, 40.0);
        append(&mut db, "s", 0.4, 60.0);
        db.flush();
        let pts = query(&db, "s", Resolution::Second, 0.0, 1.0);
        assert_eq!(pts.len(), 2, "two partial means for bucket 0");
        assert_eq!(pts[0].t, 0.5);
        assert_eq!(pts[1].t, 0.5);
        assert!((pts[0].v - 15.0).abs() < 1e-9);
        assert!((pts[1].v - 50.0).abs() < 1e-9);
        // Double flush with nothing accumulated adds nothing.
        db.flush();
        assert_eq!(query(&db, "s", Resolution::Second, 0.0, 1.0).len(), 2);
    }

    #[test]
    fn query_straddling_eviction_boundary() {
        let mut db = TsDb::with_capacity(8, 100);
        for i in 0..20 {
            append(&mut db, "s", i as f64, i as f64);
        }
        // Points 0..12 evicted; a window straddling the boundary only
        // returns the retained suffix.
        let pts = query(&db, "s", Resolution::Raw, 5.0, 15.0);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].t, 12.0);
        assert_eq!(pts[2].t, 14.0);
        // Window entirely inside the evicted region is empty.
        assert!(query(&db, "s", Resolution::Raw, 0.0, 12.0).is_empty());
        // Count still reflects everything absorbed.
        assert_eq!(count(&db, "s"), 20);
    }

    #[test]
    fn energy_single_point_window_is_zero() {
        let mut db = TsDb::new();
        append(&mut db, "s", 1.0, 1000.0);
        assert_eq!(energy_j(&db, "s", 0.0, 10.0), 0.0);
        append(&mut db, "s", 2.0, 1000.0);
        // Window clipping to one point also integrates to zero.
        assert_eq!(energy_j(&db, "s", 1.5, 10.0), 0.0);
        assert!((energy_j(&db, "s", 0.0, 10.0) - 1000.0).abs() < 1e-9);
        assert_eq!(energy_j(&db, "missing", 0.0, 10.0), 0.0);
    }

    #[test]
    fn id_queries_match_string_shims() {
        let mut db = TsDb::new();
        let id = db.resolve("s");
        for i in 0..=100 {
            db.append_id(id, i as f64 * 0.01, 1500.0);
        }
        assert_eq!(
            db.mean_id(id, Resolution::Raw, 0.0, 2.0),
            mean(&db, "s", Resolution::Raw, 0.0, 2.0)
        );
        assert_eq!(db.energy_j_id(id, 0.0, 2.0), energy_j(&db, "s", 0.0, 2.0));
        let last = db.last_id(id).unwrap();
        assert_eq!(last.t, 1.0);
        assert_eq!(last.v, 1500.0);
        let empty = db.resolve("empty");
        assert_eq!(db.last_id(empty), None);
    }

    #[test]
    fn frame_larger_than_capacity_keeps_tail() {
        let mut db = TsDb::with_capacity(16, 100);
        let vals: Vec<f32> = (0..100).map(|i| i as f32).collect();
        append_frame(&mut db, "s", 0.0, 1.0, &vals);
        let pts = query(&db, "s", Resolution::Raw, 0.0, 1e9);
        assert_eq!(pts.len(), 16);
        assert_eq!(pts[0].t, 84.0);
        assert_eq!(pts[15].v, 99.0);
        assert_eq!(count(&db, "s"), 100);
    }
}
