//! Power-sensor front-end models.
//!
//! Between the copper and the ADC sits an analog chain — shunt resistor or
//! Hall-effect element, amplifier, anti-alias RC — that contributes gain
//! error, offset, bandwidth limiting and noise. HDEEM uses Hall sensors on
//! each power line (§V-C); D.A.V.I.D.E. taps the low-noise OpenRack DC
//! backplane with shunts.

use davide_core::power::PowerTrace;
use davide_core::rng::Rng;

/// Sensing element technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorKind {
    /// Series shunt resistor + instrumentation amplifier.
    Shunt,
    /// Hall-effect current sensor (galvanically isolated, noisier).
    HallEffect,
}

/// An analog power-sensor channel.
#[derive(Debug, Clone)]
pub struct PowerSensor {
    /// Element type.
    pub kind: SensorKind,
    /// Multiplicative gain error (1.0 = perfect).
    pub gain: f64,
    /// Additive offset in watts.
    pub offset_w: f64,
    /// Input-referred RMS noise in watts.
    pub noise_rms_w: f64,
    /// −3 dB bandwidth of the analog chain in Hz.
    pub bandwidth_hz: f64,
}

impl PowerSensor {
    /// A calibrated shunt channel as used on the D.A.V.I.D.E. backplane:
    /// ±0.5 % gain, small offset, 100 kHz analog bandwidth, low noise
    /// (the rack-level PSU consolidation is what makes this possible).
    pub fn davide_shunt(rng: &mut Rng) -> Self {
        PowerSensor {
            kind: SensorKind::Shunt,
            gain: 1.0 + rng.normal(0.0, 0.005 / 3.0),
            offset_w: rng.normal(0.0, 0.5),
            noise_rms_w: 0.8,
            bandwidth_hz: 100_000.0,
        }
    }

    /// A Hall-effect channel (HDEEM-style): ±2 % gain, more offset and
    /// noise, 10 kHz bandwidth.
    pub fn hall_effect(rng: &mut Rng) -> Self {
        PowerSensor {
            kind: SensorKind::HallEffect,
            gain: 1.0 + rng.normal(0.0, 0.02 / 3.0),
            offset_w: rng.normal(0.0, 2.0),
            noise_rms_w: 3.0,
            bandwidth_hz: 10_000.0,
        }
    }

    /// An ideal sensor (for isolating downstream effects in tests).
    pub fn ideal() -> Self {
        PowerSensor {
            kind: SensorKind::Shunt,
            gain: 1.0,
            offset_w: 0.0,
            noise_rms_w: 0.0,
            bandwidth_hz: f64::INFINITY,
        }
    }

    /// Pass a ground-truth trace through the analog chain: first-order
    /// low-pass at `bandwidth_hz`, then gain/offset, then additive noise.
    pub fn acquire(&self, truth: &PowerTrace, rng: &mut Rng) -> PowerTrace {
        let mut out = Vec::with_capacity(truth.len());
        // One-pole IIR low-pass: y += α (x − y), α = dt/(τ+dt).
        let alpha = if self.bandwidth_hz.is_finite() {
            let tau = 1.0 / (2.0 * std::f64::consts::PI * self.bandwidth_hz);
            truth.dt / (tau + truth.dt)
        } else {
            1.0
        };
        let mut y = *truth.samples.first().unwrap_or(&0.0);
        for &x in &truth.samples {
            y += alpha * (x - y);
            let v = y * self.gain + self.offset_w + rng.normal(0.0, self.noise_rms_w);
            out.push(v);
        }
        PowerTrace::new(truth.t0, truth.dt, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::time::SimTime;

    fn dc_trace(w: f64, n: usize) -> PowerTrace {
        PowerTrace::new(SimTime::ZERO, 1e-5, vec![w; n])
    }

    #[test]
    fn ideal_sensor_is_transparent() {
        let mut rng = Rng::seed_from(1);
        let truth = dc_trace(1000.0, 1000);
        let got = PowerSensor::ideal().acquire(&truth, &mut rng);
        assert_eq!(got.samples, truth.samples);
    }

    #[test]
    fn gain_and_offset_shift_dc() {
        let mut rng = Rng::seed_from(2);
        let mut s = PowerSensor::ideal();
        s.gain = 1.01;
        s.offset_w = 5.0;
        let got = s.acquire(&dc_trace(1000.0, 10_000), &mut rng);
        assert!((got.mean().0 - 1015.0).abs() < 0.5, "mean={}", got.mean());
    }

    #[test]
    fn noise_statistics() {
        let mut rng = Rng::seed_from(3);
        let mut s = PowerSensor::ideal();
        s.noise_rms_w = 2.0;
        let got = s.acquire(&dc_trace(500.0, 50_000), &mut rng);
        let rmse = got.rmse(&dc_trace(500.0, 50_000));
        assert!((rmse - 2.0).abs() < 0.1, "rmse={rmse}");
    }

    #[test]
    fn bandwidth_attenuates_fast_tones() {
        let mut rng = Rng::seed_from(4);
        let mut s = PowerSensor::ideal();
        s.bandwidth_hz = 1_000.0;
        // A 10 kHz tone, well above the 1 kHz pole: ~20 dB attenuation.
        let rate = 1.0e6;
        let tone = PowerTrace::from_fn(SimTime::ZERO, 1.0 / rate, 100_000, |t| {
            1000.0 + 100.0 * (2.0 * std::f64::consts::PI * 10_000.0 * t).sin()
        });
        let got = s.acquire(&tone, &mut rng);
        let truth_swing = tone.max().0 - tone.min().0;
        let got_swing = got.max().0 - got.min().0;
        assert!(
            got_swing < truth_swing * 0.25,
            "swing {got_swing} vs {truth_swing}"
        );
        // DC preserved.
        assert!((got.mean().0 - tone.mean().0).abs() < 2.0);
    }

    #[test]
    fn davide_shunt_beats_hall_effect() {
        let mut rng = Rng::seed_from(5);
        let shunt = PowerSensor::davide_shunt(&mut rng.fork());
        let hall = PowerSensor::hall_effect(&mut rng.fork());
        assert!(shunt.noise_rms_w < hall.noise_rms_w);
        assert!(shunt.bandwidth_hz > hall.bandwidth_hz);
        // Calibration spread: shunt gain within ±1 %.
        assert!((shunt.gain - 1.0).abs() < 0.01);
    }

    #[test]
    fn sensor_variation_is_seeded() {
        let a = PowerSensor::davide_shunt(&mut Rng::seed_from(7));
        let b = PowerSensor::davide_shunt(&mut Rng::seed_from(7));
        assert_eq!(a.gain, b.gain);
        assert_eq!(a.offset_w, b.offset_w);
    }
}
