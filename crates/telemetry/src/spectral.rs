//! Spectral analysis of power traces.
//!
//! The smart profilers of §III-A1 "run data intelligence on the
//! monitored data to identify sources of not-optimality and hazards" —
//! in practice: look at the spectrum. Iteration frequencies, VRM ripple
//! and phase-switching harmonics all show up as lines in the PSD of the
//! 50 kS/s gateway stream. (The FFT kernel is shared with the
//! application proxies in `davide-apps`.)

use davide_apps::fft::fft_inplace;
use davide_apps::C64;
use davide_core::power::PowerTrace;

/// A one-sided power spectral density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Frequency-bin spacing, Hz.
    pub df: f64,
    /// One-sided PSD values (bin `k` is frequency `k·df`), in W²/Hz.
    pub psd: Vec<f64>,
}

impl Spectrum {
    /// Number of bins.
    pub fn len(&self) -> usize {
        self.psd.len()
    }

    /// True when the spectrum is empty.
    pub fn is_empty(&self) -> bool {
        self.psd.is_empty()
    }

    /// Frequency of bin `k`.
    pub fn freq_of(&self, k: usize) -> f64 {
        k as f64 * self.df
    }

    /// The non-DC bin with the most power, as `(frequency, psd)`.
    pub fn dominant(&self) -> Option<(f64, f64)> {
        let (k, &v) = self
            .psd
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.total_cmp(b.1))?;
        Some((self.freq_of(k), v))
    }

    /// Total in-band power (integral of the PSD) over `[f_lo, f_hi]`.
    pub fn band_power(&self, f_lo: f64, f_hi: f64) -> f64 {
        self.psd
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = self.freq_of(*k);
                f >= f_lo && f <= f_hi
            })
            .map(|(_, &v)| v * self.df)
            .sum()
    }
}

fn hann(n: usize, i: usize) -> f64 {
    0.5 * (1.0 - (2.0 * std::f64::consts::PI * i as f64 / (n - 1) as f64).cos())
}

/// Periodogram of one (detrended, Hann-windowed, zero-padded) segment.
fn periodogram(samples: &[f64], rate: f64) -> Spectrum {
    let n = samples.len();
    assert!(n >= 4, "need at least 4 samples");
    let mean = samples.iter().sum::<f64>() / n as f64;
    let nfft = n.next_power_of_two();
    let mut buf = vec![C64::ZERO; nfft];
    let mut wss = 0.0; // window sum of squares for PSD normalisation
    for (i, &x) in samples.iter().enumerate() {
        let w = hann(n, i);
        wss += w * w;
        buf[i] = C64::real((x - mean) * w);
    }
    fft_inplace(&mut buf, false);
    let scale = 1.0 / (rate * wss);
    let half = nfft / 2;
    let mut psd = Vec::with_capacity(half + 1);
    for (k, z) in buf.iter().take(half + 1).enumerate() {
        // One-sided: double everything except DC and Nyquist.
        let factor = if k == 0 || k == half { 1.0 } else { 2.0 };
        psd.push(z.norm_sqr() * scale * factor);
    }
    Spectrum {
        df: rate / nfft as f64,
        psd,
    }
}

/// Welch PSD: average periodograms over 50 %-overlapping segments of
/// `segment_len` samples. The standard low-variance estimator a
/// profiler would apply to gateway streams.
pub fn welch_psd(trace: &PowerTrace, segment_len: usize) -> Spectrum {
    assert!(segment_len >= 8, "segment too short");
    assert!(trace.len() >= segment_len, "trace shorter than one segment");
    let rate = trace.sample_rate();
    let hop = segment_len / 2;
    let mut acc: Option<Spectrum> = None;
    let mut count = 0.0;
    let mut start = 0;
    while start + segment_len <= trace.len() {
        let seg = periodogram(&trace.samples[start..start + segment_len], rate);
        match &mut acc {
            None => acc = Some(seg),
            Some(a) => {
                for (x, y) in a.psd.iter_mut().zip(&seg.psd) {
                    *x += y;
                }
            }
        }
        count += 1.0;
        start += hop;
    }
    let mut spec = acc.expect("at least one segment");
    for v in &mut spec.psd {
        *v /= count;
    }
    spec
}

/// Spectrogram: sequence of `(t_center_s, Spectrum)` over consecutive
/// windows — how the profiler sees application phases change spectra.
pub fn spectrogram(trace: &PowerTrace, window: usize) -> Vec<(f64, Spectrum)> {
    assert!(window >= 8);
    let rate = trace.sample_rate();
    let mut out = Vec::new();
    let mut start = 0;
    while start + window <= trace.len() {
        let spec = periodogram(&trace.samples[start..start + window], rate);
        let t_center = trace.time_of(start) + 0.5 * window as f64 / rate;
        out.push((t_center, spec));
        start += window;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::time::SimTime;

    fn tone_trace(rate: f64, n: usize, f: f64, amp: f64) -> PowerTrace {
        PowerTrace::from_fn(SimTime::ZERO, 1.0 / rate, n, |t| {
            1000.0 + amp * (2.0 * std::f64::consts::PI * f * t).sin()
        })
    }

    #[test]
    fn dominant_frequency_found() {
        let tr = tone_trace(50_000.0, 16_384, 440.0, 80.0);
        let spec = welch_psd(&tr, 4096);
        let (f, _) = spec.dominant().unwrap();
        assert!((f - 440.0).abs() < spec.df * 2.0, "found {f} Hz");
    }

    #[test]
    fn band_power_matches_tone_variance() {
        // A sine of amplitude A has variance A²/2 = 3200 W².
        let tr = tone_trace(50_000.0, 32_768, 1000.0, 80.0);
        let spec = welch_psd(&tr, 8192);
        let band = spec.band_power(900.0, 1100.0);
        assert!(
            (band - 3200.0).abs() / 3200.0 < 0.1,
            "band power {band} vs 3200"
        );
        // Out-of-band has almost nothing.
        let quiet = spec.band_power(5_000.0, 10_000.0);
        assert!(quiet < band * 1e-3, "quiet={quiet}");
    }

    #[test]
    fn psd_scales_with_amplitude_squared() {
        let a = welch_psd(&tone_trace(50_000.0, 16_384, 700.0, 40.0), 4096);
        let b = welch_psd(&tone_trace(50_000.0, 16_384, 700.0, 80.0), 4096);
        let pa = a.band_power(600.0, 800.0);
        let pb = b.band_power(600.0, 800.0);
        assert!((pb / pa - 4.0).abs() < 0.2, "ratio {}", pb / pa);
    }

    #[test]
    fn spectrogram_tracks_phase_change() {
        // First half 500 Hz, second half 5 kHz.
        let rate = 50_000.0;
        let n = 32_768;
        let tr = PowerTrace::from_fn(SimTime::ZERO, 1.0 / rate, n, |t| {
            let f = if t < n as f64 / rate / 2.0 {
                500.0
            } else {
                5_000.0
            };
            1000.0 + 100.0 * (2.0 * std::f64::consts::PI * f * t).sin()
        });
        let frames = spectrogram(&tr, 4096);
        assert!(frames.len() >= 6);
        let (_, first) = &frames[0];
        let (_, last) = frames.last().unwrap();
        let (f0, _) = first.dominant().unwrap();
        let (f1, _) = last.dominant().unwrap();
        assert!((f0 - 500.0).abs() < 50.0, "first window at {f0}");
        assert!((f1 - 5_000.0).abs() < 100.0, "last window at {f1}");
    }

    #[test]
    fn welch_reduces_variance_vs_single_periodogram() {
        use davide_core::rng::Rng;
        let mut rng = Rng::seed_from(9);
        let n = 32_768;
        let tr = PowerTrace::new(
            SimTime::ZERO,
            1.0 / 50_000.0,
            (0..n).map(|_| 1000.0 + rng.normal(0.0, 10.0)).collect(),
        );
        let single = periodogram(&tr.samples, 50_000.0);
        let welch = welch_psd(&tr, 2048);
        // White-noise PSD should be flat; compare relative spread.
        let spread = |s: &Spectrum| {
            let m = s.psd.iter().sum::<f64>() / s.len() as f64;
            let v = s.psd.iter().map(|x| (x - m).powi(2)).sum::<f64>() / s.len() as f64;
            v.sqrt() / m
        };
        assert!(
            spread(&welch) < spread(&single) / 2.0,
            "welch {} vs single {}",
            spread(&welch),
            spread(&single)
        );
    }

    #[test]
    #[should_panic(expected = "shorter than one segment")]
    fn welch_rejects_short_traces() {
        let tr = tone_trace(50_000.0, 100, 440.0, 10.0);
        welch_psd(&tr, 4096);
    }
}
