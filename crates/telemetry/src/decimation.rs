//! Sample-rate decimation: 800 kS/s → 50 kS/s in "hardware".
//!
//! §III-A1: the gateway exploits the AM335x ADC's averaging support to
//! sample at 800 kS/s and decimate to 50 kS/s in hardware. Averaging
//! before the rate reduction is what removes the aliasing that plagues
//! instantaneous-sampling monitors (IPMI). Three decimators are provided
//! for the E4 ablation: the boxcar (what the BBB hardware does), a
//! windowed-sinc FIR (the textbook anti-alias filter) and a plain
//! pick-every-Nth subsampler (the strawman).

use davide_core::power::PowerTrace;

/// Decimate by integer factor `m` using boxcar averaging — each output
/// sample is the mean of `m` consecutive inputs. DC gain is exactly 1.
///
/// **Tail contract:** when `input.len()` is not a multiple of `m`, the
/// final `input.len() % m` samples (up to `m − 1`) do not fill a whole
/// window and are **silently dropped** — the output covers exactly
/// `(input.len() / m) · m` inputs. Use [`boxcar_remainder`] to size the
/// dropped tail, or the streaming [`Decimator`], which holds the
/// partial window across calls ([`Decimator::pending`]) instead of
/// discarding it.
pub fn boxcar_decimate(input: &PowerTrace, m: usize) -> PowerTrace {
    assert!(m >= 1, "decimation factor must be ≥ 1");
    let n_out = input.len() / m;
    let inv = 1.0 / m as f64;
    let samples: Vec<f64> = (0..n_out)
        .map(|i| input.samples[i * m..(i + 1) * m].iter().sum::<f64>() * inv)
        .collect();
    PowerTrace::new(input.t0, input.dt * m as f64, samples)
}

/// Tail samples [`boxcar_decimate`] drops for a given input length and
/// decimation factor (the last partial window, `input_len % m`).
pub fn boxcar_remainder(input_len: usize, m: usize) -> usize {
    assert!(m >= 1, "decimation factor must be ≥ 1");
    input_len % m
}

/// Decimate by picking every `m`-th sample with no filtering — aliases.
pub fn pick_decimate(input: &PowerTrace, m: usize) -> PowerTrace {
    assert!(m >= 1);
    let samples: Vec<f64> = input.samples.iter().step_by(m).copied().collect();
    PowerTrace::new(input.t0, input.dt * m as f64, samples)
}

/// Design a low-pass windowed-sinc (Blackman) FIR with `taps` taps and
/// normalised cutoff `fc` (fraction of the input sample rate, 0 < fc < 0.5).
pub fn design_lowpass_fir(taps: usize, fc: f64) -> Vec<f64> {
    assert!(taps >= 3 && taps % 2 == 1, "need an odd tap count ≥ 3");
    assert!(fc > 0.0 && fc < 0.5, "cutoff must be in (0, 0.5)");
    let mid = (taps / 2) as f64;
    let mut h: Vec<f64> = (0..taps)
        .map(|i| {
            let x = i as f64 - mid;
            let sinc = if x == 0.0 {
                2.0 * fc
            } else {
                (2.0 * std::f64::consts::PI * fc * x).sin() / (std::f64::consts::PI * x)
            };
            // Blackman window.
            let w = 0.42 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / (taps - 1) as f64).cos()
                + 0.08 * (4.0 * std::f64::consts::PI * i as f64 / (taps - 1) as f64).cos();
            sinc * w
        })
        .collect();
    // Normalise to unity DC gain.
    let sum: f64 = h.iter().sum();
    for v in &mut h {
        *v /= sum;
    }
    h
}

/// Convolve-and-decimate: apply FIR `h` and keep every `m`-th output.
/// Edge samples use the available partial window (renormalised), so the
/// output has no startup transient bias.
pub fn fir_decimate(input: &PowerTrace, h: &[f64], m: usize) -> PowerTrace {
    assert!(m >= 1);
    let half = h.len() / 2;
    let n = input.len();
    let n_out = n / m;
    let samples: Vec<f64> = (0..n_out)
        .map(|oi| {
            let center = oi * m;
            let mut acc = 0.0;
            let mut wsum = 0.0;
            for (k, &hk) in h.iter().enumerate() {
                let idx = center as isize + k as isize - half as isize;
                if idx >= 0 && (idx as usize) < n {
                    acc += hk * input.samples[idx as usize];
                    wsum += hk;
                }
            }
            if wsum.abs() > 1e-12 {
                acc / wsum
            } else {
                acc
            }
        })
        .collect();
    PowerTrace::new(input.t0, input.dt * m as f64, samples)
}

/// Measure the amplitude of a single tone at `freq` Hz in a trace using
/// the Goertzel algorithm (returns the peak amplitude of the sinusoid).
pub fn tone_amplitude(trace: &PowerTrace, freq: f64) -> f64 {
    let n = trace.len();
    if n == 0 {
        return 0.0;
    }
    let w = 2.0 * std::f64::consts::PI * freq * trace.dt;
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0, 0.0);
    for &x in &trace.samples {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    let real = s1 - s2 * w.cos();
    let imag = s2 * w.sin();
    2.0 * (real * real + imag * imag).sqrt() / n as f64
}

/// The D.A.V.I.D.E. gateway decimation: 800 kS/s → 50 kS/s (factor 16)
/// boxcar, as the AM335x hardware averaging performs.
pub fn gateway_decimate(input: &PowerTrace) -> PowerTrace {
    assert!(
        (input.sample_rate() - 800_000.0).abs() < 1.0,
        "gateway decimation expects an 800 kS/s input"
    );
    boxcar_decimate(input, 16)
}

/// Streaming boxcar state: a running window sum, no stored samples.
#[derive(Debug, Clone)]
pub struct StreamingBoxcar {
    m: usize,
    inv: f64,
    acc: f64,
    filled: usize,
}

impl StreamingBoxcar {
    fn new(m: usize) -> Self {
        assert!(m >= 1, "decimation factor must be ≥ 1");
        StreamingBoxcar {
            m,
            inv: 1.0 / m as f64,
            acc: 0.0,
            filled: 0,
        }
    }

    fn push(&mut self, xs: &[f64], out: &mut Vec<f64>) {
        for &x in xs {
            self.acc += x;
            self.filled += 1;
            if self.filled == self.m {
                out.push(self.acc * self.inv);
                self.acc = 0.0;
                self.filled = 0;
            }
        }
    }
}

/// Streaming FIR-decimate state: a bounded ring of the most recent
/// inputs (≤ `taps + m` samples), O(taps) work per emitted output.
#[derive(Debug, Clone)]
pub struct StreamingFir {
    h: Vec<f64>,
    m: usize,
    half: usize,
    buf: std::collections::VecDeque<f64>,
    /// Absolute input index of `buf[0]`.
    base: usize,
    n_in: usize,
    emitted: usize,
}

impl StreamingFir {
    fn new(h: Vec<f64>, m: usize) -> Self {
        assert!(m >= 1, "decimation factor must be ≥ 1");
        assert!(!h.is_empty(), "FIR needs at least one tap");
        let half = h.len() / 2;
        let cap = h.len() + m;
        StreamingFir {
            h,
            m,
            half,
            buf: std::collections::VecDeque::with_capacity(cap),
            base: 0,
            n_in: 0,
            emitted: 0,
        }
    }

    fn push(&mut self, xs: &[f64], out: &mut Vec<f64>) {
        for &x in xs {
            self.buf.push_back(x);
            self.n_in += 1;
            // Emit once the output's full forward half-window is in.
            while self.emitted * self.m + self.half < self.n_in {
                self.emit(out);
            }
        }
    }

    /// Compute the output centred at `emitted · m` from the ring,
    /// renormalising over the taps that have samples (identical edge
    /// handling to [`fir_decimate`]), then evict what the next output
    /// can no longer need.
    fn emit(&mut self, out: &mut Vec<f64>) {
        let c = (self.emitted * self.m) as isize;
        let mut acc = 0.0;
        let mut wsum = 0.0;
        for (k, &hk) in self.h.iter().enumerate() {
            let idx = c + k as isize - self.half as isize;
            if idx >= 0 && (idx as usize) < self.n_in {
                acc += hk * self.buf[idx as usize - self.base];
                wsum += hk;
            }
        }
        out.push(if wsum.abs() > 1e-12 { acc / wsum } else { acc });
        self.emitted += 1;
        let need = (self.emitted * self.m).saturating_sub(self.half);
        while self.base < need {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// Emit the outputs whose forward window is cut short by the end of
    /// the stream, matching the batch path's edge renormalisation.
    fn finish(&mut self, out: &mut Vec<f64>) {
        while self.emitted < self.n_in / self.m {
            self.emit(out);
        }
    }
}

/// A streaming decimator: feed input chunks of any size, collect
/// decimated output incrementally. Over a complete stream the
/// concatenated output is **bit-identical** to the corresponding batch
/// function ([`boxcar_decimate`] / [`fir_decimate`]) applied to the
/// concatenated input — the partial tail window is *held* across calls
/// (see [`Decimator::pending`]) rather than silently dropped, so the
/// monitor chain can run continuously without frame-boundary loss.
///
/// Outputs are appended to a caller-owned `Vec`, so the steady state
/// performs no per-call allocation; internal state is a running sum
/// (boxcar) or a bounded ring of `taps + m` samples (FIR) with O(taps)
/// work per output.
#[derive(Debug, Clone)]
pub enum Decimator {
    /// Hardware-averaging decimator (what the BBB does).
    Boxcar(StreamingBoxcar),
    /// Windowed-sinc anti-alias decimator.
    Fir(StreamingFir),
}

impl Decimator {
    /// Streaming boxcar by factor `m`.
    pub fn boxcar(m: usize) -> Self {
        Decimator::Boxcar(StreamingBoxcar::new(m))
    }

    /// Streaming FIR decimator with taps `h` by factor `m`.
    pub fn fir(h: Vec<f64>, m: usize) -> Self {
        Decimator::Fir(StreamingFir::new(h, m))
    }

    /// Decimation factor.
    pub fn factor(&self) -> usize {
        match self {
            Decimator::Boxcar(s) => s.m,
            Decimator::Fir(s) => s.m,
        }
    }

    /// Absorb an input chunk, appending any completed outputs to `out`.
    pub fn push(&mut self, xs: &[f64], out: &mut Vec<f64>) {
        match self {
            Decimator::Boxcar(s) => s.push(xs, out),
            Decimator::Fir(s) => s.push(xs, out),
        }
    }

    /// Input samples held in the current partial output window — the
    /// count the equivalent batch call would have dropped from the tail
    /// if the stream ended now.
    pub fn pending(&self) -> usize {
        match self {
            Decimator::Boxcar(s) => s.filled,
            Decimator::Fir(s) => s.n_in % s.m,
        }
    }

    /// End of stream: emit outputs that were waiting on future samples
    /// (FIR edge windows; a no-op for boxcar, whose partial tail is
    /// dropped exactly as the batch function drops it).
    pub fn finish(&mut self, out: &mut Vec<f64>) {
        match self {
            Decimator::Boxcar(_) => {}
            Decimator::Fir(s) => s.finish(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_core::time::SimTime;

    fn tone(rate: f64, n: usize, dc: f64, f: f64, a: f64) -> PowerTrace {
        PowerTrace::from_fn(SimTime::ZERO, 1.0 / rate, n, |t| {
            dc + a * (2.0 * std::f64::consts::PI * f * t).sin()
        })
    }

    #[test]
    fn boxcar_preserves_dc_exactly() {
        let tr = PowerTrace::new(SimTime::ZERO, 1e-6, vec![1234.5; 1600]);
        let out = boxcar_decimate(&tr, 16);
        assert_eq!(out.len(), 100);
        for &s in &out.samples {
            assert!((s - 1234.5).abs() < 1e-9);
        }
    }

    #[test]
    fn boxcar_is_linear() {
        let a = tone(800e3, 8000, 100.0, 1000.0, 10.0);
        let b = tone(800e3, 8000, 50.0, 3000.0, 5.0);
        let sum = a.add(&b);
        let lhs = boxcar_decimate(&sum, 16);
        let rhs = boxcar_decimate(&a, 16).add(&boxcar_decimate(&b, 16));
        for (x, y) in lhs.samples.iter().zip(&rhs.samples) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn gateway_decimation_is_16x() {
        let tr = tone(800e3, 80_000, 1700.0, 500.0, 100.0);
        let out = gateway_decimate(&tr);
        assert!((out.sample_rate() - 50_000.0).abs() < 1.0);
        assert_eq!(out.len(), 5000);
    }

    #[test]
    fn boxcar_attenuates_above_nyquist_pick_aliases() {
        // A 60 kHz tone is above the 25 kHz output Nyquist. After boxcar
        // decimation its energy must be strongly attenuated; after pick
        // decimation it aliases to 10 kHz at nearly full amplitude.
        let rate = 800e3;
        let tr = tone(rate, 160_000, 1000.0, 60_000.0, 100.0);
        let alias_freq = 60_000.0 % 50_000.0; // 10 kHz in the output band

        let averaged = boxcar_decimate(&tr, 16);
        let picked = pick_decimate(&tr, 16);
        let amp_avg = tone_amplitude(&averaged, alias_freq);
        let amp_pick = tone_amplitude(&picked, alias_freq);
        assert!(
            amp_pick > 90.0,
            "picked alias should be near full 100 W: {amp_pick}"
        );
        assert!(
            amp_avg < amp_pick / 4.0,
            "boxcar must attenuate the alias: {amp_avg} vs {amp_pick}"
        );
    }

    #[test]
    fn in_band_tone_survives_boxcar() {
        // 5 kHz is comfortably inside the 25 kHz output band.
        let tr = tone(800e3, 160_000, 1000.0, 5_000.0, 100.0);
        let out = boxcar_decimate(&tr, 16);
        let amp = tone_amplitude(&out, 5_000.0);
        assert!((amp - 100.0).abs() < 5.0, "amp={amp}");
    }

    #[test]
    fn fir_design_properties() {
        let h = design_lowpass_fir(63, 0.02);
        assert_eq!(h.len(), 63);
        let dc: f64 = h.iter().sum();
        assert!((dc - 1.0).abs() < 1e-12, "unity DC gain");
        // Symmetric (linear phase).
        for i in 0..31 {
            assert!((h[i] - h[62 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fir_beats_boxcar_on_stopband() {
        // Tone just above the output Nyquist: 27 kHz with 25 kHz Nyquist.
        let rate = 800e3;
        let tr = tone(rate, 320_000, 1000.0, 27_000.0, 100.0);
        let alias = 50_000.0 - 27_000.0; // folds to 23 kHz
        let box_out = boxcar_decimate(&tr, 16);
        // Sharp filter: 1023 taps gives a ≈4 kHz transition band, so the
        // 27 kHz tone (cutoff 22 kHz) sits fully in the stopband.
        let h = design_lowpass_fir(1023, 22_000.0 / rate);
        let fir_out = fir_decimate(&tr, &h, 16);
        let a_box = tone_amplitude(&box_out, alias);
        let a_fir = tone_amplitude(&fir_out, alias);
        assert!(
            a_fir < a_box / 3.0,
            "near-band rejection: fir={a_fir} box={a_box}"
        );
    }

    #[test]
    fn fir_decimate_preserves_dc() {
        let tr = PowerTrace::new(SimTime::ZERO, 1e-6, vec![777.0; 10_000]);
        let h = design_lowpass_fir(101, 0.02);
        let out = fir_decimate(&tr, &h, 16);
        for &s in &out.samples {
            assert!((s - 777.0).abs() < 1e-6, "s={s}");
        }
    }

    #[test]
    fn goertzel_measures_known_tone() {
        let tr = tone(50e3, 50_000, 0.0, 440.0, 42.0);
        let amp = tone_amplitude(&tr, 440.0);
        assert!((amp - 42.0).abs() < 0.5, "amp={amp}");
        let off = tone_amplitude(&tr, 1234.0);
        assert!(off < 1.0, "no energy off-tone: {off}");
    }

    #[test]
    #[should_panic(expected = "800 kS/s")]
    fn gateway_decimate_checks_rate() {
        let tr = PowerTrace::new(SimTime::ZERO, 1e-3, vec![1.0; 100]);
        gateway_decimate(&tr);
    }

    #[test]
    fn boxcar_tail_drop_pinned() {
        // 1605 = 100×16 + 5: the 5-sample tail is dropped, and the kept
        // outputs are unaffected by the tail's values.
        let mut a: Vec<f64> = (0..1605).map(|i| (i % 37) as f64).collect();
        let out_a = boxcar_decimate(&PowerTrace::new(SimTime::ZERO, 1e-6, a.clone()), 16);
        assert_eq!(out_a.len(), 100);
        assert_eq!(boxcar_remainder(1605, 16), 5);
        for v in &mut a[1600..] {
            *v = 9e9; // poison the tail: must not change any output
        }
        let out_b = boxcar_decimate(&PowerTrace::new(SimTime::ZERO, 1e-6, a), 16);
        assert_eq!(out_a.samples, out_b.samples);
        assert_eq!(boxcar_remainder(1600, 16), 0);
    }

    fn chunked(xs: &[f64], sizes: &[usize]) -> Vec<Vec<f64>> {
        let mut chunks = Vec::new();
        let mut i = 0;
        let mut k = 0;
        while i < xs.len() {
            let sz = sizes[k % sizes.len()].min(xs.len() - i);
            chunks.push(xs[i..i + sz].to_vec());
            i += sz;
            k += 1;
        }
        chunks
    }

    #[test]
    fn streaming_boxcar_matches_batch_bit_exact() {
        let tr = tone(800e3, 4003, 1000.0, 7000.0, 80.0);
        let batch = boxcar_decimate(&tr, 16);
        let mut dec = Decimator::boxcar(16);
        let mut out = Vec::new();
        for c in chunked(&tr.samples, &[1, 7, 500, 33]) {
            dec.push(&c, &mut out);
        }
        dec.finish(&mut out);
        assert_eq!(out, batch.samples, "streaming == batch, bit-exact");
        assert_eq!(dec.pending(), boxcar_remainder(4003, 16));
        assert_eq!(dec.pending(), 3);
    }

    #[test]
    fn streaming_fir_matches_batch_bit_exact() {
        let tr = tone(800e3, 3217, 1000.0, 5000.0, 60.0);
        let h = design_lowpass_fir(63, 0.02);
        let batch = fir_decimate(&tr, &h, 16);
        let mut dec = Decimator::fir(h, 16);
        let mut out = Vec::new();
        for c in chunked(&tr.samples, &[11, 3, 900, 1]) {
            dec.push(&c, &mut out);
        }
        // Outputs needing future samples are withheld until finish().
        assert!(out.len() <= batch.len());
        dec.finish(&mut out);
        assert_eq!(out, batch.samples, "streaming == batch, bit-exact");
    }

    #[test]
    fn streaming_decimator_continuous_frames() {
        // The monitor-chain use: 500-sample frames at 50 kS/s arriving
        // forever; the decimator carries the window across frames, so a
        // factor that does not divide the frame length loses nothing.
        let mut dec = Decimator::boxcar(7);
        let mut out = Vec::new();
        let frame = vec![100.0; 500];
        for _ in 0..10 {
            dec.push(&frame, &mut out);
        }
        assert_eq!(out.len(), 5000 / 7);
        assert_eq!(dec.pending(), 5000 % 7);
        assert!(out.iter().all(|&v| (v - 100.0).abs() < 1e-9));
        assert_eq!(dec.factor(), 7);
    }
}
