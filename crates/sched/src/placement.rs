//! Node placement on the fat-tree: which physical nodes a job gets.
//!
//! §II-H gives D.A.V.I.D.E. a non-oversubscribed fat-tree, so bandwidth
//! never degrades with placement — but *latency* does (2 hops inside a
//! leaf, 4 across leaves), and fragmentation grows allocation diameter.
//! The dispatcher's "resource selection process" (§III-A2) is modelled
//! here: first-fit versus leaf-aware packing.

use davide_core::interconnect::FatTree;
use std::collections::BTreeSet;

/// Placement strategies for the resource-selection step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Lowest-numbered free nodes, ignoring topology.
    FirstFit,
    /// Prefer filling a single leaf switch; fall back to the most
    /// compact span available.
    LeafAware,
}

/// The pool of physical nodes and their fabric.
#[derive(Debug, Clone)]
pub struct NodePool {
    /// The fabric (defines leaves via the switch radix).
    pub fabric: FatTree,
    free: BTreeSet<u32>,
}

impl NodePool {
    /// All nodes free.
    pub fn new(fabric: FatTree) -> Self {
        let free = (0..fabric.nodes).collect();
        NodePool { fabric, free }
    }

    /// Free-node count.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Nodes per leaf switch.
    pub fn leaf_size(&self) -> u32 {
        (self.fabric.radix / 2).max(1)
    }

    /// Allocate `n` nodes with a strategy; `None` if not enough free.
    pub fn allocate(&mut self, n: u32, strategy: PlacementStrategy) -> Option<Vec<u32>> {
        if (self.free.len() as u32) < n {
            return None;
        }
        let picked = match strategy {
            PlacementStrategy::FirstFit => self.free.iter().take(n as usize).copied().collect(),
            PlacementStrategy::LeafAware => self.pick_leaf_aware(n),
        };
        for id in &picked {
            self.free.remove(id);
        }
        Some(picked)
    }

    fn pick_leaf_aware(&self, n: u32) -> Vec<u32> {
        let leaf = self.leaf_size();
        // Group free nodes by leaf.
        let mut by_leaf: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
        for &id in &self.free {
            by_leaf.entry(id / leaf).or_default().push(id);
        }
        // 1. A single leaf that fits the job: pick the tightest one
        //    (best-fit keeps big holes for big jobs).
        if let Some((_, nodes)) = by_leaf
            .iter()
            .filter(|(_, v)| v.len() as u32 >= n)
            .min_by_key(|(_, v)| v.len())
        {
            return nodes.iter().take(n as usize).copied().collect();
        }
        // 2. Otherwise take whole leaves greedily from the fullest
        //    downward, topping up from the next.
        let mut leaves: Vec<&Vec<u32>> = by_leaf.values().collect();
        leaves.sort_by_key(|v| std::cmp::Reverse(v.len()));
        let mut out = Vec::with_capacity(n as usize);
        for nodes in leaves {
            for &id in nodes {
                if out.len() as u32 == n {
                    return out;
                }
                out.push(id);
            }
        }
        out
    }

    /// Return nodes to the pool.
    pub fn release(&mut self, nodes: &[u32]) {
        for &id in nodes {
            debug_assert!(id < self.fabric.nodes);
            let inserted = self.free.insert(id);
            debug_assert!(inserted, "double free of node {id}");
        }
    }

    /// Allocation diameter: worst-case switch hops inside the set.
    pub fn diameter(&self, nodes: &[u32]) -> u32 {
        let mut d = 0;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                d = d.max(self.fabric.hops(a, b));
            }
        }
        d
    }

    /// Leaves spanned by an allocation.
    pub fn leaves_spanned(&self, nodes: &[u32]) -> usize {
        let leaf = self.leaf_size();
        nodes
            .iter()
            .map(|id| id / leaf)
            .collect::<std::collections::HashSet<u32>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> NodePool {
        NodePool::new(FatTree::davide(45))
    }

    #[test]
    fn leaf_geometry() {
        let p = pool();
        assert_eq!(p.leaf_size(), 18);
        assert_eq!(p.free_count(), 45);
    }

    #[test]
    fn small_jobs_stay_in_one_leaf() {
        let mut p = pool();
        let alloc = p.allocate(8, PlacementStrategy::LeafAware).unwrap();
        assert_eq!(alloc.len(), 8);
        assert_eq!(p.leaves_spanned(&alloc), 1);
        assert_eq!(p.diameter(&alloc), 2, "intra-leaf is 2 hops");
        assert_eq!(p.free_count(), 37);
    }

    #[test]
    fn first_fit_fragments_leaf_aware_does_not() {
        // Fragment the pool: first-fit a series, release every other
        // allocation, then place an 8-node job both ways.
        let mut ff = pool();
        let mut allocs = Vec::new();
        for _ in 0..7 {
            allocs.push(ff.allocate(5, PlacementStrategy::FirstFit).unwrap());
        }
        for a in allocs.iter().step_by(2) {
            ff.release(a);
        }
        let mut la = ff.clone();
        let a_ff = ff.allocate(12, PlacementStrategy::FirstFit).unwrap();
        let a_la = la.allocate(12, PlacementStrategy::LeafAware).unwrap();
        assert!(
            la.leaves_spanned(&a_la) <= ff.leaves_spanned(&a_ff),
            "leaf-aware spans {} leaves, first-fit {}",
            la.leaves_spanned(&a_la),
            ff.leaves_spanned(&a_ff)
        );
    }

    #[test]
    fn best_fit_preserves_big_holes() {
        let mut p = pool();
        // Leaf 0 has 18 nodes, leaf 1 has 18, leaf 2 has 9 (45 total).
        // A 9-node job should take the 9-node leaf, keeping a full leaf
        // free for an 18-node job.
        let a9 = p.allocate(9, PlacementStrategy::LeafAware).unwrap();
        assert!(a9.iter().all(|&id| id / 18 == 2), "picks the small leaf");
        let a18 = p.allocate(18, PlacementStrategy::LeafAware).unwrap();
        assert_eq!(p.leaves_spanned(&a18), 1, "full leaf still available");
    }

    #[test]
    fn oversize_allocation_fails_cleanly() {
        let mut p = pool();
        assert!(p.allocate(46, PlacementStrategy::LeafAware).is_none());
        assert_eq!(p.free_count(), 45, "failed alloc takes nothing");
    }

    #[test]
    fn release_roundtrip() {
        let mut p = pool();
        let a = p.allocate(20, PlacementStrategy::FirstFit).unwrap();
        assert_eq!(p.free_count(), 25);
        p.release(&a);
        assert_eq!(p.free_count(), 45);
    }

    #[test]
    fn cross_leaf_allocation_has_diameter_four() {
        let mut p = pool();
        let a = p.allocate(30, PlacementStrategy::LeafAware).unwrap();
        assert!(p.leaves_spanned(&a) >= 2);
        assert_eq!(p.diameter(&a), 4);
    }
}
