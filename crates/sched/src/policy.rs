//! Job-dispatch policies: FCFS, EASY backfill, and the power-aware
//! proactive dispatcher of §III-A2.
//!
//! The power-aware policy implements the paper's proposal: "using a per
//! job power prediction to select which job should enter the
//! supercomputing machine at each moment, in order to fulfill the
//! specified power envelope while preserving job fairness".

use crate::job::{Job, JobId};

/// A running job as policies see it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningSummary {
    /// Job id.
    pub id: JobId,
    /// Nodes held.
    pub nodes: u32,
    /// Scheduler's end-time bound (start + requested walltime).
    pub walltime_end_s: f64,
    /// Predicted total power of the job.
    pub predicted_power_w: f64,
}

/// Cluster state offered to a policy at a scheduling point.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterView {
    /// Current time.
    pub now: f64,
    /// Nodes not allocated.
    pub free_nodes: u32,
    /// Total compute nodes.
    pub total_nodes: u32,
    /// Currently-running jobs.
    pub running: Vec<RunningSummary>,
    /// System power cap (facility envelope), if armed.
    pub power_cap_w: Option<f64>,
    /// Baseline draw of an idle node (the dispatcher budgets around it).
    pub idle_node_power_w: f64,
}

impl ClusterView {
    /// Predicted power of the whole system right now: running jobs at
    /// their predictions plus idle floor for free nodes.
    pub fn predicted_system_power(&self) -> f64 {
        let running: f64 = self.running.iter().map(|r| r.predicted_power_w).sum();
        running + self.free_nodes as f64 * self.idle_node_power_w
    }

    /// Power headroom under the cap for *additional* load, accounting
    /// for the idle draw the new job's nodes already contribute.
    pub fn power_headroom(&self) -> f64 {
        match self.power_cap_w {
            Some(cap) => cap - self.predicted_system_power(),
            None => f64::INFINITY,
        }
    }

    /// Would starting `job` keep the predicted system power under the
    /// cap? (The job's nodes stop drawing idle power when it starts.)
    pub fn fits_power(&self, job: &Job) -> bool {
        let extra = job.predicted_total_power() - job.nodes as f64 * self.idle_node_power_w;
        extra <= self.power_headroom() + 1e-9
    }
}

/// A dispatch policy: given the queue (submission order) and the cluster
/// state, pick which jobs start now.
pub trait Policy {
    /// Policy name for reports.
    fn name(&self) -> &'static str;
    /// Ids of queued jobs to start at `view.now`, in start order.
    fn select(&mut self, queue: &[Job], view: &ClusterView) -> Vec<JobId>;
}

/// Strict first-come-first-served: the head of the queue blocks everyone
/// behind it.
#[derive(Debug, Default, Clone)]
pub struct Fcfs;

impl Policy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn select(&mut self, queue: &[Job], view: &ClusterView) -> Vec<JobId> {
        let mut free = view.free_nodes;
        let mut out = Vec::new();
        for job in queue {
            if job.nodes <= free {
                free -= job.nodes;
                out.push(job.id);
            } else {
                break;
            }
        }
        out
    }
}

/// When enough nodes for the head job free up, and how many nodes stay
/// free until then (`shadow time` and `extra nodes` of EASY backfill).
fn easy_reservation(head: &Job, view: &ClusterView, free: u32) -> (f64, u32) {
    // Sort running jobs by their walltime-bound end.
    let mut ends: Vec<(f64, u32)> = view
        .running
        .iter()
        .map(|r| (r.walltime_end_s, r.nodes))
        .collect();
    ends.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut avail = free;
    for &(t, nodes) in &ends {
        avail += nodes;
        if avail >= head.nodes {
            // Extra nodes at the shadow time beyond the reservation.
            return (t, avail - head.nodes);
        }
    }
    (f64::INFINITY, 0)
}

/// EASY backfilling: FCFS with a reservation for the head job; later
/// jobs may jump the queue if they do not delay that reservation.
#[derive(Debug, Default, Clone)]
pub struct EasyBackfill {
    /// Additionally require power fit (the power-aware variant).
    pub power_aware: bool,
    /// Fairness aging (§III-A2: "preserving job fairness"): once the
    /// blocked head has waited longer than this, backfilling pauses so
    /// power headroom accumulates for it instead of being nibbled away
    /// by younger jobs. `None` disables aging.
    pub max_head_wait_s: Option<f64>,
}

impl EasyBackfill {
    /// Plain EASY backfill.
    pub fn new() -> Self {
        EasyBackfill {
            power_aware: false,
            max_head_wait_s: None,
        }
    }

    /// The §III-A2 proactive dispatcher: EASY backfill where every start
    /// additionally fits the predicted power envelope.
    pub fn power_aware() -> Self {
        EasyBackfill {
            power_aware: true,
            max_head_wait_s: None,
        }
    }

    /// Add anti-starvation aging with the given head-wait bound.
    pub fn with_aging(mut self, max_head_wait_s: f64) -> Self {
        self.max_head_wait_s = Some(max_head_wait_s);
        self
    }
}

impl Policy for EasyBackfill {
    fn name(&self) -> &'static str {
        if self.power_aware {
            "power-aware-easy"
        } else {
            "easy-backfill"
        }
    }

    fn select(&mut self, queue: &[Job], view: &ClusterView) -> Vec<JobId> {
        let mut free = view.free_nodes;
        let mut headroom = view.power_headroom();
        let mut out = Vec::new();
        let idle_w = view.idle_node_power_w;

        let power_ok = |job: &Job, headroom: f64| -> bool {
            !self.power_aware
                || job.predicted_total_power() - job.nodes as f64 * idle_w <= headroom + 1e-9
        };

        // Phase 1: start from the head while everything fits.
        let mut idx = 0;
        while idx < queue.len() {
            let job = &queue[idx];
            // Deadlock guard: a head job whose predicted power exceeds
            // the whole envelope would otherwise never start. On an
            // empty machine it is admitted regardless — the reactive
            // capping layer (§III-A2 "mix both") absorbs the excess.
            let machine_empty = out.is_empty() && view.free_nodes == view.total_nodes && idx == 0;
            if job.nodes <= free && (power_ok(job, headroom) || machine_empty) {
                free -= job.nodes;
                headroom -= job.predicted_total_power() - job.nodes as f64 * idle_w;
                out.push(job.id);
                idx += 1;
            } else {
                break;
            }
        }
        if idx >= queue.len() {
            return out;
        }

        // Phase 2: reservation for the blocked head, then backfill.
        let head = &queue[idx];
        // Aging: a starving head freezes backfill so it cannot be
        // overtaken indefinitely by smaller/cooler jobs.
        if let Some(limit) = self.max_head_wait_s {
            if view.now - head.submit_s > limit {
                return out;
            }
        }
        let (shadow_time, extra_nodes) = easy_reservation(head, view, free);
        let mut extra = extra_nodes;
        for job in &queue[idx + 1..] {
            if job.nodes > free || !power_ok(job, headroom) {
                continue;
            }
            let finishes_before_shadow = view.now + job.walltime_req_s <= shadow_time;
            let fits_spare_nodes = job.nodes <= extra;
            if finishes_before_shadow || fits_spare_nodes {
                free -= job.nodes;
                if !finishes_before_shadow {
                    extra -= job.nodes;
                }
                headroom -= job.predicted_total_power() - job.nodes as f64 * idle_w;
                out.push(job.id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_apps::workload::AppKind;

    fn job(id: JobId, nodes: u32, walltime: f64, power_per_node: f64) -> Job {
        let mut j = Job::new(
            id,
            1,
            AppKind::Bqcd,
            nodes,
            0.0,
            walltime,
            walltime * 0.7,
            power_per_node,
        );
        j.predicted_power_w = power_per_node;
        j
    }

    fn view(free: u32, running: Vec<RunningSummary>, cap: Option<f64>) -> ClusterView {
        ClusterView {
            now: 1000.0,
            free_nodes: free,
            total_nodes: 16,
            running,
            power_cap_w: cap,
            idle_node_power_w: 350.0,
        }
    }

    #[test]
    fn fcfs_blocks_behind_head() {
        let queue = vec![
            job(1, 8, 100.0, 1500.0),
            job(2, 10, 100.0, 1500.0),
            job(3, 1, 100.0, 1500.0),
        ];
        let mut p = Fcfs;
        // 8 free: job 1 starts; job 2 (10 nodes) blocks job 3 despite fit.
        let picks = p.select(&queue, &view(8, vec![], None));
        assert_eq!(picks, vec![1]);
    }

    #[test]
    fn easy_backfills_around_blocked_head() {
        // Head wants 12 nodes; 8 free; a running 8-node job ends (by
        // walltime) at t=2000. Short job 3 (1 node, 500 s) fits before
        // the shadow time and must backfill.
        let running = vec![RunningSummary {
            id: 99,
            nodes: 8,
            walltime_end_s: 2000.0,
            predicted_power_w: 8.0 * 1500.0,
        }];
        let queue = vec![
            job(1, 12, 4000.0, 1500.0),
            job(2, 4, 5000.0, 1500.0), // too long: would straddle shadow
            job(3, 1, 500.0, 1500.0),  // short: fits before shadow
        ];
        let mut p = EasyBackfill::new();
        let picks = p.select(&queue, &view(8, running, None));
        assert!(picks.contains(&3), "short job backfills: {picks:?}");
        assert!(!picks.contains(&1), "head cannot start");
        // Job 2 (5000 s > shadow 2000, nodes 4 > extra 4? extra =
        // 8+8-12 = 4 → fits spare nodes!) — it may start on spare nodes.
        assert!(picks.contains(&2), "spare-node backfill: {picks:?}");
    }

    #[test]
    fn easy_does_not_delay_reservation() {
        // Same as above but job 2 wants 5 nodes > extra 4 and is long →
        // must NOT start.
        let running = vec![RunningSummary {
            id: 99,
            nodes: 8,
            walltime_end_s: 2000.0,
            predicted_power_w: 12_000.0,
        }];
        let queue = vec![job(1, 12, 4000.0, 1500.0), job(2, 5, 5000.0, 1500.0)];
        let mut p = EasyBackfill::new();
        let picks = p.select(&queue, &view(8, running, None));
        assert!(picks.is_empty(), "{picks:?}");
    }

    #[test]
    fn power_aware_blocks_hot_jobs_under_cap() {
        // 16 free nodes, cap 30 kW, idle floor 16×350 = 5.6 kW.
        // A 8-node 2 kW/node job adds 8×(2000−350) = 13.2 kW → fits.
        // A second identical job would add another 13.2 kW → 32 kW > cap.
        let queue = vec![job(1, 8, 1000.0, 2000.0), job(2, 8, 1000.0, 2000.0)];
        let cap = Some(30_000.0);
        let mut aware = EasyBackfill::power_aware();
        let picks = aware.select(&queue, &view(16, vec![], cap));
        assert_eq!(picks, vec![1], "second job must wait for power");
        // Without the cap, both start.
        let mut plain = EasyBackfill::new();
        let picks = plain.select(&queue, &view(16, vec![], None));
        assert_eq!(picks, vec![1, 2]);
    }

    #[test]
    fn power_aware_prefers_cool_backfill() {
        // A running job leaves 8 nodes free but little power headroom:
        // the hot head is power-blocked, the cooler job behind it
        // backfills — the §III-A2 reordering in one step.
        let running = vec![RunningSummary {
            id: 99,
            nodes: 8,
            walltime_end_s: 2000.0,
            predicted_power_w: 12_000.0,
        }];
        let queue = vec![
            job(1, 8, 500.0, 2000.0), // hot: 13.2 kW extra
            job(2, 8, 500.0, 900.0),  // cool: 8×550 = 4.4 kW extra
        ];
        // predicted system = 12 kW + 8×350 = 14.8 kW; cap 20 kW leaves
        // 5.2 kW of headroom — enough for the cool job only.
        let cap = Some(20_000.0);
        let mut aware = EasyBackfill::power_aware();
        let picks = aware.select(&queue, &view(8, running, cap));
        assert_eq!(picks, vec![2], "cool job jumps the hot head: {picks:?}");
    }

    #[test]
    fn deadlock_guard_admits_oversized_head_on_empty_machine() {
        // The head's predicted power exceeds the whole envelope; on an
        // empty machine it must start anyway (reactive capping absorbs
        // it), otherwise it would starve forever.
        let queue = vec![job(1, 16, 1000.0, 2300.0)];
        let cap = Some(16.0 * 350.0 + 5_000.0);
        let mut aware = EasyBackfill::power_aware();
        let picks = aware.select(&queue, &view(16, vec![], cap));
        assert_eq!(picks, vec![1]);
        // But not when anything else is running.
        let running = vec![RunningSummary {
            id: 9,
            nodes: 1,
            walltime_end_s: 9999.0,
            predicted_power_w: 1000.0,
        }];
        let picks = aware.select(&queue, &view(15, running, cap));
        assert!(picks.is_empty());
    }

    #[test]
    fn headroom_arithmetic() {
        let v = view(
            4,
            vec![RunningSummary {
                id: 1,
                nodes: 12,
                walltime_end_s: 2000.0,
                predicted_power_w: 20_000.0,
            }],
            Some(25_000.0),
        );
        // predicted = 20000 + 4×350 = 21400; headroom = 3600.
        assert!((v.predicted_system_power() - 21_400.0).abs() < 1e-9);
        assert!((v.power_headroom() - 3_600.0).abs() < 1e-9);
        // A 2-node job at 1500 W/node adds 2×(1500−350)=2300 → fits.
        assert!(v.fits_power(&job(9, 2, 100.0, 1500.0)));
        // At 2500 W/node it adds 4300 → does not fit.
        assert!(!v.fits_power(&job(9, 2, 100.0, 2500.0)));
    }

    #[test]
    fn uncapped_headroom_is_infinite() {
        let v = view(16, vec![], None);
        assert!(v.power_headroom().is_infinite());
        assert!(v.fits_power(&job(1, 16, 100.0, 9999.0)));
    }
}
