//! # davide-sched
//!
//! The power-aware system management layer of D.A.V.I.D.E. (§III-A2 of
//! the paper): a SLURM-like batch layer extended with per-job power
//! prediction, a proactive power-capped dispatcher, reactive node
//! throttling and per-user energy accounting.
//!
//! * [`job`] — jobs, lifecycle, QoS metrics;
//! * [`workload`] — synthetic trace generation (the production-trace
//!   substitution; see DESIGN.md);
//! * [`policy`] — FCFS, EASY backfill and the power-aware proactive
//!   dispatcher;
//! * [`simulator`] — event-driven cluster simulation with reactive DVFS
//!   capping;
//! * [`power_predictor`] — the trained "EP" models feeding the dispatcher;
//! * [`cap`] — time-varying facility power envelopes ([`CapSchedule`]);
//! * [`controlplane`] — the live closed loop: telemetry → predictor →
//!   dispatcher → per-node capping (Fig. 4 of the paper);
//! * [`accounting`] — per-job/per-user energy ledger ("EA");
//! * [`metrics`] — report rows for the E11/E12 experiment tables.

#![warn(missing_docs)]

pub mod accounting;
pub mod cap;
pub mod controlplane;
pub mod job;
pub mod metrics;
pub mod partition;
pub mod placement;
pub mod policy;
pub mod power_predictor;
pub mod simulator;
pub mod workload;

pub use accounting::{EnergyLedger, Tariff};
pub use cap::CapSchedule;
pub use controlplane::{
    ControlMode, ControlPlane, ControlPlaneConfig, ControlPlaneObs, ControlPlaneReport,
    NodeSnapshot,
};
pub use job::{Job, JobId, JobState};
pub use metrics::{report, SimReport};
pub use partition::{davide_partitions, Partition, PartitionedQueue};
pub use placement::{NodePool, PlacementStrategy};
pub use policy::{ClusterView, EasyBackfill, Fcfs, Policy};
pub use power_predictor::{OnlinePowerPredictor, PowerPredictor};
pub use simulator::{simulate, SimConfig, SimOutcome};
pub use workload::{WorkloadConfig, WorkloadGenerator};
