//! Bridge between the scheduler and the ML power predictors: train on
//! completed-job history, annotate incoming submissions — the "EP"
//! (energy predictor) box of Fig. 4, fed from the accounting database.
//!
//! The model family is chosen at runtime: [`PowerPredictor`] owns an
//! object-safe [`Regressor`] built from a
//! [`ModelKind`](davide_predictor::ModelKind), and
//! [`OnlinePowerPredictor`] layers a streaming RLS residual corrector on
//! top for the closed control loop.

use crate::job::Job;
use davide_predictor::{FeatureEncoder, JobDescriptor, ModelKind, Regressor, RlsPredictor};

/// Physical per-node power envelope predictions are clamped to, watts.
pub const NODE_POWER_RANGE_W: (f64, f64) = (300.0, 2300.0);

/// Build the submission-time descriptor of a job.
pub fn descriptor(job: &Job) -> JobDescriptor {
    JobDescriptor {
        user_id: job.user_id,
        app_id: job.app as u32,
        nodes: job.nodes,
        gpus_per_node: 4,
        cores_per_socket: 8,
        walltime_s: job.walltime_req_s,
        submit_hour: (job.submit_s / 3600.0) % 24.0,
    }
}

/// A trained per-node power predictor over a runtime-selected model.
pub struct PowerPredictor {
    encoder: FeatureEncoder,
    model: Box<dyn Regressor>,
}

impl PowerPredictor {
    /// Train `model` on the history's true per-node powers.
    pub fn train<R: Regressor + 'static>(model: R, history: &[Job], n_users: usize) -> Self {
        Self::train_boxed(Box::new(model), history, n_users)
    }

    /// Train a model picked at runtime via [`ModelKind`].
    pub fn from_kind(kind: ModelKind, history: &[Job], n_users: usize) -> Self {
        Self::train_boxed(kind.build(), history, n_users)
    }

    /// Train an already-boxed model on the history's true per-node powers.
    pub fn train_boxed(mut model: Box<dyn Regressor>, history: &[Job], n_users: usize) -> Self {
        assert!(!history.is_empty(), "need history to train on");
        let encoder = FeatureEncoder::new(n_users, 4);
        let descriptors: Vec<JobDescriptor> = history.iter().map(descriptor).collect();
        let x = encoder.encode_batch(&descriptors);
        let y: Vec<f64> = history.iter().map(|j| j.true_power_w).collect();
        model.fit(&x, history.len(), encoder.dim(), &y);
        PowerPredictor { encoder, model }
    }

    /// Short name of the underlying model family.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// Submission-time feature vector of a job.
    pub fn features(&self, job: &Job) -> Vec<f64> {
        self.encoder.encode(&descriptor(job))
    }

    /// Predict per-node power for a submission, clamped to the physical
    /// node envelope.
    pub fn predict(&self, job: &Job) -> f64 {
        let f = self.encoder.encode(&descriptor(job));
        self.model
            .predict(&f)
            .clamp(NODE_POWER_RANGE_W.0, NODE_POWER_RANGE_W.1)
    }

    /// Overwrite `predicted_power_w` across a trace.
    pub fn annotate(&self, trace: &mut [Job]) {
        for job in trace {
            job.predicted_power_w = self.predict(job);
        }
    }

    /// Mean absolute percentage error on a labelled set.
    pub fn mape_on(&self, jobs: &[Job]) -> f64 {
        let preds: Vec<f64> = jobs.iter().map(|j| self.predict(j)).collect();
        let truth: Vec<f64> = jobs.iter().map(|j| j.true_power_w).collect();
        davide_predictor::mape(&preds, &truth)
    }
}

/// A batch-trained base model plus an RLS residual corrector that keeps
/// learning from observed per-node powers as jobs complete — the
/// streaming half of the "EP" box the control plane feeds with
/// telemetry-measured energies.
pub struct OnlinePowerPredictor {
    base: PowerPredictor,
    rls: RlsPredictor,
    /// Running MAPE of the *corrected* prediction, measured before each
    /// observation is absorbed.
    abs_pct_err_sum: f64,
    observed: u64,
}

impl OnlinePowerPredictor {
    /// Wrap a trained base model; `lambda`/`delta` parameterise the RLS
    /// corrector (forgetting factor, prior covariance scale).
    pub fn new(base: PowerPredictor, lambda: f64, delta: f64) -> Self {
        let dim = base.encoder.dim();
        OnlinePowerPredictor {
            base,
            rls: RlsPredictor::new(dim, lambda, delta),
            abs_pct_err_sum: 0.0,
            observed: 0,
        }
    }

    /// Per-node power prediction: base model plus the learned residual,
    /// clamped to the physical envelope.
    pub fn predict(&self, job: &Job) -> f64 {
        let f = self.base.features(job);
        (self.base.model.predict(&f) + self.rls.predict(&f))
            .clamp(NODE_POWER_RANGE_W.0, NODE_POWER_RANGE_W.1)
    }

    /// Absorb an observed mean per-node power for a completed job:
    /// records the (pre-update) prediction error, then trains the
    /// corrector on the base model's residual.
    pub fn observe(&mut self, job: &Job, observed_w: f64) {
        if observed_w <= 0.0 {
            return;
        }
        let err = (self.predict(job) - observed_w).abs() / observed_w;
        self.abs_pct_err_sum += err;
        self.observed += 1;
        let f = self.base.features(job);
        let residual = observed_w - self.base.model.predict(&f);
        self.rls.update(&f, residual);
    }

    /// Record a prediction error without training the corrector (the
    /// open-loop report still wants the online MAPE).
    pub fn record_error_only(&mut self, job: &Job, observed_w: f64) {
        if observed_w <= 0.0 {
            return;
        }
        let err = (self.predict(job) - observed_w).abs() / observed_w;
        self.abs_pct_err_sum += err;
        self.observed += 1;
    }

    /// Online MAPE (%) over the observations so far.
    pub fn online_mape(&self) -> f64 {
        100.0 * self.abs_pct_err_sum / self.observed.max(1) as f64
    }

    /// Number of observations recorded.
    pub fn observations(&self) -> u64 {
        self.observed
    }

    /// Residual-corrector updates absorbed.
    pub fn updates(&self) -> u64 {
        self.rls.updates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadConfig, WorkloadGenerator};
    use davide_predictor::{KnnRegressor, RidgeRegression};

    fn history_and_test() -> (Vec<Job>, Vec<Job>) {
        let cfg = WorkloadConfig::default();
        let mut gen = WorkloadGenerator::new(cfg, 77);
        let all = gen.trace(3000);
        let (train, test) = all.split_at(2500);
        (train.to_vec(), test.to_vec())
    }

    #[test]
    fn ridge_reaches_single_digit_mape() {
        let (train, test) = history_and_test();
        let p = PowerPredictor::train(RidgeRegression::new(1.0), &train, 24);
        let mape = p.mape_on(&test);
        // [17] reports ~10 % on production traces; user/app regularity in
        // the generator should land the ridge model well under that.
        assert!(mape < 10.0, "ridge MAPE {mape}%");
    }

    #[test]
    fn knn_also_works() {
        let (train, test) = history_and_test();
        let p = PowerPredictor::train(KnnRegressor::new(7), &train, 24);
        let mape = p.mape_on(&test);
        assert!(mape < 12.0, "knn MAPE {mape}%");
    }

    #[test]
    fn every_model_kind_trains_via_factory() {
        let (train, test) = history_and_test();
        for kind in ModelKind::ALL {
            let p = PowerPredictor::from_kind(kind, &train, 24);
            assert_eq!(p.model_name(), kind.name());
            let mape = p.mape_on(&test);
            assert!(mape < 25.0, "{} MAPE {mape}%", kind.name());
        }
    }

    #[test]
    fn annotate_overwrites_predictions() {
        let (train, mut test) = history_and_test();
        let p = PowerPredictor::train(RidgeRegression::new(1.0), &train, 24);
        for j in &mut test {
            j.predicted_power_w = -1.0;
        }
        p.annotate(&mut test);
        for j in &test {
            assert!((300.0..=2300.0).contains(&j.predicted_power_w));
        }
    }

    #[test]
    fn predictions_clamped_to_envelope() {
        let (train, _) = history_and_test();
        let p = PowerPredictor::train(RidgeRegression::new(1.0), &train, 24);
        let mut weird = train[0].clone();
        weird.walltime_req_s = 1e9;
        let pred = p.predict(&weird);
        assert!((300.0..=2300.0).contains(&pred));
    }

    #[test]
    fn online_corrector_learns_systematic_bias() {
        let (train, test) = history_and_test();
        let base = PowerPredictor::train(RidgeRegression::new(1.0), &train, 24);
        let mut online = OnlinePowerPredictor::new(base, 0.995, 1000.0);
        // Plant drifts +150 W above what the base model learned.
        let bias = 150.0;
        let before: f64 = test[..50]
            .iter()
            .map(|j| (online.predict(j) - (j.true_power_w + bias)).abs())
            .sum::<f64>()
            / 50.0;
        for j in &test[..400] {
            online.observe(j, j.true_power_w + bias);
        }
        let after: f64 = test[400..450]
            .iter()
            .map(|j| (online.predict(j) - (j.true_power_w + bias)).abs())
            .sum::<f64>()
            / 50.0;
        assert!(
            after < before / 2.0,
            "corrector must absorb the bias: {before:.1} W → {after:.1} W"
        );
        assert_eq!(online.updates(), 400);
        assert!(online.online_mape() > 0.0);
    }
}
