//! Bridge between the scheduler and the ML power predictors: train on
//! completed-job history, annotate incoming submissions — the "EP"
//! (energy predictor) box of Fig. 4, fed from the accounting database.

use crate::job::Job;
use davide_predictor::{FeatureEncoder, JobDescriptor, Regressor};

/// Build the submission-time descriptor of a job.
pub fn descriptor(job: &Job) -> JobDescriptor {
    JobDescriptor {
        user_id: job.user_id,
        app_id: job.app as u32,
        nodes: job.nodes,
        gpus_per_node: 4,
        cores_per_socket: 8,
        walltime_s: job.walltime_req_s,
        submit_hour: (job.submit_s / 3600.0) % 24.0,
    }
}

/// A trained per-node power predictor.
pub struct PowerPredictor<R: Regressor> {
    encoder: FeatureEncoder,
    model: R,
}

impl<R: Regressor> PowerPredictor<R> {
    /// Train `model` on the history's true per-node powers.
    pub fn train(mut model: R, history: &[Job], n_users: usize) -> Self {
        assert!(!history.is_empty(), "need history to train on");
        let encoder = FeatureEncoder::new(n_users, 4);
        let descriptors: Vec<JobDescriptor> = history.iter().map(descriptor).collect();
        let x = encoder.encode_batch(&descriptors);
        let y: Vec<f64> = history.iter().map(|j| j.true_power_w).collect();
        model.fit(&x, history.len(), encoder.dim(), &y);
        PowerPredictor { encoder, model }
    }

    /// Predict per-node power for a submission, clamped to the physical
    /// node envelope.
    pub fn predict(&self, job: &Job) -> f64 {
        let f = self.encoder.encode(&descriptor(job));
        self.model.predict(&f).clamp(300.0, 2300.0)
    }

    /// Overwrite `predicted_power_w` across a trace.
    pub fn annotate(&self, trace: &mut [Job]) {
        for job in trace {
            job.predicted_power_w = self.predict(job);
        }
    }

    /// Mean absolute percentage error on a labelled set.
    pub fn mape_on(&self, jobs: &[Job]) -> f64 {
        let preds: Vec<f64> = jobs.iter().map(|j| self.predict(j)).collect();
        let truth: Vec<f64> = jobs.iter().map(|j| j.true_power_w).collect();
        davide_predictor::mape(&preds, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{WorkloadConfig, WorkloadGenerator};
    use davide_predictor::{KnnRegressor, RidgeRegression};

    fn history_and_test() -> (Vec<Job>, Vec<Job>) {
        let cfg = WorkloadConfig::default();
        let mut gen = WorkloadGenerator::new(cfg, 77);
        let all = gen.trace(3000);
        let (train, test) = all.split_at(2500);
        (train.to_vec(), test.to_vec())
    }

    #[test]
    fn ridge_reaches_single_digit_mape() {
        let (train, test) = history_and_test();
        let p = PowerPredictor::train(RidgeRegression::new(1.0), &train, 24);
        let mape = p.mape_on(&test);
        // [17] reports ~10 % on production traces; user/app regularity in
        // the generator should land the ridge model well under that.
        assert!(mape < 10.0, "ridge MAPE {mape}%");
    }

    #[test]
    fn knn_also_works() {
        let (train, test) = history_and_test();
        let p = PowerPredictor::train(KnnRegressor::new(7), &train, 24);
        let mape = p.mape_on(&test);
        assert!(mape < 12.0, "knn MAPE {mape}%");
    }

    #[test]
    fn annotate_overwrites_predictions() {
        let (train, mut test) = history_and_test();
        let p = PowerPredictor::train(RidgeRegression::new(1.0), &train, 24);
        for j in &mut test {
            j.predicted_power_w = -1.0;
        }
        p.annotate(&mut test);
        for j in &test {
            assert!((300.0..=2300.0).contains(&j.predicted_power_w));
        }
    }

    #[test]
    fn predictions_clamped_to_envelope() {
        let (train, _) = history_and_test();
        let p = PowerPredictor::train(RidgeRegression::new(1.0), &train, 24);
        let mut weird = train[0].clone();
        weird.walltime_req_s = 1e9;
        let pred = p.predict(&weird);
        assert!((300.0..=2300.0).contains(&pred));
    }
}
