//! Quality-of-service and energy metrics over a simulation outcome.

use crate::simulator::SimOutcome;

/// Summary statistics of one scheduling run — the row format of the E11
/// comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Policy name.
    pub policy: &'static str,
    /// Jobs completed.
    pub jobs: usize,
    /// Mean wait, seconds.
    pub mean_wait_s: f64,
    /// 95th-percentile wait, seconds.
    pub p95_wait_s: f64,
    /// Mean bounded slowdown.
    pub mean_slowdown: f64,
    /// Makespan, seconds.
    pub makespan_s: f64,
    /// Node utilisation over the makespan.
    pub utilisation: f64,
    /// Total energy, kWh.
    pub energy_kwh: f64,
    /// Peak system power, watts.
    pub peak_power_w: f64,
    /// Fraction of time over the cap.
    pub overcap_fraction: f64,
    /// Energy above the cap, kWh.
    pub overcap_kwh: f64,
}

/// Percentile of a sorted slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Build the report for an outcome.
pub fn report(outcome: &SimOutcome) -> SimReport {
    let mut waits: Vec<f64> = outcome
        .completed
        .iter()
        .filter_map(|j| j.wait_s())
        .collect();
    waits.sort_by(|a, b| a.total_cmp(b));
    let mean_wait = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let slowdowns: Vec<f64> = outcome
        .completed
        .iter()
        .filter_map(|j| j.bounded_slowdown())
        .collect();
    let mean_slowdown = if slowdowns.is_empty() {
        0.0
    } else {
        slowdowns.iter().sum::<f64>() / slowdowns.len() as f64
    };
    SimReport {
        policy: outcome.policy,
        jobs: outcome.completed.len(),
        mean_wait_s: mean_wait,
        p95_wait_s: percentile(&waits, 95.0),
        mean_slowdown,
        makespan_s: outcome.makespan_s,
        utilisation: outcome.utilisation(),
        energy_kwh: outcome.total_energy_j() / 3.6e6,
        peak_power_w: outcome.peak_power_w(),
        overcap_fraction: outcome.overcap_time_fraction().abs(),
        overcap_kwh: outcome.overcap_energy_j() / 3.6e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cap::CapSchedule;
    use crate::job::Job;
    use crate::policy::Fcfs;
    use crate::simulator::{simulate, SimConfig};
    use davide_apps::workload::AppKind;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 95.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[], 95.0), 0.0);
    }

    #[test]
    fn report_fields_consistent() {
        let trace = vec![
            Job::new(1, 1, AppKind::Nemo, 4, 0.0, 200.0, 100.0, 1400.0),
            Job::new(2, 2, AppKind::Bqcd, 4, 0.0, 200.0, 100.0, 1700.0),
        ];
        let cfg = SimConfig {
            total_nodes: 8,
            idle_node_power_w: 350.0,
            cap: CapSchedule::Unlimited,
            reactive_capping: false,
            min_speed: 0.35,
            placement: None,
        };
        let out = simulate(&trace, &mut Fcfs, cfg);
        let r = report(&out);
        assert_eq!(r.jobs, 2);
        assert_eq!(r.policy, "fcfs");
        assert!(r.mean_wait_s >= 0.0);
        assert!(r.mean_slowdown >= 1.0);
        assert!(r.energy_kwh > 0.0);
        assert_eq!(r.overcap_fraction, 0.0);
        assert!(r.utilisation > 0.0 && r.utilisation <= 1.0);
    }
}
