//! Jobs and their lifecycle.

use davide_apps::workload::AppKind;
use serde::{Deserialize, Serialize};

/// Unique job identifier.
pub type JobId = u64;

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Submitted, waiting in the queue.
    Queued,
    /// Dispatched and executing.
    Running,
    /// Finished.
    Completed,
}

/// A batch job as the scheduler sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Identifier (assigned at submission).
    pub id: JobId,
    /// Submitting user.
    pub user_id: u32,
    /// Application (drives the power profile).
    pub app: AppKind,
    /// Nodes requested.
    pub nodes: u32,
    /// Submission time, seconds.
    pub submit_s: f64,
    /// User-requested walltime, seconds (the scheduler's planning bound).
    pub walltime_req_s: f64,
    /// Actual runtime at nominal clocks, seconds (hidden from the
    /// scheduler until completion).
    pub true_runtime_s: f64,
    /// Actual mean per-node power draw, watts (ground truth).
    pub true_power_w: f64,
    /// Predictor's per-node power estimate at submission, watts.
    pub predicted_power_w: f64,
    /// Current state.
    pub state: JobState,
    /// Start time once dispatched.
    pub start_s: Option<f64>,
    /// Completion time once finished.
    pub end_s: Option<f64>,
}

impl Job {
    /// Queued job with prediction equal to truth (tests override).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: JobId,
        user_id: u32,
        app: AppKind,
        nodes: u32,
        submit_s: f64,
        walltime_req_s: f64,
        true_runtime_s: f64,
        true_power_w: f64,
    ) -> Self {
        assert!(nodes >= 1);
        assert!(walltime_req_s > 0.0 && true_runtime_s > 0.0);
        Job {
            id,
            user_id,
            app,
            nodes,
            submit_s,
            walltime_req_s,
            true_runtime_s,
            true_power_w,
            predicted_power_w: true_power_w,
            state: JobState::Queued,
            start_s: None,
            end_s: None,
        }
    }

    /// Wait time (requires the job to have started).
    pub fn wait_s(&self) -> Option<f64> {
        self.start_s.map(|s| s - self.submit_s)
    }

    /// Turnaround = wait + run (requires completion).
    pub fn turnaround_s(&self) -> Option<f64> {
        self.end_s.map(|e| e - self.submit_s)
    }

    /// Bounded slowdown with a 10-second runtime floor (the standard
    /// scheduling QoS metric).
    pub fn bounded_slowdown(&self) -> Option<f64> {
        let turnaround = self.turnaround_s()?;
        let run = (self.end_s? - self.start_s?).max(10.0);
        Some((turnaround / run).max(1.0))
    }

    /// Total predicted power across the job's nodes.
    pub fn predicted_total_power(&self) -> f64 {
        self.predicted_power_w * self.nodes as f64
    }

    /// Total actual power across the job's nodes.
    pub fn true_total_power(&self) -> f64 {
        self.true_power_w * self.nodes as f64
    }

    /// Node-seconds of the actual run (for utilisation accounting).
    pub fn node_seconds(&self) -> Option<f64> {
        let run = self.end_s? - self.start_s?;
        Some(run * self.nodes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done_job() -> Job {
        let mut j = Job::new(1, 2, AppKind::Nemo, 4, 100.0, 3600.0, 1800.0, 1500.0);
        j.start_s = Some(160.0);
        j.end_s = Some(1960.0);
        j.state = JobState::Completed;
        j
    }

    #[test]
    fn lifecycle_metrics() {
        let j = done_job();
        assert_eq!(j.wait_s(), Some(60.0));
        assert_eq!(j.turnaround_s(), Some(1860.0));
        let s = j.bounded_slowdown().unwrap();
        assert!((s - 1860.0 / 1800.0).abs() < 1e-12);
        assert_eq!(j.node_seconds(), Some(7200.0));
    }

    #[test]
    fn queued_job_has_no_metrics() {
        let j = Job::new(1, 1, AppKind::Bqcd, 1, 0.0, 100.0, 50.0, 1000.0);
        assert_eq!(j.wait_s(), None);
        assert_eq!(j.turnaround_s(), None);
        assert_eq!(j.bounded_slowdown(), None);
    }

    #[test]
    fn slowdown_floored_at_one_and_ten_seconds() {
        let mut j = Job::new(1, 1, AppKind::Bqcd, 1, 0.0, 100.0, 1.0, 500.0);
        j.start_s = Some(0.0);
        j.end_s = Some(1.0);
        // 1-second job with no wait: turnaround/max(run,10) < 1 → floor 1.
        assert_eq!(j.bounded_slowdown(), Some(1.0));
    }

    #[test]
    fn power_totals_scale_with_nodes() {
        let j = done_job();
        assert_eq!(j.true_total_power(), 6000.0);
        assert_eq!(j.predicted_total_power(), 6000.0);
    }

    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        Job::new(1, 1, AppKind::Nemo, 0, 0.0, 10.0, 5.0, 100.0);
    }
}
