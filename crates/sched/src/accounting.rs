//! Per-job and per-user energy accounting (EA in Fig. 4).
//!
//! §III-A1: energy accounting "allows the energy consumption cost of each
//! job to be distributed between the supercomputing center and the user,
//! promoting an energy-aware usage of the resources". The ledger consumes
//! either simulator outcomes or EG telemetry aggregates.

use crate::job::JobId;
use crate::simulator::SimOutcome;
use std::collections::HashMap;

/// Energy price used to turn joules into a charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tariff {
    /// Price per kWh in currency units.
    pub per_kwh: f64,
}

impl Default for Tariff {
    fn default() -> Self {
        // A representative 2017 Italian industrial tariff, €/kWh.
        Tariff { per_kwh: 0.15 }
    }
}

/// One user's accumulated account.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserAccount {
    /// Jobs charged.
    pub jobs: usize,
    /// Energy-to-solution total, joules.
    pub energy_j: f64,
    /// Node-seconds consumed.
    pub node_seconds: f64,
}

impl UserAccount {
    /// Charge at a tariff.
    pub fn cost(&self, tariff: Tariff) -> f64 {
        self.energy_j / 3.6e6 * tariff.per_kwh
    }

    /// Mean power across this user's node-seconds.
    pub fn mean_power_per_node(&self) -> f64 {
        if self.node_seconds == 0.0 {
            0.0
        } else {
            self.energy_j / self.node_seconds
        }
    }
}

/// The accounting ledger.
#[derive(Debug, Clone, Default)]
pub struct EnergyLedger {
    per_job: HashMap<JobId, f64>,
    per_user: HashMap<u32, UserAccount>,
    unattributed_j: f64,
}

impl EnergyLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest a simulation outcome: attribute each job's energy to its
    /// user and record the idle remainder as unattributed (datacentre
    /// overhead the centre absorbs).
    pub fn ingest(&mut self, outcome: &SimOutcome) {
        for job in &outcome.completed {
            let e = outcome.job_energy_j.get(&job.id).copied().unwrap_or(0.0);
            self.per_job.insert(job.id, e);
            let acct = self.per_user.entry(job.user_id).or_default();
            acct.jobs += 1;
            acct.energy_j += e;
            acct.node_seconds += job.node_seconds().unwrap_or(0.0);
        }
        let attributed: f64 = outcome.job_energy_j.values().sum();
        self.unattributed_j += outcome.total_energy_j() - attributed;
    }

    /// Energy-to-solution of one job, joules.
    pub fn job_energy_j(&self, id: JobId) -> Option<f64> {
        self.per_job.get(&id).copied()
    }

    /// A user's account.
    pub fn user(&self, user_id: u32) -> Option<&UserAccount> {
        self.per_user.get(&user_id)
    }

    /// All users, sorted by descending energy.
    pub fn users_by_energy(&self) -> Vec<(u32, UserAccount)> {
        let mut v: Vec<(u32, UserAccount)> = self.per_user.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by(|a, b| b.1.energy_j.total_cmp(&a.1.energy_j));
        v
    }

    /// Total attributed energy, joules.
    pub fn attributed_j(&self) -> f64 {
        self.per_job.values().sum()
    }

    /// Energy not attributable to any job (idle floor), joules.
    pub fn unattributed_j(&self) -> f64 {
        self.unattributed_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cap::CapSchedule;
    use crate::job::Job;
    use crate::policy::Fcfs;
    use crate::simulator::{simulate, SimConfig};
    use davide_apps::workload::AppKind;

    fn run() -> SimOutcome {
        let trace = vec![
            Job::new(
                1,
                10,
                AppKind::QuantumEspresso,
                4,
                0.0,
                200.0,
                100.0,
                1800.0,
            ),
            Job::new(
                2,
                10,
                AppKind::QuantumEspresso,
                2,
                0.0,
                200.0,
                100.0,
                1800.0,
            ),
            Job::new(3, 20, AppKind::Nemo, 2, 0.0, 300.0, 150.0, 1300.0),
        ];
        let cfg = SimConfig {
            total_nodes: 8,
            idle_node_power_w: 350.0,
            cap: CapSchedule::Unlimited,
            reactive_capping: false,
            min_speed: 0.35,
            placement: None,
        };
        simulate(&trace, &mut Fcfs, cfg)
    }

    #[test]
    fn attribution_conserves_energy() {
        let out = run();
        let mut ledger = EnergyLedger::new();
        ledger.ingest(&out);
        let total = out.total_energy_j();
        let sum = ledger.attributed_j() + ledger.unattributed_j();
        assert!((sum - total).abs() < 1e-6, "{sum} vs {total}");
        assert!(ledger.unattributed_j() > 0.0, "idle floor exists");
    }

    #[test]
    fn per_user_rollup() {
        let out = run();
        let mut ledger = EnergyLedger::new();
        ledger.ingest(&out);
        let u10 = ledger.user(10).expect("user 10 ran jobs");
        assert_eq!(u10.jobs, 2);
        // User 10 ran 6 node-hours of QE at 1800 W/node for 100 s each.
        assert!((u10.energy_j - 6.0 * 1800.0 * 100.0).abs() < 1.0);
        let u20 = ledger.user(20).unwrap();
        assert_eq!(u20.jobs, 1);
        assert!(u10.energy_j > u20.energy_j);
        // Ranking.
        let ranked = ledger.users_by_energy();
        assert_eq!(ranked[0].0, 10);
    }

    #[test]
    fn tariff_and_mean_power() {
        let out = run();
        let mut ledger = EnergyLedger::new();
        ledger.ingest(&out);
        let acct = *ledger.user(10).unwrap();
        let cost = acct.cost(Tariff::default());
        assert!((cost - acct.energy_j / 3.6e6 * 0.15).abs() < 1e-12);
        assert!((acct.mean_power_per_node() - 1800.0).abs() < 1.0);
    }

    #[test]
    fn job_lookup() {
        let out = run();
        let mut ledger = EnergyLedger::new();
        ledger.ingest(&out);
        assert!(ledger.job_energy_j(1).unwrap() > 0.0);
        assert!(ledger.job_energy_j(999).is_none());
    }
}
