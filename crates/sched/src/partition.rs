//! SLURM-style partitions (queues with limits and priorities).
//!
//! §III-A2 extends SLURM, whose resource model routes jobs through
//! *partitions* — named queues with node-count and walltime limits and a
//! scheduling priority (`debug`, `batch`, `long`…). The dispatcher
//! orders the global queue by partition priority (then submission),
//! which composes with any [`Policy`](crate::policy::Policy).

use crate::job::Job;
use serde::{Deserialize, Serialize};

/// A partition definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Partition name.
    pub name: String,
    /// Largest node count a job may request here.
    pub max_nodes: u32,
    /// Longest walltime a job may request, seconds.
    pub max_walltime_s: f64,
    /// Scheduling priority (higher runs first).
    pub priority: i32,
}

/// The standard D.A.V.I.D.E. partition set.
pub fn davide_partitions() -> Vec<Partition> {
    vec![
        Partition {
            name: "debug".into(),
            max_nodes: 2,
            max_walltime_s: 1_800.0,
            priority: 100,
        },
        Partition {
            name: "batch".into(),
            max_nodes: 16,
            max_walltime_s: 24.0 * 3600.0,
            priority: 50,
        },
        Partition {
            name: "long".into(),
            max_nodes: 8,
            max_walltime_s: 72.0 * 3600.0,
            priority: 10,
        },
    ]
}

/// Errors from partition admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// No partition by that name.
    UnknownPartition,
    /// Job exceeds the partition's node limit.
    TooManyNodes,
    /// Job exceeds the partition's walltime limit.
    WalltimeTooLong,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UnknownPartition => write!(f, "unknown partition"),
            AdmissionError::TooManyNodes => write!(f, "node count exceeds partition limit"),
            AdmissionError::WalltimeTooLong => write!(f, "walltime exceeds partition limit"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// A partitioned submission front-end: validates jobs against their
/// partition and maintains the priority-ordered queue handed to the
/// dispatch policy.
#[derive(Debug, Clone)]
pub struct PartitionedQueue {
    partitions: Vec<Partition>,
    /// `(priority, job)` entries kept sorted by (priority desc, submit).
    entries: Vec<(i32, Job)>,
}

impl PartitionedQueue {
    /// Queue over a partition set.
    pub fn new(partitions: Vec<Partition>) -> Self {
        assert!(!partitions.is_empty());
        PartitionedQueue {
            partitions,
            entries: Vec::new(),
        }
    }

    /// Look up a partition.
    pub fn partition(&self, name: &str) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.name == name)
    }

    /// Validate and enqueue a job into `partition`.
    pub fn submit(&mut self, job: Job, partition: &str) -> Result<(), AdmissionError> {
        let p = self
            .partition(partition)
            .ok_or(AdmissionError::UnknownPartition)?;
        if job.nodes > p.max_nodes {
            return Err(AdmissionError::TooManyNodes);
        }
        if job.walltime_req_s > p.max_walltime_s {
            return Err(AdmissionError::WalltimeTooLong);
        }
        let prio = p.priority;
        // Insert keeping (priority desc, submit asc) order.
        let pos = self
            .entries
            .iter()
            .position(|(q, j)| *q < prio || (*q == prio && j.submit_s > job.submit_s))
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, (prio, job));
        Ok(())
    }

    /// The queue in dispatch order (what a policy's `select` consumes).
    pub fn ordered_jobs(&self) -> Vec<Job> {
        self.entries.iter().map(|(_, j)| j.clone()).collect()
    }

    /// Remove a job (it started or was cancelled).
    pub fn remove(&mut self, id: crate::job::JobId) -> Option<Job> {
        let pos = self.entries.iter().position(|(_, j)| j.id == id)?;
        Some(self.entries.remove(pos).1)
    }

    /// Queue length.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_apps::workload::AppKind;

    fn job(id: u64, nodes: u32, submit: f64, walltime: f64) -> Job {
        Job::new(
            id,
            1,
            AppKind::Nemo,
            nodes,
            submit,
            walltime,
            walltime * 0.5,
            1200.0,
        )
    }

    #[test]
    fn admission_limits_enforced() {
        let mut q = PartitionedQueue::new(davide_partitions());
        assert_eq!(q.submit(job(1, 2, 0.0, 600.0), "debug"), Ok(()));
        assert_eq!(
            q.submit(job(2, 3, 0.0, 600.0), "debug"),
            Err(AdmissionError::TooManyNodes)
        );
        assert_eq!(
            q.submit(job(3, 1, 0.0, 3_600.0), "debug"),
            Err(AdmissionError::WalltimeTooLong)
        );
        assert_eq!(
            q.submit(job(4, 1, 0.0, 600.0), "gpu"),
            Err(AdmissionError::UnknownPartition)
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn dispatch_order_is_priority_then_submit() {
        let mut q = PartitionedQueue::new(davide_partitions());
        q.submit(job(1, 4, 0.0, 3_600.0), "batch").unwrap();
        q.submit(job(2, 4, 10.0, 100_000.0), "long").unwrap();
        q.submit(job(3, 1, 20.0, 600.0), "debug").unwrap();
        q.submit(job(4, 4, 5.0, 3_600.0), "batch").unwrap();
        let order: Vec<u64> = q.ordered_jobs().iter().map(|j| j.id).collect();
        // debug first, then batch by submit time, then long.
        assert_eq!(order, vec![3, 1, 4, 2]);
    }

    #[test]
    fn remove_takes_job_out() {
        let mut q = PartitionedQueue::new(davide_partitions());
        q.submit(job(1, 1, 0.0, 600.0), "debug").unwrap();
        q.submit(job(2, 1, 0.0, 600.0), "debug").unwrap();
        assert!(q.remove(1).is_some());
        assert!(q.remove(1).is_none());
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn partitioned_queue_feeds_policy() {
        use crate::policy::{ClusterView, Fcfs, Policy};
        let mut q = PartitionedQueue::new(davide_partitions());
        // A big batch job first, then a debug job that should still
        // start first because debug outranks batch.
        q.submit(job(1, 16, 0.0, 3_600.0), "batch").unwrap();
        q.submit(job(2, 1, 5.0, 600.0), "debug").unwrap();
        let view = ClusterView {
            now: 10.0,
            free_nodes: 8,
            total_nodes: 45,
            running: vec![],
            power_cap_w: None,
            idle_node_power_w: 350.0,
        };
        let picks = Fcfs.select(&q.ordered_jobs(), &view);
        assert_eq!(picks, vec![2], "debug job leads the dispatch order");
    }

    #[test]
    fn standard_partitions_sane() {
        let ps = davide_partitions();
        assert_eq!(ps.len(), 3);
        assert!(ps.iter().any(|p| p.name == "debug"));
        // debug outranks batch outranks long.
        let prio = |n: &str| ps.iter().find(|p| p.name == n).unwrap().priority;
        assert!(prio("debug") > prio("batch"));
        assert!(prio("batch") > prio("long"));
    }
}
