//! Facility power envelopes.
//!
//! A [`CapSchedule`] is the single description of the system power cap
//! shared by the offline simulator ([`SimConfig`](crate::SimConfig)) and
//! the live control plane: constant caps, the MS3-style day/night pair
//! ([15] "do less when it's too hot"), and general piecewise-constant
//! profiles over a repeating period.

use serde::{Deserialize, Serialize};

/// Seconds in a day; the period of the built-in day/night schedule.
pub const DAY_S: f64 = 86_400.0;

/// A time-varying facility power envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CapSchedule {
    /// No envelope: [`cap_at`](Self::cap_at) is always `None`.
    Unlimited,
    /// A constant cap, watts.
    Constant(f64),
    /// Day/night pair: `day_w` applies 08:00–20:00, `night_w` for the
    /// remaining (cool/cheap) hours, repeating daily.
    DayNight {
        /// Cap during 08:00–20:00, watts.
        day_w: f64,
        /// Cap during the remaining hours, watts.
        night_w: f64,
    },
    /// Piecewise-constant caps over a repeating period. Each segment is
    /// `(start offset within the period, cap_w)`; the cap in force at
    /// time `t` is that of the last segment whose offset ≤ `t mod
    /// period`, wrapping to the final segment before the first offset
    /// (midnight wrap). Segments sharing an offset collapse to the
    /// later one (zero-length segments contribute no interval).
    Piecewise {
        /// Repeat period, seconds (> 0).
        period_s: f64,
        /// `(offset_s, cap_w)` sorted by offset.
        segments: Vec<(f64, f64)>,
    },
}

impl CapSchedule {
    /// A constant cap.
    pub fn constant(cap_w: f64) -> Self {
        CapSchedule::Constant(cap_w)
    }

    /// The MS3-style day/night pair.
    pub fn day_night(day_w: f64, night_w: f64) -> Self {
        CapSchedule::DayNight { day_w, night_w }
    }

    /// A piecewise-constant profile over `period_s`. Offsets outside
    /// `[0, period_s)` are folded into the period; segments are sorted
    /// by offset (stable, so for equal offsets the later one in
    /// `segments` wins — a zero-length segment).
    ///
    /// # Panics
    /// If `period_s ≤ 0` or `segments` is empty.
    pub fn piecewise(period_s: f64, segments: Vec<(f64, f64)>) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        assert!(!segments.is_empty(), "need at least one segment");
        let mut segments: Vec<(f64, f64)> = segments
            .into_iter()
            .map(|(t, w)| (t.rem_euclid(period_s), w))
            .collect();
        segments.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite offsets"));
        CapSchedule::Piecewise { period_s, segments }
    }

    /// Whether the schedule never constrains power.
    pub fn is_unlimited(&self) -> bool {
        matches!(self, CapSchedule::Unlimited)
    }

    /// The envelope in force at time `t_s`, watts.
    pub fn cap_at(&self, t_s: f64) -> Option<f64> {
        match self {
            CapSchedule::Unlimited => None,
            CapSchedule::Constant(w) => Some(*w),
            CapSchedule::DayNight { day_w, night_w } => {
                let hour = (t_s / 3600.0).rem_euclid(24.0);
                Some(if (8.0..20.0).contains(&hour) {
                    *day_w
                } else {
                    *night_w
                })
            }
            CapSchedule::Piecewise { period_s, segments } => {
                let phase = t_s.rem_euclid(*period_s);
                // Last segment with offset ≤ phase; before the first
                // offset the previous period's final segment is live.
                let idx = segments.partition_point(|s| s.0 <= phase);
                let seg = if idx == 0 {
                    segments.last().expect("non-empty by construction")
                } else {
                    &segments[idx - 1]
                };
                Some(seg.1)
            }
        }
    }

    /// The next instant strictly after `t_s` at which the envelope
    /// *changes value*; `None` for schedules that never change.
    pub fn next_cap_boundary(&self, t_s: f64) -> Option<f64> {
        const EPS: f64 = 1e-6;
        match self {
            CapSchedule::Unlimited | CapSchedule::Constant(_) => None,
            CapSchedule::DayNight { day_w, night_w } => {
                if day_w == night_w {
                    return None;
                }
                let day = (t_s / DAY_S).floor();
                let candidates = [
                    day * DAY_S + 8.0 * 3600.0,
                    day * DAY_S + 20.0 * 3600.0,
                    (day + 1.0) * DAY_S + 8.0 * 3600.0,
                ];
                candidates.into_iter().find(|&c| c > t_s + EPS)
            }
            CapSchedule::Piecewise { period_s, segments } => {
                // Offsets where the effective value changes: collapse
                // duplicate offsets to the last, then drop transitions
                // that keep the cap constant (comparing cyclically).
                let mut effective: Vec<(f64, f64)> = Vec::with_capacity(segments.len());
                for &(t, w) in segments {
                    match effective.last_mut() {
                        Some(last) if last.0 == t => last.1 = w,
                        _ => effective.push((t, w)),
                    }
                }
                let n = effective.len();
                let changes: Vec<f64> = (0..n)
                    .filter(|&i| effective[i].1 != effective[(i + n - 1) % n].1)
                    .map(|i| effective[i].0)
                    .collect();
                if changes.is_empty() {
                    return None;
                }
                let base = (t_s / period_s).floor() * period_s;
                [base, base + period_s]
                    .into_iter()
                    .flat_map(|b| changes.iter().map(move |&c| b + c))
                    .find(|&c| c > t_s + EPS)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_and_constant() {
        assert_eq!(CapSchedule::Unlimited.cap_at(0.0), None);
        assert_eq!(CapSchedule::Unlimited.next_cap_boundary(0.0), None);
        assert!(CapSchedule::Unlimited.is_unlimited());
        let c = CapSchedule::constant(50_000.0);
        assert_eq!(c.cap_at(1e9), Some(50_000.0));
        assert_eq!(c.next_cap_boundary(0.0), None);
        assert!(!c.is_unlimited());
    }

    #[test]
    fn day_night_windows_and_boundaries() {
        let s = CapSchedule::day_night(10_000.0, 20_000.0);
        assert_eq!(s.cap_at(9.0 * 3600.0), Some(10_000.0));
        assert_eq!(s.cap_at(23.0 * 3600.0), Some(20_000.0));
        assert_eq!(s.cap_at(DAY_S + 3.0 * 3600.0), Some(20_000.0));
        assert_eq!(s.next_cap_boundary(0.0), Some(8.0 * 3600.0));
        assert_eq!(s.next_cap_boundary(9.0 * 3600.0), Some(20.0 * 3600.0));
        assert_eq!(
            s.next_cap_boundary(21.0 * 3600.0),
            Some(DAY_S + 8.0 * 3600.0)
        );
    }

    #[test]
    fn day_night_exact_boundary_is_strictly_after() {
        let s = CapSchedule::day_night(10_000.0, 20_000.0);
        // At exactly 08:00 the day cap is already in force and the next
        // change is 20:00 — not 08:00 again.
        assert_eq!(s.cap_at(8.0 * 3600.0), Some(10_000.0));
        assert_eq!(s.next_cap_boundary(8.0 * 3600.0), Some(20.0 * 3600.0));
        assert_eq!(s.cap_at(20.0 * 3600.0), Some(20_000.0));
        assert_eq!(
            s.next_cap_boundary(20.0 * 3600.0),
            Some(DAY_S + 8.0 * 3600.0)
        );
    }

    #[test]
    fn degenerate_day_night_has_no_boundaries() {
        let s = CapSchedule::day_night(15_000.0, 15_000.0);
        assert_eq!(s.cap_at(0.0), Some(15_000.0));
        assert_eq!(s.next_cap_boundary(0.0), None);
    }

    #[test]
    fn piecewise_midnight_wrap() {
        // Cap drops at 06:00, relaxes at 18:00; between midnight and
        // 06:00 the *previous evening's* segment is in force.
        let s = CapSchedule::piecewise(
            DAY_S,
            vec![(6.0 * 3600.0, 9_000.0), (18.0 * 3600.0, 25_000.0)],
        );
        assert_eq!(s.cap_at(3.0 * 3600.0), Some(25_000.0), "pre-dawn wraps");
        assert_eq!(s.cap_at(7.0 * 3600.0), Some(9_000.0));
        assert_eq!(s.cap_at(19.0 * 3600.0), Some(25_000.0));
        assert_eq!(s.cap_at(DAY_S + 3.0 * 3600.0), Some(25_000.0));
        assert_eq!(s.next_cap_boundary(0.0), Some(6.0 * 3600.0));
        assert_eq!(s.next_cap_boundary(7.0 * 3600.0), Some(18.0 * 3600.0));
        assert_eq!(
            s.next_cap_boundary(19.0 * 3600.0),
            Some(DAY_S + 6.0 * 3600.0)
        );
    }

    #[test]
    fn piecewise_exact_boundary() {
        let s = CapSchedule::piecewise(1000.0, vec![(0.0, 100.0), (500.0, 200.0)]);
        // At exactly the offset the new segment is live, and the next
        // boundary is strictly later.
        assert_eq!(s.cap_at(500.0), Some(200.0));
        assert_eq!(s.next_cap_boundary(500.0), Some(1000.0));
        assert_eq!(s.cap_at(1000.0), Some(100.0));
        assert_eq!(s.next_cap_boundary(1000.0), Some(1500.0));
    }

    #[test]
    fn piecewise_zero_length_segment_collapses() {
        // Two segments at the same offset: the later one wins and no
        // phantom boundary is generated for the shadowed value.
        let s = CapSchedule::piecewise(1000.0, vec![(0.0, 100.0), (400.0, 999.0), (400.0, 300.0)]);
        assert_eq!(s.cap_at(400.0), Some(300.0));
        assert_eq!(s.cap_at(399.999), Some(100.0));
        assert_eq!(s.next_cap_boundary(0.0), Some(400.0));
        assert_eq!(s.next_cap_boundary(400.0), Some(1000.0));
    }

    #[test]
    fn piecewise_constant_value_has_no_boundaries() {
        let s = CapSchedule::piecewise(1000.0, vec![(0.0, 100.0), (500.0, 100.0)]);
        assert_eq!(s.cap_at(750.0), Some(100.0));
        assert_eq!(s.next_cap_boundary(0.0), None, "value never changes");
        let single = CapSchedule::piecewise(1000.0, vec![(200.0, 100.0)]);
        assert_eq!(single.cap_at(0.0), Some(100.0));
        assert_eq!(single.next_cap_boundary(0.0), None);
    }

    #[test]
    fn piecewise_negative_time_and_offset_folding() {
        let s = CapSchedule::piecewise(1000.0, vec![(1500.0, 200.0), (0.0, 100.0)]);
        // Offset 1500 folds to 500; negative times fold into the period.
        assert_eq!(s.cap_at(600.0), Some(200.0));
        assert_eq!(s.cap_at(-400.0), Some(200.0));
        assert_eq!(s.cap_at(-600.0), Some(100.0));
    }

    #[test]
    fn day_night_midnight_wrap() {
        let s = CapSchedule::day_night(10_000.0, 20_000.0);
        // Midnight itself, a second before it, and negative time are
        // all night hours; the boundary search crosses the day seam.
        assert_eq!(s.cap_at(DAY_S), Some(20_000.0));
        assert_eq!(s.cap_at(DAY_S - 1.0), Some(20_000.0));
        assert_eq!(s.cap_at(-1.0), Some(20_000.0), "negative time folds");
        assert_eq!(s.next_cap_boundary(DAY_S), Some(DAY_S + 8.0 * 3600.0));
        assert_eq!(
            s.next_cap_boundary(DAY_S - 1.0),
            Some(DAY_S + 8.0 * 3600.0),
            "just before midnight the next change is past the seam"
        );
    }

    #[test]
    fn piecewise_first_offset_after_zero_wraps() {
        // No segment starts at phase 0: before the first offset the
        // final segment of the previous period is in force.
        let s = CapSchedule::piecewise(1000.0, vec![(250.0, 111.0), (750.0, 222.0)]);
        assert_eq!(s.cap_at(0.0), Some(222.0), "pre-first-offset wraps");
        assert_eq!(s.cap_at(250.0), Some(111.0));
        assert_eq!(s.cap_at(1000.0), Some(222.0), "period seam wraps too");
        assert_eq!(s.cap_at(2250.0), Some(111.0), "later periods repeat");
        assert_eq!(s.next_cap_boundary(0.0), Some(250.0));
        assert_eq!(
            s.next_cap_boundary(750.0),
            Some(1250.0),
            "the next change after the last offset is in the next period"
        );
        assert_eq!(s.next_cap_boundary(-100.0), Some(250.0));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn piecewise_rejects_bad_period() {
        CapSchedule::piecewise(0.0, vec![(0.0, 1.0)]);
    }
}
