//! Event-driven scheduling simulator.
//!
//! Drives a job trace through a dispatch [`Policy`](crate::policy::Policy)
//! on a homogeneous cluster, with optional *reactive* capping: when the
//! actual system power exceeds the cap (prediction error, no prediction,
//! or no proactive policy), every running node is DVFS-throttled to a
//! common speed that brings the system back under the envelope — which
//! stretches running jobs, the §III-A2 "performance loss and SLA
//! violation" that proactive dispatch avoids.

use crate::cap::CapSchedule;
use crate::job::{Job, JobId, JobState};
use crate::placement::{NodePool, PlacementStrategy};
use crate::policy::{ClusterView, Policy, RunningSummary};
use davide_core::interconnect::FatTree;
use std::collections::HashMap;

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Compute nodes available.
    pub total_nodes: u32,
    /// Idle draw per node, watts.
    pub idle_node_power_w: f64,
    /// Facility power envelope over time (constant, day/night pair or
    /// piecewise profile).
    pub cap: CapSchedule,
    /// Throttle running jobs when actual power exceeds the cap.
    pub reactive_capping: bool,
    /// Throttle floor (DVFS ladder bottom).
    pub min_speed: f64,
    /// Physical node placement on the fat-tree; `None` skips placement
    /// tracking (jobs are just counted).
    pub placement: Option<PlacementStrategy>,
}

impl SimConfig {
    /// The D.A.V.I.D.E. pilot: 45 nodes, ~350 W idle nodes.
    pub fn davide() -> Self {
        SimConfig {
            total_nodes: 45,
            idle_node_power_w: 350.0,
            cap: CapSchedule::Unlimited,
            reactive_capping: false,
            min_speed: 0.35,
            placement: None,
        }
    }

    /// Track physical placement with the given strategy.
    pub fn with_placement(mut self, strategy: PlacementStrategy) -> Self {
        self.placement = Some(strategy);
        self
    }

    /// Arm a power envelope.
    pub fn with_cap_schedule(mut self, cap: CapSchedule, reactive: bool) -> Self {
        self.cap = cap;
        self.reactive_capping = reactive;
        self
    }
}

#[derive(Debug, Clone)]
struct Running {
    job: Job,
    remaining_s: f64,
    walltime_end_s: f64,
    placed_on: Option<Vec<u32>>,
}

/// A constant-power segment of the system timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSegment {
    /// Segment start, seconds.
    pub t0: f64,
    /// Segment end, seconds.
    pub t1: f64,
    /// System power, watts.
    pub watts: f64,
    /// Common node speed during the segment (1 = nominal).
    pub speed: f64,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Policy that ran.
    pub policy: &'static str,
    /// Configuration used.
    pub config: SimConfig,
    /// Completed jobs with their final timings.
    pub completed: Vec<Job>,
    /// Step-function power timeline.
    pub timeline: Vec<PowerSegment>,
    /// Energy attributed to each job (node share, joules).
    pub job_energy_j: HashMap<JobId, f64>,
    /// Physical allocation per job (when placement is tracked).
    pub placements: HashMap<JobId, Vec<u32>>,
    /// Allocation diameter (max switch hops) per placed job.
    pub diameters: HashMap<JobId, u32>,
    /// Wall-clock end of the last job.
    pub makespan_s: f64,
}

/// Run `trace` (submission-ordered) under `policy`.
///
/// ```
/// use davide_sched::{
///     simulate, CapSchedule, EasyBackfill, SimConfig, WorkloadConfig, WorkloadGenerator,
/// };
///
/// let trace = WorkloadGenerator::new(WorkloadConfig::default(), 1).trace(20);
/// let out = simulate(
///     &trace,
///     &mut EasyBackfill::power_aware(),
///     SimConfig::davide().with_cap_schedule(CapSchedule::constant(70_000.0), true),
/// );
/// assert_eq!(out.completed.len(), 20);
/// assert_eq!(out.overcap_time_fraction(), 0.0);
/// ```
pub fn simulate(trace: &[Job], policy: &mut dyn Policy, config: SimConfig) -> SimOutcome {
    for j in trace {
        assert!(
            j.nodes <= config.total_nodes,
            "job {} wants {} nodes on a {}-node machine",
            j.id,
            j.nodes,
            config.total_nodes
        );
    }
    let mut pending: Vec<Job> = trace.to_vec();
    pending.reverse(); // pop from the back in submission order
    let mut queue: Vec<Job> = Vec::new();
    let mut running: Vec<Running> = Vec::new();
    let mut completed: Vec<Job> = Vec::new();
    let mut timeline: Vec<PowerSegment> = Vec::new();
    let mut job_energy: HashMap<JobId, f64> = HashMap::new();
    let mut placements: HashMap<JobId, Vec<u32>> = HashMap::new();
    let mut diameters: HashMap<JobId, u32> = HashMap::new();
    let mut pool = config
        .placement
        .map(|_| NodePool::new(FatTree::davide(config.total_nodes)));

    let mut now = 0.0_f64;
    let mut speed = 1.0_f64;
    let base_idle = config.total_nodes as f64 * config.idle_node_power_w;

    let system_power = |running: &[Running], speed: f64, cfg: &SimConfig| -> f64 {
        let extra: f64 = running
            .iter()
            .map(|r| r.job.nodes as f64 * (r.job.true_power_w - cfg.idle_node_power_w))
            .sum();
        base_idle + speed * extra.max(0.0)
    };

    let pick_speed = |running: &[Running], cfg: &SimConfig, now: f64| -> f64 {
        let extra: f64 = running
            .iter()
            .map(|r| r.job.nodes as f64 * (r.job.true_power_w - cfg.idle_node_power_w))
            .sum::<f64>()
            .max(0.0);
        match (cfg.cap.cap_at(now), cfg.reactive_capping) {
            (Some(cap), true) if extra > 0.0 && base_idle + extra > cap => {
                ((cap - base_idle) / extra).clamp(cfg.min_speed, 1.0)
            }
            _ => 1.0,
        }
    };

    loop {
        // Next event time: earliest arrival or earliest completion.
        let next_arrival = pending.last().map(|j| j.submit_s);
        let next_finish = running
            .iter()
            .map(|r| now + r.remaining_s / speed)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            });
        // Day/night cap boundaries wake the scheduler so queued jobs can
        // start when the envelope relaxes (and throttling can re-engage
        // when it tightens).
        let next_boundary = if !queue.is_empty() || !running.is_empty() {
            config.cap.next_cap_boundary(now)
        } else {
            None
        };
        let t = [next_arrival, next_finish, next_boundary]
            .into_iter()
            .flatten()
            .fold(f64::INFINITY, f64::min);
        if t.is_infinite() {
            break;
        }
        let t = t.max(now);

        // Advance running work and account energy over [now, t).
        let dt = t - now;
        if dt > 0.0 {
            let watts = system_power(&running, speed, &config);
            timeline.push(PowerSegment {
                t0: now,
                t1: t,
                watts,
                speed,
            });
            for r in &mut running {
                r.remaining_s -= dt * speed;
                let node_power = r.job.nodes as f64
                    * (config.idle_node_power_w
                        + speed * (r.job.true_power_w - config.idle_node_power_w).max(0.0));
                *job_energy.entry(r.job.id).or_insert(0.0) += node_power * dt;
            }
        }
        now = t;

        // Completions.
        let mut i = 0;
        while i < running.len() {
            if running[i].remaining_s <= 1e-6 {
                let mut r = running.swap_remove(i);
                r.job.end_s = Some(now);
                r.job.state = JobState::Completed;
                if let (Some(pool), Some(placed)) = (pool.as_mut(), r.placed_on.take()) {
                    pool.release(&placed);
                }
                completed.push(r.job);
            } else {
                i += 1;
            }
        }

        // Arrivals at time `now`.
        while pending.last().is_some_and(|j| j.submit_s <= now + 1e-9) {
            queue.push(pending.pop().expect("checked non-empty"));
        }

        // Dispatch.
        let used: u32 = running.iter().map(|r| r.job.nodes).sum();
        let view = ClusterView {
            now,
            free_nodes: config.total_nodes - used,
            total_nodes: config.total_nodes,
            running: running
                .iter()
                .map(|r| RunningSummary {
                    id: r.job.id,
                    nodes: r.job.nodes,
                    walltime_end_s: r.walltime_end_s,
                    predicted_power_w: r.job.predicted_total_power(),
                })
                .collect(),
            power_cap_w: config.cap.cap_at(now),
            idle_node_power_w: config.idle_node_power_w,
        };
        let starts = policy.select(&queue, &view);
        if !starts.is_empty() {
            let mut free = view.free_nodes;
            for id in starts {
                let pos = queue
                    .iter()
                    .position(|j| j.id == id)
                    .expect("policy returned a queued job id");
                let mut job = queue.remove(pos);
                assert!(job.nodes <= free, "policy over-allocated nodes");
                free -= job.nodes;
                job.state = JobState::Running;
                job.start_s = Some(now);
                let placed_on = match (pool.as_mut(), config.placement) {
                    (Some(pool), Some(strategy)) => {
                        let alloc = pool
                            .allocate(job.nodes, strategy)
                            .expect("policy guaranteed enough free nodes");
                        diameters.insert(job.id, pool.diameter(&alloc));
                        placements.insert(job.id, alloc.clone());
                        Some(alloc)
                    }
                    _ => None,
                };
                running.push(Running {
                    walltime_end_s: now + job.walltime_req_s,
                    remaining_s: job.true_runtime_s,
                    placed_on,
                    job,
                });
            }
        }

        // Reactive throttle for the next segment.
        speed = pick_speed(&running, &config, now);
    }

    completed.sort_by_key(|j| j.id);
    let makespan = completed.iter().filter_map(|j| j.end_s).fold(0.0, f64::max);
    SimOutcome {
        policy: policy.name(),
        config,
        completed,
        timeline,
        job_energy_j: job_energy,
        placements,
        diameters,
        makespan_s: makespan,
    }
}

impl SimOutcome {
    /// Mean allocation diameter over placed multi-node jobs.
    pub fn mean_allocation_diameter(&self) -> Option<f64> {
        let multi: Vec<u32> = self
            .completed
            .iter()
            .filter(|j| j.nodes > 1)
            .filter_map(|j| self.diameters.get(&j.id).copied())
            .collect();
        if multi.is_empty() {
            return None;
        }
        Some(multi.iter().map(|&d| d as f64).sum::<f64>() / multi.len() as f64)
    }
}

impl SimOutcome {
    /// Total energy of the run, joules (system power integrated).
    pub fn total_energy_j(&self) -> f64 {
        self.timeline.iter().map(|s| s.watts * (s.t1 - s.t0)).sum()
    }

    /// Fraction of time the system exceeded the (possibly time-varying)
    /// cap.
    pub fn overcap_time_fraction(&self) -> f64 {
        if self.config.cap.is_unlimited() {
            return 0.0;
        }
        let total: f64 = self.timeline.iter().map(|s| s.t1 - s.t0).sum();
        if total == 0.0 {
            return 0.0;
        }
        let over: f64 = self
            .timeline
            .iter()
            .filter(|s| {
                self.config
                    .cap
                    .cap_at(s.t0)
                    .is_some_and(|cap| s.watts > cap + 1e-6)
            })
            .map(|s| s.t1 - s.t0)
            .sum();
        over / total
    }

    /// Energy above the cap, joules (what the facility breaker sees).
    pub fn overcap_energy_j(&self) -> f64 {
        if self.config.cap.is_unlimited() {
            return 0.0;
        }
        self.timeline
            .iter()
            .map(|s| {
                let cap = self.config.cap.cap_at(s.t0).unwrap_or(f64::INFINITY);
                ((s.watts - cap).max(0.0)) * (s.t1 - s.t0)
            })
            .sum()
    }

    /// Peak system power, watts.
    pub fn peak_power_w(&self) -> f64 {
        self.timeline.iter().map(|s| s.watts).fold(0.0, f64::max)
    }

    /// Node-utilisation over the makespan.
    pub fn utilisation(&self) -> f64 {
        if self.makespan_s == 0.0 {
            return 0.0;
        }
        let node_seconds: f64 = self.completed.iter().filter_map(|j| j.node_seconds()).sum();
        node_seconds / (self.makespan_s * self.config.total_nodes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EasyBackfill, Fcfs};
    use davide_apps::workload::AppKind;

    fn job(id: JobId, nodes: u32, submit: f64, walltime: f64, runtime: f64, power: f64) -> Job {
        Job::new(
            id,
            1,
            AppKind::Bqcd,
            nodes,
            submit,
            walltime,
            runtime,
            power,
        )
    }

    fn small_config() -> SimConfig {
        SimConfig {
            total_nodes: 8,
            idle_node_power_w: 350.0,
            cap: CapSchedule::Unlimited,
            reactive_capping: false,
            min_speed: 0.35,
            placement: None,
        }
    }

    fn constant_cap(cap_w: f64, reactive: bool) -> SimConfig {
        small_config().with_cap_schedule(CapSchedule::constant(cap_w), reactive)
    }

    #[test]
    fn single_job_runs_exactly() {
        let trace = vec![job(1, 4, 10.0, 200.0, 100.0, 1500.0)];
        let out = simulate(&trace, &mut Fcfs, small_config());
        assert_eq!(out.completed.len(), 1);
        let j = &out.completed[0];
        assert_eq!(j.start_s, Some(10.0));
        assert!((j.end_s.unwrap() - 110.0).abs() < 1e-6);
        assert_eq!(j.state, JobState::Completed);
        assert!((out.makespan_s - 110.0).abs() < 1e-6);
    }

    #[test]
    fn jobs_queue_when_nodes_busy() {
        let trace = vec![
            job(1, 8, 0.0, 200.0, 100.0, 1500.0),
            job(2, 8, 1.0, 200.0, 100.0, 1500.0),
        ];
        let out = simulate(&trace, &mut Fcfs, small_config());
        let j2 = &out.completed[1];
        assert!((j2.start_s.unwrap() - 100.0).abs() < 1e-6, "waits for 1");
        assert!((j2.wait_s().unwrap() - 99.0).abs() < 1e-6);
    }

    #[test]
    fn backfill_beats_fcfs_on_makespan() {
        // Job 1 holds 6 of 8 nodes; the head of the queue (job 2) needs
        // all 8, so 2 nodes sit free until job 1 ends. A short narrow
        // job slips into that hole under EASY but not under strict FCFS.
        let trace = vec![
            job(1, 6, 0.0, 1000.0, 1000.0, 1500.0),
            job(2, 8, 1.0, 2000.0, 1000.0, 1500.0),
            job(3, 2, 2.0, 400.0, 400.0, 1500.0),
        ];
        let fcfs = simulate(&trace, &mut Fcfs, small_config());
        let easy = simulate(&trace, &mut EasyBackfill::new(), small_config());
        let wait_fcfs = fcfs.completed[2].wait_s().unwrap();
        let wait_easy = easy.completed[2].wait_s().unwrap();
        assert!(
            wait_easy < wait_fcfs,
            "backfill cuts job 3's wait: {wait_easy} vs {wait_fcfs}"
        );
    }

    #[test]
    fn energy_accounting_is_conservative() {
        let trace = vec![
            job(1, 4, 0.0, 200.0, 100.0, 1500.0),
            job(2, 2, 5.0, 300.0, 150.0, 1200.0),
        ];
        let out = simulate(&trace, &mut Fcfs, small_config());
        let per_job: f64 = out.job_energy_j.values().sum();
        let total = out.total_energy_j();
        assert!(
            per_job <= total + 1e-6,
            "job energy {per_job} cannot exceed system energy {total}"
        );
        // Job 1: 4 nodes × 1500 W × 100 s.
        let e1 = out.job_energy_j[&1];
        assert!((e1 - 4.0 * 1500.0 * 100.0).abs() < 1.0, "e1={e1}");
    }

    #[test]
    fn reactive_capping_stretches_jobs_but_respects_cap() {
        // 8 nodes at 2000 W = 16 kW actual; cap at 12 kW forces
        // throttling. base idle = 2.8 kW, extra = 8×1650 = 13.2 kW;
        // speed = (12000−2800)/13200 ≈ 0.697.
        let trace = vec![job(1, 8, 0.0, 2000.0, 700.0, 2000.0)];
        let capped = constant_cap(12_000.0, true);
        let out = simulate(&trace, &mut Fcfs, capped);
        let j = &out.completed[0];
        let runtime = j.end_s.unwrap() - j.start_s.unwrap();
        assert!(
            runtime > 700.0 * 1.4,
            "throttled job must stretch: {runtime}"
        );
        assert_eq!(out.overcap_time_fraction(), 0.0, "cap held");
        assert!(out.peak_power_w() <= 12_000.0 + 1e-6);
    }

    #[test]
    fn without_reactive_capping_cap_is_violated() {
        let trace = vec![job(1, 8, 0.0, 2000.0, 700.0, 2000.0)];
        let capped = constant_cap(12_000.0, false);
        let out = simulate(&trace, &mut Fcfs, capped);
        assert!(out.overcap_time_fraction() > 0.5);
        assert!(out.overcap_energy_j() > 0.0);
        // Job runs at full speed though.
        let j = &out.completed[0];
        assert!((j.end_s.unwrap() - j.start_s.unwrap() - 700.0).abs() < 1e-6);
    }

    #[test]
    fn timeline_is_contiguous_and_positive() {
        let trace = vec![
            job(1, 4, 0.0, 200.0, 100.0, 1500.0),
            job(2, 4, 50.0, 200.0, 100.0, 1500.0),
        ];
        let out = simulate(&trace, &mut Fcfs, small_config());
        for w in out.timeline.windows(2) {
            assert!((w[0].t1 - w[1].t0).abs() < 1e-9, "no gaps");
        }
        for s in &out.timeline {
            assert!(s.watts >= 8.0 * 350.0 - 1e-9, "at least idle floor");
            assert!(s.t1 > s.t0);
        }
    }

    #[test]
    fn utilisation_bounded() {
        let trace = vec![job(1, 8, 0.0, 100.0, 100.0, 1500.0)];
        let out = simulate(&trace, &mut Fcfs, small_config());
        let u = out.utilisation();
        assert!(
            (0.99..=1.0).contains(&u),
            "full machine for the whole run: {u}"
        );
    }

    #[test]
    fn day_night_cap_schedule() {
        let cfg =
            small_config().with_cap_schedule(CapSchedule::day_night(10_000.0, 20_000.0), true);
        // 09:00 → day cap; 23:00 → night cap.
        assert_eq!(cfg.cap.cap_at(9.0 * 3600.0), Some(10_000.0));
        assert_eq!(cfg.cap.cap_at(23.0 * 3600.0), Some(20_000.0));
        assert_eq!(cfg.cap.cap_at(86_400.0 + 3.0 * 3600.0), Some(20_000.0));
        // Boundaries are the next 08:00/20:00 after t.
        assert_eq!(cfg.cap.next_cap_boundary(0.0), Some(8.0 * 3600.0));
        assert_eq!(cfg.cap.next_cap_boundary(9.0 * 3600.0), Some(20.0 * 3600.0));
        assert_eq!(
            cfg.cap.next_cap_boundary(21.0 * 3600.0),
            Some(86_400.0 + 8.0 * 3600.0)
        );
        // Static config has no boundaries.
        assert_eq!(constant_cap(1.0, true).cap.next_cap_boundary(0.0), None);
    }

    #[test]
    fn night_relaxation_speeds_up_throttled_job() {
        // A hot job submitted at 08:00 under a tight day cap runs
        // throttled until 20:00, then at full speed. The same job under
        // an all-day tight cap finishes later.
        let submit = 8.0 * 3600.0;
        let hot = |id| job(id, 8, submit, 80_000.0, 50_000.0, 2000.0);
        let day_night = simulate(
            &[hot(1)],
            &mut Fcfs,
            small_config().with_cap_schedule(CapSchedule::day_night(12_000.0, 30_000.0), true),
        );
        let always_tight = simulate(&[hot(1)], &mut Fcfs, constant_cap(12_000.0, true));
        let end_dn = day_night.completed[0].end_s.unwrap();
        let end_tight = always_tight.completed[0].end_s.unwrap();
        assert!(
            end_dn < end_tight,
            "night relaxation must help: {end_dn} vs {end_tight}"
        );
        // And the day period was actually throttled.
        assert!(day_night
            .timeline
            .iter()
            .any(|s| s.speed < 0.999 && s.t0 < 20.0 * 3600.0));
        assert!(day_night
            .timeline
            .iter()
            .any(|s| s.speed > 0.999 && s.t0 >= 20.0 * 3600.0));
        assert_eq!(day_night.overcap_time_fraction(), 0.0);
    }

    #[test]
    fn aging_unblocks_starving_head() {
        use crate::policy::EasyBackfill;
        // A stream of hot 1-node jobs keeps the *power* occupied (nodes
        // stay free) and starves a power-hungry 2-node job; aging
        // freezes backfill so the power drains and the big job runs.
        let mut trace = vec![];
        // Smalls every 80 s with 190 s runtimes: at least two are always
        // running once the stream is warm.
        for i in 0..4u64 {
            trace.push(job(1 + i, 1, i as f64 * 80.0, 200.0, 190.0, 2000.0));
        }
        trace.push(job(100, 2, 250.0, 40_000.0, 10_000.0, 2000.0)); // big, hot
        for i in 4..40u64 {
            trace.push(job(1 + i, 1, i as f64 * 80.0, 200.0, 190.0, 2000.0));
        }
        // Idle floor 2.8 kW + 5.6 kW of headroom: the big job (3.3 kW
        // extra) fits only when at most one small (1.65 kW) is running.
        let cap = 8.0 * 350.0 + 5_600.0;
        let plain = simulate(
            &trace,
            &mut EasyBackfill::power_aware(),
            constant_cap(cap, true),
        );
        let aged = simulate(
            &trace,
            &mut EasyBackfill::power_aware().with_aging(500.0),
            constant_cap(cap, true),
        );
        let wait = |out: &SimOutcome| {
            out.completed
                .iter()
                .find(|j| j.id == 100)
                .unwrap()
                .wait_s()
                .unwrap()
        };
        assert!(
            wait(&aged) < wait(&plain),
            "aging must cut the big job's wait: {} vs {}",
            wait(&aged),
            wait(&plain)
        );
    }

    #[test]
    fn placement_tracking_and_leaf_locality() {
        use crate::policy::EasyBackfill;
        // A churny trace on the full 45-node machine; leaf-aware
        // placement keeps multi-node jobs inside leaves more often.
        let mut trace = Vec::new();
        let mut id = 0;
        for i in 0..60 {
            id += 1;
            let nodes = [2u32, 4, 8, 12][i % 4];
            trace.push(job(
                id,
                nodes,
                i as f64 * 120.0,
                2_000.0,
                600.0 + (i % 7) as f64 * 300.0,
                1500.0,
            ));
        }
        let base = SimConfig::davide();
        let ff = simulate(
            &trace,
            &mut EasyBackfill::new(),
            base.clone().with_placement(PlacementStrategy::FirstFit),
        );
        let la = simulate(
            &trace,
            &mut EasyBackfill::new(),
            base.with_placement(PlacementStrategy::LeafAware),
        );
        // Every multi-node job has a recorded allocation of its size.
        for j in &la.completed {
            let alloc = &la.placements[&j.id];
            assert_eq!(alloc.len() as u32, j.nodes);
        }
        let d_ff = ff.mean_allocation_diameter().unwrap();
        let d_la = la.mean_allocation_diameter().unwrap();
        assert!(
            d_la <= d_ff + 1e-9,
            "leaf-aware diameter {d_la} must not exceed first-fit {d_ff}"
        );
        // Timings are placement-independent in this model.
        assert_eq!(ff.makespan_s, la.makespan_s);
    }

    #[test]
    #[should_panic(expected = "nodes on a")]
    fn oversized_job_rejected() {
        let trace = vec![job(1, 99, 0.0, 100.0, 50.0, 1000.0)];
        simulate(&trace, &mut Fcfs, small_config());
    }
}
