//! Synthetic workload-trace generation.
//!
//! Substitutes for the production job traces the paper's predictors train
//! on: each user has a characteristic application mix and job geometry
//! (the regularity [17] exploits), interarrivals are Weibull (bursty),
//! runtimes log-normal around a fraction of the requested walltime, and
//! per-node power comes from the application model on the D.A.V.I.D.E.
//! node plus user/input variation.

use crate::job::Job;
use davide_apps::workload::{AppKind, AppModel};
use davide_core::node::ComputeNode;
use davide_core::rng::Rng;

/// Knobs of the trace generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of users.
    pub users: u32,
    /// Mean job interarrival time, seconds.
    pub mean_interarrival_s: f64,
    /// Weibull shape of interarrivals (<1 = bursty).
    pub burstiness: f64,
    /// Largest node count a job may request.
    pub max_nodes: u32,
    /// Mean requested walltime, seconds.
    pub mean_walltime_s: f64,
    /// Log-normal sigma of actual/requested runtime ratio.
    pub runtime_sigma: f64,
    /// Relative per-job power spread around the app model (input-size
    /// and user effects).
    pub power_spread: f64,
    /// Relative error of the submission-time power prediction
    /// (0 = oracle; ~0.10 matches [17]'s MAPE).
    pub prediction_error: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            users: 24,
            mean_interarrival_s: 120.0,
            burstiness: 0.7,
            max_nodes: 16,
            mean_walltime_s: 3.0 * 3600.0,
            runtime_sigma: 0.45,
            power_spread: 0.06,
            prediction_error: 0.10,
        }
    }
}

/// A user's habitual behaviour.
#[derive(Debug, Clone)]
struct UserProfile {
    app_weights: [f64; 4],
    /// Preferred job size exponent (jobs are 2^k nodes around this).
    size_bias: f64,
    /// The user's systematic power offset (their typical inputs).
    power_factor: f64,
}

/// Generates reproducible job traces.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    /// Configuration in force.
    pub config: WorkloadConfig,
    profiles: Vec<UserProfile>,
    app_power: [f64; 4],
    rng: Rng,
    next_id: u64,
    clock_s: f64,
}

impl WorkloadGenerator {
    /// New generator with deterministic `seed`.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        // Reference node for per-app mean power.
        let node = ComputeNode::davide(0);
        let app_power = [
            AppModel::quantum_espresso().mean_node_power(&node).0,
            AppModel::nemo().mean_node_power(&node).0,
            AppModel::specfem3d().mean_node_power(&node).0,
            AppModel::bqcd().mean_node_power(&node).0,
        ];
        let profiles = (0..config.users)
            .map(|_| {
                // Users concentrate on one or two applications.
                let favourite = rng.below(4) as usize;
                let mut w = [0.08; 4];
                w[favourite] = 1.0;
                w[rng.below(4) as usize] += 0.4;
                UserProfile {
                    app_weights: w,
                    size_bias: rng.uniform_in(0.0, (config.max_nodes as f64).log2()),
                    power_factor: 1.0 + rng.normal(0.0, config.power_spread),
                }
            })
            .collect();
        WorkloadGenerator {
            config,
            profiles,
            app_power,
            rng,
            next_id: 1,
            clock_s: 0.0,
        }
    }

    /// Generate the next job in submission order.
    pub fn next_job(&mut self) -> Job {
        let cfg = &self.config;
        // Arrival process.
        let gap = self.rng.weibull(
            cfg.burstiness,
            mean_to_weibull_scale(cfg.mean_interarrival_s, cfg.burstiness),
        );
        self.clock_s += gap;

        let user = self.rng.below(cfg.users as u64) as u32;
        let profile = &self.profiles[user as usize];
        let app_idx = self.rng.weighted_index(&profile.app_weights);
        let app = AppKind::ALL[app_idx];

        // Geometry: 2^k nodes around the user's habit.
        let k = (profile.size_bias + self.rng.normal(0.0, 0.8))
            .round()
            .clamp(0.0, (cfg.max_nodes as f64).log2());
        let nodes = (1u32 << k as u32).min(cfg.max_nodes);

        // Walltime request and true runtime.
        let walltime = self
            .rng
            .lognormal(cfg.mean_walltime_s.ln() - 0.25, 0.7)
            .clamp(600.0, 24.0 * 3600.0);
        // Users over-request: true runtime is a fraction of the request.
        let ratio = self.rng.lognormal(-0.7, cfg.runtime_sigma).clamp(0.05, 1.0);
        let runtime = (walltime * ratio).max(60.0);

        // Power: app mean × user factor × small per-job noise.
        let true_power = self.app_power[app_idx]
            * profile.power_factor
            * (1.0 + self.rng.normal(0.0, cfg.power_spread / 2.0));
        let predicted = true_power * (1.0 + self.rng.normal(0.0, cfg.prediction_error));

        let id = self.next_id;
        self.next_id += 1;
        let mut job = Job::new(
            id,
            user,
            app,
            nodes,
            self.clock_s,
            walltime,
            runtime,
            true_power,
        );
        job.predicted_power_w = predicted.max(200.0);
        job
    }

    /// Generate a whole trace of `n` jobs.
    pub fn trace(&mut self, n: usize) -> Vec<Job> {
        (0..n).map(|_| self.next_job()).collect()
    }
}

/// Weibull scale λ such that the mean is `mean` for shape `k`:
/// `mean = λ·Γ(1 + 1/k)`.
fn mean_to_weibull_scale(mean: f64, k: f64) -> f64 {
    mean / gamma_1p(1.0 / k)
}

/// Γ(1+x) via the Lanczos approximation (enough precision for scales).
fn gamma_1p(x: f64) -> f64 {
    // Γ(1+x) = x·Γ(x); use Lanczos for Γ(x+1) directly on small x.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let z = x; // computing Γ(z+1)
    let mut acc = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    (2.0 * std::f64::consts::PI).sqrt() * t.powf(z + 0.5) * (-t).exp() * acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(WorkloadConfig::default(), seed)
    }

    #[test]
    fn gamma_sanity() {
        assert!((gamma_1p(1.0) - 1.0).abs() < 1e-9, "Γ(2)=1");
        assert!((gamma_1p(0.0) - 1.0).abs() < 1e-9, "Γ(1)=1");
        assert!((gamma_1p(2.0) - 2.0).abs() < 1e-8, "Γ(3)=2");
        assert!((gamma_1p(0.5) - 0.886_226_925).abs() < 1e-6, "Γ(1.5)");
    }

    #[test]
    fn trace_is_deterministic() {
        let a = gen(42).trace(50);
        let b = gen(42).trace(50);
        assert_eq!(a, b);
        let c = gen(43).trace(50);
        assert_ne!(a, c);
    }

    #[test]
    fn submissions_are_time_ordered() {
        let trace = gen(1).trace(200);
        for w in trace.windows(2) {
            assert!(w[1].submit_s >= w[0].submit_s);
            assert_eq!(w[1].id, w[0].id + 1);
        }
    }

    #[test]
    fn interarrival_mean_matches_config() {
        let trace = gen(2).trace(4000);
        let span = trace.last().unwrap().submit_s - trace[0].submit_s;
        let mean = span / (trace.len() - 1) as f64;
        assert!(
            (mean - 120.0).abs() < 12.0,
            "mean interarrival {mean} vs configured 120"
        );
    }

    #[test]
    fn geometry_within_bounds() {
        let trace = gen(3).trace(1000);
        for j in &trace {
            assert!(j.nodes >= 1 && j.nodes <= 16);
            assert!(j.nodes.is_power_of_two());
            assert!(
                j.true_runtime_s <= j.walltime_req_s,
                "never exceeds request"
            );
            assert!(j.walltime_req_s >= 600.0);
        }
    }

    #[test]
    fn power_in_plausible_node_band() {
        let trace = gen(4).trace(1000);
        for j in &trace {
            assert!(
                (600.0..2400.0).contains(&j.true_power_w),
                "per-node power {} outside the DAVIDE envelope",
                j.true_power_w
            );
        }
    }

    #[test]
    fn prediction_error_tracks_config() {
        let cfg = WorkloadConfig {
            prediction_error: 0.10,
            ..Default::default()
        };
        let trace = WorkloadGenerator::new(cfg, 5).trace(4000);
        let mape: f64 = trace
            .iter()
            .map(|j| ((j.predicted_power_w - j.true_power_w) / j.true_power_w).abs())
            .sum::<f64>()
            / trace.len() as f64
            * 100.0;
        // Mean |N(0,0.1)| ≈ 8 %.
        assert!((6.0..11.0).contains(&mape), "mape={mape}");
    }

    #[test]
    fn oracle_mode_predicts_exactly() {
        let cfg = WorkloadConfig {
            prediction_error: 0.0,
            ..Default::default()
        };
        let trace = WorkloadGenerator::new(cfg, 6).trace(100);
        for j in &trace {
            let rel = ((j.predicted_power_w - j.true_power_w) / j.true_power_w).abs();
            assert!(rel < 1e-9);
        }
    }

    #[test]
    fn users_have_distinct_app_mixes() {
        let trace = gen(7).trace(5000);
        // Pick two heavy users and compare their dominant app.
        use std::collections::HashMap;
        let mut per_user: HashMap<u32, HashMap<&str, u32>> = HashMap::new();
        for j in &trace {
            *per_user
                .entry(j.user_id)
                .or_default()
                .entry(j.app.name())
                .or_default() += 1;
        }
        let dominant: Vec<&str> = per_user
            .values()
            .filter(|m| m.values().sum::<u32>() > 50)
            .map(|m| *m.iter().max_by_key(|(_, &c)| c).unwrap().0)
            .collect();
        let distinct: std::collections::HashSet<&str> = dominant.iter().copied().collect();
        assert!(distinct.len() >= 2, "users are not all alike");
    }
}
