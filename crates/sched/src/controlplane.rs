//! The closed power-control loop of Fig. 4, wired end to end: energy
//! gateways publish per-node power frames over MQTT, the control plane
//! folds them into a live cluster view, an online predictor ("EP")
//! corrects itself from measured job powers, and two actuators keep the
//! facility inside its envelope — the proactive dispatcher admits or
//! holds queued jobs against the cap schedule, and a reactive per-node
//! ladder controller steps DVFS down on sustained overcap and back up
//! when headroom returns.
//!
//! ```text
//!   EG frames ──MQTT──▶ ingest ──▶ ClusterView ──▶ dispatcher ──▶ starts
//!                         │            │
//!                         ▼            ▼
//!                       TsDb ──▶ OnlinePowerPredictor ("EP")
//!                         │
//!                         ▼
//!                  ladder capping ──MQTT──▶ node{NN}/ctl/speed
//! ```
//!
//! A node whose telemetry goes quiet past the configured deadline is
//! *stale*: the loop falls back to the predicted power of the job it
//! runs, keeps scheduling, and reports the degradation as
//! [`ControlPlaneReport::stale_node_s`].
//!
//! [`replay`] drives the whole loop against a synthetic plant for the
//! E22 experiment: open-loop (predict only), reactive-only, and the full
//! closed loop over the same trace and cap schedule.

use std::collections::HashMap;

use crate::cap::CapSchedule;
use crate::job::{Job, JobId};
use crate::policy::{ClusterView, EasyBackfill, Policy, RunningSummary};
use crate::power_predictor::OnlinePowerPredictor;
use davide_core::capping::{CapObs, LadderCapController};
use davide_core::units::{Seconds, Watts};
use davide_mqtt::{Broker, BrokerError, Client, QoS};
use davide_obs::{Counter, Gauge, Histogram, ObsHub, Stage};
use davide_telemetry::ingest::{DecodedFrame, FrameIngestor};
use davide_telemetry::tsdb::{Resolution, SeriesId, TsDb};

pub use replay::{replay, replay_instrumented, DropModel, ReplayConfig, ReplayObs};

/// Which halves of the loop are armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// Proactive dispatch on predictions only; telemetry is ignored and
    /// nothing throttles a node that overshoots.
    OpenLoop,
    /// Plain dispatch (no power admission test) plus reactive per-node
    /// capping from telemetry.
    ReactiveOnly,
    /// Both: predictive admission *corrected by telemetry* plus the
    /// reactive ladder as the safety net.
    ClosedLoop,
}

impl ControlMode {
    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            ControlMode::OpenLoop => "open-loop",
            ControlMode::ReactiveOnly => "reactive-only",
            ControlMode::ClosedLoop => "closed-loop",
        }
    }
}

/// Static configuration of a [`ControlPlane`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPlaneConfig {
    /// Which actuators run.
    pub mode: ControlMode,
    /// Compute nodes under control.
    pub n_nodes: u32,
    /// Facility power envelope over time.
    pub cap: CapSchedule,
    /// Idle draw per free node, watts.
    pub idle_node_power_w: f64,
    /// Admission inflates predicted job power by this fraction, so an
    /// underprediction must exceed the margin before the envelope is at
    /// risk.
    pub safety_margin: f64,
    /// Telemetry older than this is stale and the loop falls back to
    /// predictions for that node, seconds.
    pub telemetry_deadline_s: f64,
    /// Hysteresis band of the per-node ladder controller, watts.
    pub band_w: f64,
    /// Sustain time before a ladder move, seconds.
    pub sustain_s: f64,
    /// Dispatcher anti-starvation bound on head wait, seconds.
    pub max_head_wait_s: f64,
}

impl ControlPlaneConfig {
    /// D.A.V.I.D.E.-flavoured defaults for `n_nodes` nodes in `mode`
    /// under `cap`.
    ///
    /// The admission margin depends on the mode: open loop has nothing
    /// but the margin between a misprediction and an overcap, so it runs
    /// a thick one; the closed loop keeps only a sliver because the
    /// reactive ladder catches what admission gets wrong.
    pub fn davide(mode: ControlMode, n_nodes: u32, cap: CapSchedule) -> Self {
        ControlPlaneConfig {
            mode,
            n_nodes,
            cap,
            idle_node_power_w: 350.0,
            safety_margin: if mode == ControlMode::ClosedLoop {
                0.02
            } else {
                0.08
            },
            telemetry_deadline_s: 30.0,
            band_w: 40.0,
            sustain_s: 10.0,
            max_head_wait_s: 4.0 * 3600.0,
        }
    }
}

/// A dispatch decision returned by [`ControlPlane::tick`].
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Started job.
    pub job: JobId,
    /// Node ids allocated to it.
    pub nodes: Vec<u32>,
    /// Per-node power the predictor expects it to draw.
    pub predicted_node_w: f64,
}

/// End-of-run summary of one control-plane session. The energy-truth
/// fields (`total_energy_j`, `overcap_energy_j`, `overcap_s`) are filled
/// by the [`replay`] plant, which knows the ground-truth draw; the rest
/// comes from the loop itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlPlaneReport {
    /// Mode the loop ran in.
    pub mode: ControlMode,
    /// Jobs that ran to completion.
    pub jobs_completed: u64,
    /// First submit to last completion, seconds.
    pub makespan_s: f64,
    /// Mean queue wait of completed jobs, seconds.
    pub mean_wait_s: f64,
    /// Completed jobs per hour of makespan.
    pub throughput_jobs_per_h: f64,
    /// Ground-truth energy drawn by the plant, joules.
    pub total_energy_j: f64,
    /// Ground-truth energy above the cap schedule, joules.
    pub overcap_energy_j: f64,
    /// Ground-truth time spent above the cap, seconds.
    pub overcap_s: f64,
    /// Reactive ladder step-downs commanded.
    pub steps_down: u64,
    /// Reactive ladder step-ups commanded.
    pub steps_up: u64,
    /// Online MAPE (%) of the job-power predictions, measured as jobs
    /// complete against telemetry.
    pub online_mape_pct: f64,
    /// Node-seconds a busy node ran without fresh telemetry.
    pub stale_node_s: f64,
    /// Telemetry samples the store accepted.
    pub samples_stored: u64,
    /// Telemetry samples rejected as stale (duplicated or reordered
    /// delivery behind the series tail).
    pub samples_stale_dropped: u64,
    /// Job-completion mean-power windows whose telemetry was truncated
    /// by retention (the window starts before the earliest point the
    /// store still holds for that node). With tiering enabled the
    /// compressed tiers hold far more history, so this stays 0 much
    /// longer.
    pub truncated_mean_windows: u64,
}

/// Externally observable per-node state, for harnesses and invariant
/// checkers that need to compare the loop's live view against ground
/// truth without reaching into private fields.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    /// Node id.
    pub node: u32,
    /// End time of the last ingested frame; `NEG_INFINITY` before any.
    pub last_seen_s: f64,
    /// Mean power of the last ingested frame, watts.
    pub measured_w: f64,
    /// Speed factor the node's ladder controller currently commands.
    pub speed: f64,
    /// Ladder level (0 = nominal).
    pub level: usize,
    /// Job currently placed here.
    pub job: Option<JobId>,
}

/// Control-loop instruments: per-tick counters, the predictor-error
/// distribution, frame age at ingest, and the causal-trace stamps for
/// the loop-side pipeline stages (ingest append → predictor update →
/// scheduler tick → DVFS publish). One instance per [`ControlPlane`];
/// install with [`ControlPlane::set_obs`]. All metric handles are
/// pre-registered so the per-tick cost is pure atomics.
pub struct ControlPlaneObs {
    hub: ObsHub,
    cap: CapObs,
    ticks: Counter,
    frames: Counter,
    cap_retargets: Counter,
    samples_stored: Counter,
    samples_stale: Counter,
    predictor_abs_err_w: Histogram,
    frame_age_ns: Histogram,
    queue_jobs: Gauge,
    running_jobs: Gauge,
    /// Trace ids ingested this tick, closed when the tick retires.
    pending: Vec<u64>,
}

impl ControlPlaneObs {
    /// Control-loop instruments registered in `hub`'s registry.
    pub fn new(hub: &ObsHub) -> Self {
        let r = &hub.registry;
        ControlPlaneObs {
            cap: CapObs::new(r),
            ticks: r.counter("ctl_ticks_total"),
            frames: r.counter("ctl_frames_total"),
            cap_retargets: r.counter("ctl_cap_retargets_total"),
            samples_stored: r.counter("ctl_samples_stored_total"),
            samples_stale: r.counter("ctl_samples_stale_total"),
            predictor_abs_err_w: r.histogram("ctl_predictor_abs_err_w"),
            frame_age_ns: r.histogram("ctl_frame_age_ns"),
            queue_jobs: r.gauge("ctl_queue_jobs"),
            running_jobs: r.gauge("ctl_running_jobs"),
            hub: hub.clone(),
            pending: Vec::new(),
        }
    }

    /// One telemetry frame reached the store (`stored` of its samples
    /// accepted): stamp the ingest stage and record its age — the lag
    /// between the first sample's timestamp and the loop seeing it.
    fn on_frame(&mut self, f: &DecodedFrame, stored: usize) {
        let now = self.hub.clock.now_s();
        self.hub.tracer.stamp(f.trace_id, Stage::IngestAppend, now);
        self.pending.push(f.trace_id);
        self.frames.inc();
        self.samples_stored.add(stored as u64);
        self.samples_stale
            .add((f.frame.watts.len() - stored) as u64);
        let age = now - f.frame.t0_s;
        if age >= 0.0 {
            self.frame_age_ns.record((age * 1e9).round() as u64);
        }
    }

    /// Stamp `stage` on every frame ingested this tick.
    fn stamp_pending(&self, stage: Stage) {
        let now = self.hub.clock.now_s();
        for &id in &self.pending {
            self.hub.tracer.stamp(id, stage, now);
        }
    }

    /// Retire the tick: close every trace it ingested, folding the
    /// stage lags into the hub's latency histograms.
    fn close_tick(&mut self) {
        for id in self.pending.drain(..) {
            self.hub.tracer.close(id);
        }
    }
}

impl std::fmt::Debug for ControlPlaneObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlaneObs")
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

/// Per-node live state as the control plane sees it.
struct NodeState {
    /// Interned series of this node's total-power topic, once seen.
    series: Option<SeriesId>,
    /// End time of the last ingested frame; `NEG_INFINITY` before any.
    last_seen_s: f64,
    /// Mean power of the last ingested frame, watts.
    measured_w: f64,
    /// Reactive DVFS ladder for this node.
    controller: LadderCapController,
    /// Job currently placed here.
    job: Option<JobId>,
}

struct RunningJob {
    job: Job,
    nodes: Vec<u32>,
    start_s: f64,
}

/// The management-node control loop: one instance owns the telemetry
/// subscription, the time-series store, the online predictor, and both
/// actuators. Drive it with [`tick`](Self::tick).
pub struct ControlPlane {
    cfg: ControlPlaneConfig,
    ingest: FrameIngestor,
    ctl: Client,
    db: TsDb,
    nodes: Vec<NodeState>,
    queue: Vec<Job>,
    running: HashMap<JobId, RunningJob>,
    predictor: OnlinePowerPredictor,
    policy: EasyBackfill,
    last_tick_s: Option<f64>,
    first_submit_s: f64,
    last_end_s: f64,
    completed: u64,
    wait_sum_s: f64,
    steps_down: u64,
    steps_up: u64,
    stale_node_s: f64,
    samples_stored: u64,
    samples_stale_dropped: u64,
    truncated_mean_windows: u64,
    obs: Option<ControlPlaneObs>,
}

impl ControlPlane {
    /// Connect to `broker`, subscribe to every node's total-power topic,
    /// and arm the loop. `predictor` is the batch-trained "EP" model
    /// wrapped with its online corrector.
    pub fn new(
        broker: &Broker,
        cfg: ControlPlaneConfig,
        predictor: OnlinePowerPredictor,
    ) -> Result<Self, BrokerError> {
        Self::with_db(broker, cfg, predictor, TsDb::new())
    }

    /// [`ControlPlane::new`] with an injected telemetry store — the hook
    /// for running the loop over a tiered [`TsDb`] (the caller builds it
    /// from a [`davide_telemetry::TsDbConfig`], handling any disk-tier
    /// I/O error itself).
    pub fn with_db(
        broker: &Broker,
        cfg: ControlPlaneConfig,
        predictor: OnlinePowerPredictor,
        db: TsDb,
    ) -> Result<Self, BrokerError> {
        let ingest = FrameIngestor::subscribe(broker, "control-plane", &["davide/+/power/node"])?;
        let ctl = broker.connect("control-plane-actuator");
        let band = Watts(cfg.band_w);
        let nodes = (0..cfg.n_nodes)
            .map(|_| NodeState {
                series: None,
                last_seen_s: f64::NEG_INFINITY,
                measured_w: 0.0,
                controller: LadderCapController::power8(Watts(f64::INFINITY), band, cfg.sustain_s),
                job: None,
            })
            .collect();
        let policy = match cfg.mode {
            ControlMode::ReactiveOnly => EasyBackfill::new().with_aging(cfg.max_head_wait_s),
            _ => EasyBackfill::power_aware().with_aging(cfg.max_head_wait_s),
        };
        Ok(ControlPlane {
            cfg,
            ingest,
            ctl,
            db,
            nodes,
            queue: Vec::new(),
            running: HashMap::new(),
            predictor,
            policy,
            last_tick_s: None,
            first_submit_s: f64::INFINITY,
            last_end_s: 0.0,
            completed: 0,
            wait_sum_s: 0.0,
            steps_down: 0,
            steps_up: 0,
            stale_node_s: 0.0,
            samples_stored: 0,
            samples_stale_dropped: 0,
            truncated_mean_windows: 0,
            obs: None,
        })
    }

    /// The configuration the loop was armed with.
    pub fn config(&self) -> &ControlPlaneConfig {
        &self.cfg
    }

    /// Arm the loop-side instruments; uninstrumented loops pay nothing.
    pub fn set_obs(&mut self, obs: ControlPlaneObs) {
        self.obs = Some(obs);
    }

    /// Snapshot the per-node live view (one entry per node, in id
    /// order).
    pub fn snapshot(&self) -> Vec<NodeSnapshot> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeSnapshot {
                node: i as u32,
                last_seen_s: n.last_seen_s,
                measured_w: n.measured_w,
                speed: n.controller.speed(),
                level: n.controller.level(),
                job: n.job,
            })
            .collect()
    }

    /// Best current estimate of `node`'s draw at `now`: fresh telemetry
    /// within the deadline, otherwise the prediction for whatever runs
    /// there (the stale-telemetry fallback). `None` for unknown ids.
    pub fn node_estimate(&self, node: u32, now: f64) -> Option<f64> {
        self.nodes
            .get(node as usize)
            .map(|n| self.node_power_estimate(n, now))
    }

    /// The loop's current per-node power prediction for a running job,
    /// or `None` if the job is not running.
    pub fn predicted_power(&self, id: JobId) -> Option<f64> {
        self.running
            .get(&id)
            .map(|rj| self.predictor.predict(&rj.job))
    }

    /// Queue a job; its power prediction is (re)made by the loop's own
    /// predictor at submission time.
    pub fn submit(&mut self, mut job: Job) {
        job.predicted_power_w = self.predictor.predict(&job);
        self.first_submit_s = self.first_submit_s.min(job.submit_s);
        self.queue.push(job);
    }

    /// Jobs still waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Jobs currently placed on nodes.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Read access to the loop's telemetry store.
    pub fn db(&self) -> &TsDb {
        &self.db
    }

    /// Replace the cap schedule at runtime. A federated deployment
    /// grants each rack a share of the global budget and rebalances it
    /// live; both the admission envelope and the reactive ladder read
    /// the schedule through [`CapSchedule::cap_at`] every tick, so the
    /// swap takes effect on the next control period.
    pub fn set_cap_schedule(&mut self, cap: CapSchedule) {
        self.cfg.cap = cap;
        if let Some(obs) = &self.obs {
            obs.cap_retargets.inc();
        }
    }

    /// The cap the loop is enforcing at `now`, if any.
    pub fn cap_at(&self, now: f64) -> Option<f64> {
        self.cfg.cap.cap_at(now)
    }

    /// One control period at time `now`: ingest telemetry, absorb
    /// `completions` (job id, end time) into the predictor, run the
    /// reactive ladder, then dispatch. Returns the placements started
    /// this tick; speed commands go out on `davide/node{NN}/ctl/speed`.
    pub fn tick(&mut self, now: f64, completions: &[(JobId, f64)]) -> Vec<Placement> {
        let dt = now - self.last_tick_s.unwrap_or(now);
        self.last_tick_s = Some(now);

        self.ingest_telemetry();
        for &(id, end_s) in completions {
            self.complete(id, end_s);
        }
        if let Some(obs) = &self.obs {
            obs.ticks.inc();
            // Completions just trained the predictor on this tick's
            // telemetry: the frames' next causal hop.
            obs.stamp_pending(Stage::PredictorUpdate);
        }
        self.account_staleness(dt);
        if let Some(obs) = &self.obs {
            // The actuation pass (reactive ladder + dispatcher) begins.
            obs.stamp_pending(Stage::SchedulerTick);
        }
        if self.cfg.mode != ControlMode::OpenLoop {
            self.reactive_capping(now, dt);
        }
        let placements = self.dispatch(now);
        if let Some(obs) = &mut self.obs {
            obs.queue_jobs.set(self.queue.len() as f64);
            obs.running_jobs.set(self.running.len() as f64);
            obs.close_tick();
        }
        placements
    }

    /// Build the report for everything observed so far. Energy-truth
    /// fields are zero until a plant (the [`replay`] harness) fills
    /// them.
    pub fn report(&self) -> ControlPlaneReport {
        let makespan = if self.first_submit_s.is_finite() {
            (self.last_end_s - self.first_submit_s).max(0.0)
        } else {
            0.0
        };
        ControlPlaneReport {
            mode: self.cfg.mode,
            jobs_completed: self.completed,
            makespan_s: makespan,
            mean_wait_s: self.wait_sum_s / self.completed.max(1) as f64,
            throughput_jobs_per_h: if makespan > 0.0 {
                self.completed as f64 / (makespan / 3600.0)
            } else {
                0.0
            },
            total_energy_j: 0.0,
            overcap_energy_j: 0.0,
            overcap_s: 0.0,
            steps_down: self.steps_down,
            steps_up: self.steps_up,
            online_mape_pct: self.predictor.online_mape(),
            stale_node_s: self.stale_node_s,
            samples_stored: self.samples_stored,
            samples_stale_dropped: self.samples_stale_dropped,
            truncated_mean_windows: self.truncated_mean_windows,
        }
    }

    /// Drain the MQTT subscription into the store and the per-node live
    /// view.
    fn ingest_telemetry(&mut self) {
        for f in self.ingest.drain_frames() {
            let Some(node_id) = parse_power_topic(&f.topic) else {
                continue;
            };
            if node_id >= self.cfg.n_nodes {
                continue;
            }
            let id = self.db.resolve(&f.topic);
            let stored = self
                .db
                .append_frame_id(id, f.frame.t0_s, f.frame.dt_s, &f.frame.watts);
            self.samples_stored += stored as u64;
            self.samples_stale_dropped += (f.frame.watts.len() - stored) as u64;
            if let Some(obs) = &mut self.obs {
                obs.on_frame(&f, stored);
            }
            if stored == 0 {
                // Entirely stale (a duplicate or badly delayed frame):
                // the live view must not move backwards on it.
                continue;
            }
            let node = &mut self.nodes[node_id as usize];
            node.series = Some(id);
            node.last_seen_s = node
                .last_seen_s
                .max(f.frame.t0_s + f.frame.dt_s * f.frame.watts.len() as f64);
            node.measured_w = f.frame.mean_w();
        }
        // Seal/demote outside the append path; a no-op for untiered
        // stores.
        self.db.compact();
    }

    /// Retire a finished job: free its nodes and feed the telemetry-
    /// measured mean node power back into the predictor (closed loop) or
    /// just into the error ledger (other modes).
    fn complete(&mut self, id: JobId, end_s: f64) {
        let Some(rj) = self.running.remove(&id) else {
            return;
        };
        let mut mean_sum = 0.0;
        let mut measured_nodes = 0u32;
        for &n in &rj.nodes {
            let node = &mut self.nodes[n as usize];
            node.job = None;
            if let Some(series) = node.series {
                let (mean, coverage) =
                    self.db
                        .mean_id_with_coverage(series, Resolution::Raw, rj.start_s, end_s);
                if !coverage.is_complete() {
                    // Retention truncated the window: the mean is over
                    // partial history. Still usable, but accounted.
                    self.truncated_mean_windows += 1;
                }
                if let Some(m) = mean {
                    mean_sum += m;
                    measured_nodes += 1;
                }
            }
        }
        let observed_node_w = if measured_nodes > 0 {
            mean_sum / measured_nodes as f64
        } else {
            0.0
        };
        if let Some(obs) = &self.obs {
            if measured_nodes > 0 {
                let predicted = self.predictor.predict(&rj.job);
                obs.predictor_abs_err_w
                    .record((predicted - observed_node_w).abs().round() as u64);
            }
        }
        if self.cfg.mode == ControlMode::ClosedLoop {
            self.predictor.observe(&rj.job, observed_node_w);
        } else {
            self.predictor.record_error_only(&rj.job, observed_node_w);
        }
        self.completed += 1;
        self.wait_sum_s += rj.start_s - rj.job.submit_s;
        self.last_end_s = self.last_end_s.max(end_s);
    }

    /// Count node-seconds where a busy node has no fresh telemetry.
    fn account_staleness(&mut self, dt: f64) {
        let now = self.last_tick_s.unwrap_or(0.0);
        for node in &self.nodes {
            if node.job.is_some() && now - node.last_seen_s > self.cfg.telemetry_deadline_s {
                self.stale_node_s += dt;
            }
        }
    }

    /// Best current estimate of one node's draw: fresh telemetry if it
    /// is within the deadline, otherwise the prediction for whatever
    /// runs there (the stale-telemetry fallback).
    fn node_power_estimate(&self, node: &NodeState, now: f64) -> f64 {
        if now - node.last_seen_s <= self.cfg.telemetry_deadline_s {
            return node.measured_w;
        }
        match node.job.and_then(|id| self.running.get(&id)) {
            Some(rj) => self.predictor.predict(&rj.job),
            None => self.cfg.idle_node_power_w,
        }
    }

    /// The reactive half: split the instantaneous envelope across busy
    /// nodes and let each node's ladder controller chase its share.
    fn reactive_capping(&mut self, now: f64, dt: f64) {
        let Some(cap_w) = self.cfg.cap.cap_at(now) else {
            return;
        };
        if dt <= 0.0 {
            return;
        }
        let busy = self.nodes.iter().filter(|n| n.job.is_some()).count();
        if busy == 0 {
            return;
        }
        let free = self.nodes.len() - busy;
        let budget = ((cap_w - free as f64 * self.cfg.idle_node_power_w) / busy as f64)
            .max(self.cfg.idle_node_power_w);
        let mut commands = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            if node.job.is_none() {
                continue;
            }
            let node_w = if now - node.last_seen_s <= self.cfg.telemetry_deadline_s {
                node.measured_w
            } else {
                // Stale fallback: steer on the prediction rather than a
                // frozen sample.
                match node.job.and_then(|id| self.running.get(&id)) {
                    Some(rj) => self.predictor.predict(&rj.job),
                    None => self.cfg.idle_node_power_w,
                }
            };
            // Retarget only on material change so sustain timers keep
            // their state across ticks.
            if (node.controller.cap.0 - budget).abs() > 1.0 {
                node.controller.set_cap(Watts(budget));
            }
            let action = match &self.obs {
                Some(obs) => {
                    node.controller
                        .observe_instrumented(Watts(node_w), Seconds(dt), &obs.cap)
                }
                None => node.controller.observe(Watts(node_w), Seconds(dt)),
            };
            match action {
                -1 => {
                    self.steps_down += 1;
                    commands.push((i, node.controller.speed()));
                }
                1 => {
                    self.steps_up += 1;
                    commands.push((i, node.controller.speed()));
                }
                _ => {}
            }
        }
        let actuated = !commands.is_empty();
        for (i, speed) in commands {
            // Retained so a gateway that reconnects sees the live limit.
            let _ = self.ctl.publish(
                &speed_topic(i as u32),
                format!("{speed:.4}").into_bytes().into(),
                QoS::AtMostOnce,
                true,
            );
        }
        if actuated {
            if let Some(obs) = &self.obs {
                // The commands are derived from the cluster view this
                // tick's frames built: their final causal hop.
                obs.stamp_pending(Stage::DvfsPublish);
            }
        }
    }

    /// The proactive half: offer the queue to the policy against the
    /// live cluster view and place whatever it admits.
    fn dispatch(&mut self, now: f64) -> Vec<Placement> {
        let free_nodes: Vec<u32> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.job.is_none())
            .map(|(i, _)| i as u32)
            .collect();
        // The map iterates in per-process random order; sort so float
        // accumulation downstream (and thus every admission decision)
        // is reproducible run to run.
        let mut running: Vec<RunningSummary> = self
            .running
            .values()
            .map(|rj| {
                let live_w: f64 = rj
                    .nodes
                    .iter()
                    .map(|&n| self.node_power_estimate(&self.nodes[n as usize], now))
                    .sum();
                RunningSummary {
                    id: rj.job.id,
                    nodes: rj.job.nodes,
                    walltime_end_s: rj.start_s + rj.job.walltime_req_s,
                    predicted_power_w: live_w,
                }
            })
            .collect();
        running.sort_unstable_by_key(|r| r.id);
        let view = ClusterView {
            now,
            free_nodes: free_nodes.len() as u32,
            total_nodes: self.cfg.n_nodes,
            running,
            power_cap_w: self.cfg.cap.cap_at(now),
            idle_node_power_w: self.cfg.idle_node_power_w,
        };
        // Admission sees margin-inflated predictions; the placements
        // report the raw ones.
        let margin = 1.0 + self.cfg.safety_margin;
        let mut selection: Vec<Job> = Vec::with_capacity(self.queue.len());
        for job in &self.queue {
            if job.submit_s > now {
                break;
            }
            let mut j = job.clone();
            j.predicted_power_w = self.predictor.predict(job) * margin;
            selection.push(j);
        }
        let picks = self.policy.select(&selection, &view);

        let mut free_iter = free_nodes.into_iter();
        let mut placements = Vec::with_capacity(picks.len());
        for id in picks {
            let idx = self
                .queue
                .iter()
                .position(|j| j.id == id)
                .expect("policy picked a queued job");
            let mut job = self.queue.remove(idx);
            let assigned: Vec<u32> = free_iter.by_ref().take(job.nodes as usize).collect();
            assert_eq!(assigned.len(), job.nodes as usize, "policy respects free");
            job.predicted_power_w = self.predictor.predict(&job);
            for &n in &assigned {
                self.nodes[n as usize].job = Some(job.id);
            }
            placements.push(Placement {
                job: job.id,
                nodes: assigned.clone(),
                predicted_node_w: job.predicted_power_w,
            });
            self.running.insert(
                job.id,
                RunningJob {
                    job,
                    nodes: assigned,
                    start_s: now,
                },
            );
        }
        placements
    }
}

/// Topic a node's speed command goes out on.
pub fn speed_topic(node_id: u32) -> String {
    format!("davide/node{node_id:02}/ctl/speed")
}

/// Extract the node id from `davide/node{NN}/power/node`; `None` for
/// anything else (other channels are not subscribed, but a shared broker
/// may still route them here via wildcard overlap).
fn parse_power_topic(topic: &str) -> Option<u32> {
    let mut parts = topic.split('/');
    if parts.next() != Some("davide") {
        return None;
    }
    let node = parts.next()?.strip_prefix("node")?;
    if parts.next() != Some("power") || parts.next() != Some("node") || parts.next().is_some() {
        return None;
    }
    node.parse().ok()
}

/// Synthetic-plant replay of the full loop for E22: the plant renders
/// each node's true power (with drift the batch predictor has not seen),
/// publishes gateway frames over a real in-process broker, applies the
/// loop's DVFS commands, and accounts ground-truth energy against the
/// cap schedule.
pub mod replay {
    use super::*;
    use crate::power_predictor::PowerPredictor;
    use crate::workload::{WorkloadConfig, WorkloadGenerator};
    use davide_core::rng::Rng;
    use davide_mqtt::BrokerObs;
    use davide_obs::{ManualClock, OBS_FILTER};
    use davide_predictor::ModelKind;
    use davide_telemetry::gateway::{power_topic, SampleFrame, FRAME_MAGIC};
    use davide_telemetry::selfmon::SelfMonitor;
    use std::sync::Arc;

    /// Telemetry-loss injection: every node goes dark on a fixed cycle.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum DropModel {
        /// All frames delivered.
        None,
        /// Each node publishes nothing for `blackout_s` out of every
        /// `period_s`, phase-staggered by node id.
        Blackout {
            /// Cycle length, seconds.
            period_s: f64,
            /// Dark time per cycle, seconds.
            blackout_s: f64,
        },
    }

    /// Plant and trace parameters for one replay.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ReplayConfig {
        /// Loop configuration (mode, cap schedule, margins).
        pub control: ControlPlaneConfig,
        /// Jobs in the replayed trace.
        pub n_jobs: usize,
        /// Completed jobs used to batch-train the predictor first.
        pub n_history: usize,
        /// Control period, seconds.
        pub tick_s: f64,
        /// Gateway sample spacing inside a frame, seconds.
        pub sample_dt_s: f64,
        /// Workload shape.
        pub workload: WorkloadConfig,
        /// Batch model family for the base predictor.
        pub model: ModelKind,
        /// Per-app plant drift: true power is multiplied by the factor
        /// for the job's app — the regime change the batch model has
        /// not seen and the online corrector must learn.
        pub app_drift: [f64; 4],
        /// Multiplicative telemetry noise (1σ, relative).
        pub noise: f64,
        /// Telemetry-loss model.
        pub drop: DropModel,
        /// Fraction of gateway power frames the broker's fault hook
        /// drops in transit (0 = lossless). Unlike [`DropModel`], these
        /// frames *reach* the broker first, so the causal tracer
        /// accounts them as lost at the publish stage.
        pub p_frame_drop: f64,
        /// RNG seed for plant noise.
        pub seed: u64,
    }

    impl ReplayConfig {
        /// E22 defaults: `n_nodes` nodes under `cap` in `mode`, with a
        /// ±12 % per-app drift between history and plant.
        pub fn e22(mode: ControlMode, n_nodes: u32, cap: CapSchedule) -> Self {
            ReplayConfig {
                control: ControlPlaneConfig::davide(mode, n_nodes, cap),
                n_jobs: 160,
                n_history: 1200,
                tick_s: 5.0,
                sample_dt_s: 1.0,
                workload: WorkloadConfig {
                    max_nodes: n_nodes.min(8),
                    mean_interarrival_s: 90.0,
                    ..WorkloadConfig::default()
                },
                model: ModelKind::linreg(),
                app_drift: [1.12, 0.88, 1.10, 0.90],
                noise: 0.02,
                drop: DropModel::None,
                p_frame_drop: 0.0,
                seed: 2022,
            }
        }
    }

    /// A job on the plant: ground truth the control plane cannot see.
    struct PlantJob {
        nodes: Vec<u32>,
        /// True mean per-node power at full speed, after drift.
        node_w: f64,
        /// Work left, in nominal-speed seconds.
        remaining_s: f64,
        id: JobId,
    }

    /// Observability wiring for an instrumented replay: the shared hub
    /// whose clock the plant drives from virtual time, plus the
    /// self-telemetry store the registry is republished into over MQTT
    /// (`davide/obs/#` → ordinary ingest) during the run.
    pub struct ReplayObs {
        /// Registry + tracer + clock shared by every instrument site.
        pub hub: ObsHub,
        clock: Arc<ManualClock>,
        /// The stack's own metrics, round-tripped through the broker
        /// and the frame codec like any node's power telemetry.
        pub self_db: TsDb,
        /// Obs samples the self-telemetry loop ingested.
        pub self_samples: u64,
    }

    impl ReplayObs {
        /// Fresh wiring over a manual clock at t = 0.
        pub fn new() -> Self {
            let (hub, clock) = ObsHub::manual();
            ReplayObs {
                hub,
                clock,
                self_db: TsDb::new(),
                self_samples: 0,
            }
        }
    }

    impl Default for ReplayObs {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Run one full replay and return the report with ground-truth
    /// energy accounting filled in.
    pub fn replay(cfg: &ReplayConfig) -> ControlPlaneReport {
        replay_instrumented(cfg, None)
    }

    /// [`replay`] with the self-instrumentation stack armed: broker and
    /// control-plane instruments register in `obs.hub`, every stamp
    /// reads the plant's virtual clock (so same seed ⇒ bit-identical
    /// metrics), and the registry is periodically republished over the
    /// replay broker and re-ingested into [`ReplayObs::self_db`].
    pub fn replay_instrumented(
        cfg: &ReplayConfig,
        mut obs: Option<&mut ReplayObs>,
    ) -> ControlPlaneReport {
        let mut gen = WorkloadGenerator::new(cfg.workload.clone(), cfg.seed);
        let history = gen.trace(cfg.n_history);
        let mut trace = gen.trace(cfg.n_jobs);
        // The trace continues after the history; rebase arrivals to 0.
        let t_base = trace.first().map(|j| j.submit_s).unwrap_or(0.0);
        for j in &mut trace {
            j.submit_s -= t_base;
        }

        let base = PowerPredictor::from_kind(cfg.model, &history, cfg.workload.users as usize);
        let predictor = OnlinePowerPredictor::new(base, 0.995, 1000.0);

        let broker = Broker::new(1 << 16);
        if cfg.p_frame_drop > 0.0 {
            // Seeded in-transit loss on the gateway → broker hop, so
            // frames vanish *after* the publish-stage trace stamp.
            let p = cfg.p_frame_drop;
            let drop_rng = std::sync::Mutex::new(Rng::seed_from(cfg.seed ^ 0xd1b5_4a32));
            broker.set_fault_hook(Some(Box::new(move |topic: &str| {
                if topic.starts_with("davide/node")
                    && topic.contains("/power/")
                    && drop_rng.lock().unwrap().chance(p)
                {
                    davide_mqtt::PublishFate::Drop
                } else {
                    davide_mqtt::PublishFate::Deliver
                }
            })));
        }
        let mut cp = ControlPlane::new(&broker, cfg.control.clone(), predictor)
            .expect("subscribe on fresh broker");
        let mut selfmon = None;
        let mut obs_ingest = None;
        if let Some(o) = obs.as_mut() {
            broker.set_obs(Some(BrokerObs::new(
                &o.hub,
                Some(&FRAME_MAGIC.to_le_bytes()),
            )));
            cp.set_obs(ControlPlaneObs::new(&o.hub));
            // Self-telemetry loop: registry → MQTT → ingest, every 12
            // control periods.
            selfmon = Some(
                SelfMonitor::connect(&broker, "obs-selfmon", 12.0 * cfg.tick_s)
                    .expect("selfmon connect"),
            );
            obs_ingest = Some(
                FrameIngestor::subscribe(&broker, "obs-ingest", &[OBS_FILTER])
                    .expect("subscribe obs"),
            );
        }
        let mut ctl_watch = broker.connect("plant-gateways");
        ctl_watch
            .subscribe("davide/+/ctl/speed", QoS::AtMostOnce)
            .expect("subscribe ctl");
        let gateway = broker.connect("plant-publisher");

        let n_nodes = cfg.control.n_nodes;
        let idle_w = cfg.control.idle_node_power_w;
        let mut speeds = vec![1.0f64; n_nodes as usize];
        let mut node_draw_w = vec![idle_w; n_nodes as usize];
        let mut plant: Vec<PlantJob> = Vec::new();
        let drift = |job: &Job| cfg.app_drift[job.app as usize];
        let mut rng = Rng::seed_from(cfg.seed ^ 0x9e37_79b9);
        let by_id: HashMap<JobId, Job> = trace.iter().map(|j| (j.id, j.clone())).collect();

        let mut next_submit = 0usize;
        let mut total_energy_j = 0.0;
        let mut overcap_energy_j = 0.0;
        let mut overcap_s = 0.0;
        let mut t = 0.0f64;
        let samples = (cfg.tick_s / cfg.sample_dt_s).round().max(1.0) as usize;

        loop {
            // 0. Every obs stamp this iteration reads the plant's
            //    virtual clock.
            if let Some(o) = obs.as_mut() {
                o.clock.set(t);
            }

            // 1. Gateways publish the window [t − tick, t) they just
            //    measured, unless their blackout window swallows it.
            if t > 0.0 {
                let t0 = t - cfg.tick_s;
                for node in 0..n_nodes {
                    if in_blackout(cfg.drop, node, t0) {
                        continue;
                    }
                    let w = node_draw_w[node as usize];
                    let watts: Vec<f32> = (0..samples)
                        .map(|_| {
                            let n = 1.0 + cfg.noise * gauss(&mut rng);
                            (w * n).max(0.0) as f32
                        })
                        .collect();
                    let frame = SampleFrame {
                        t0_s: t0,
                        dt_s: cfg.sample_dt_s,
                        watts,
                    };
                    let _ = gateway.publish(
                        &power_topic(node, "node"),
                        frame.encode(),
                        QoS::AtMostOnce,
                        false,
                    );
                }
            }

            // 2. Arrivals up to now.
            while next_submit < trace.len() && trace[next_submit].submit_s <= t {
                cp.submit(trace[next_submit].clone());
                next_submit += 1;
            }

            // 3. Plant-side completions: progress accrued last tick.
            let mut completions = Vec::new();
            plant.retain(|pj| {
                if pj.remaining_s <= 1e-9 {
                    completions.push((pj.id, t));
                    for &n in &pj.nodes {
                        speeds[n as usize] = 1.0;
                    }
                    false
                } else {
                    true
                }
            });

            // 4. Control period.
            let placements = cp.tick(t, &completions);
            for p in &placements {
                let job = &by_id[&p.job];
                plant.push(PlantJob {
                    nodes: p.nodes.clone(),
                    node_w: job.true_power_w * drift(job),
                    remaining_s: job.true_runtime_s,
                    id: p.job,
                });
            }

            // 4b. Pump the stack's own metrics through the broker and
            //     drain them back like any other telemetry.
            if let Some(o) = obs.as_mut() {
                if let Some(mon) = selfmon.as_mut() {
                    mon.pump(t, &o.hub.registry);
                }
                if let Some(ing) = obs_ingest.as_mut() {
                    o.self_samples += ing.drain_into(&mut o.self_db) as u64;
                }
            }

            // 5. Apply DVFS commands the loop just published.
            for msg in ctl_watch.drain() {
                if let (Some(node), Ok(speed)) = (
                    parse_speed_topic(&msg.topic),
                    std::str::from_utf8(&msg.payload)
                        .unwrap_or("")
                        .parse::<f64>(),
                ) {
                    if node < n_nodes {
                        speeds[node as usize] = speed.clamp(0.1, 1.0);
                    }
                }
            }

            if next_submit >= trace.len() && plant.is_empty() && cp.queue_len() == 0 {
                break;
            }

            // 6. Advance the plant over [t, t + tick): dynamic draw
            //    scales with commanded speed, progress too.
            for w in node_draw_w.iter_mut() {
                *w = idle_w;
            }
            for pj in plant.iter_mut() {
                let speed = pj
                    .nodes
                    .iter()
                    .map(|&n| speeds[n as usize])
                    .fold(1.0, f64::min);
                for &n in &pj.nodes {
                    node_draw_w[n as usize] = idle_w + speed * (pj.node_w - idle_w).max(0.0);
                }
                pj.remaining_s -= cfg.tick_s * speed;
            }
            let sys_w: f64 = node_draw_w.iter().sum();
            total_energy_j += sys_w * cfg.tick_s;
            if let Some(cap) = cfg.control.cap.cap_at(t) {
                if sys_w > cap {
                    overcap_s += cfg.tick_s;
                    overcap_energy_j += (sys_w - cap) * cfg.tick_s;
                }
            }

            t += cfg.tick_s;
            assert!(
                t < 120.0 * 86_400.0,
                "replay failed to converge: queue={} plant={}",
                cp.queue_len(),
                plant.len()
            );
        }

        if let Some(o) = obs.as_mut() {
            // Whatever is still resident in the tracer never completed
            // its causal chain: account it as lost at its last stage.
            o.hub.tracer.flush();
        }
        let mut report = cp.report();
        report.total_energy_j = total_energy_j;
        report.overcap_energy_j = overcap_energy_j;
        report.overcap_s = overcap_s;
        report
    }

    fn in_blackout(drop: DropModel, node: u32, t: f64) -> bool {
        match drop {
            DropModel::None => false,
            DropModel::Blackout {
                period_s,
                blackout_s,
            } => {
                let phase = (t + node as f64 * 17.0).rem_euclid(period_s);
                phase < blackout_s
            }
        }
    }

    fn parse_speed_topic(topic: &str) -> Option<u32> {
        let mut parts = topic.split('/');
        if parts.next() != Some("davide") {
            return None;
        }
        let node = parts.next()?.strip_prefix("node")?;
        if parts.next() != Some("ctl") || parts.next() != Some("speed") || parts.next().is_some() {
            return None;
        }
        node.parse().ok()
    }

    /// Standard normal via Box–Muller on the plant RNG.
    fn gauss(rng: &mut Rng) -> f64 {
        let u1 = rng.uniform().max(1e-12);
        let u2 = rng.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::replay::{replay, DropModel, ReplayConfig};
    use super::*;
    use crate::power_predictor::PowerPredictor;
    use crate::workload::{WorkloadConfig, WorkloadGenerator};
    use davide_predictor::ModelKind;
    use davide_telemetry::gateway::{power_topic, SampleFrame};

    fn trained_predictor() -> OnlinePowerPredictor {
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 5);
        let history = gen.trace(800);
        let base = PowerPredictor::from_kind(ModelKind::linreg(), &history, 24);
        OnlinePowerPredictor::new(base, 0.995, 1000.0)
    }

    fn frame(w: f64, t0: f64, n: usize) -> SampleFrame {
        SampleFrame {
            t0_s: t0,
            dt_s: 1.0,
            watts: vec![w as f32; n],
        }
    }

    #[test]
    fn topic_parsers() {
        assert_eq!(parse_power_topic("davide/node07/power/node"), Some(7));
        assert_eq!(parse_power_topic("davide/node12/power/gpu0"), None);
        assert_eq!(parse_power_topic("davide/rack1/power/node"), None);
        assert_eq!(parse_power_topic("other/node01/power/node"), None);
        assert_eq!(speed_topic(3), "davide/node03/ctl/speed");
    }

    #[test]
    fn telemetry_folds_into_live_view_and_store() {
        let broker = Broker::new(4096);
        let cfg =
            ControlPlaneConfig::davide(ControlMode::ClosedLoop, 4, CapSchedule::constant(10_000.0));
        let mut cp = ControlPlane::new(&broker, cfg, trained_predictor()).unwrap();
        let gw = broker.connect("gw");
        gw.publish(
            &power_topic(2, "node"),
            frame(1500.0, 0.0, 5).encode(),
            QoS::AtMostOnce,
            false,
        )
        .unwrap();
        cp.tick(5.0, &[]);
        assert!((cp.nodes[2].measured_w - 1500.0).abs() < 1.0);
        assert_eq!(cp.nodes[2].last_seen_s, 5.0);
        let id = cp.db().lookup(&power_topic(2, "node")).unwrap();
        assert_eq!(cp.db().count_id(id), 5);
        // Other nodes untouched.
        assert!(cp.nodes[0].series.is_none());
    }

    #[test]
    fn stale_telemetry_falls_back_to_prediction() {
        let broker = Broker::new(4096);
        let mut cfg =
            ControlPlaneConfig::davide(ControlMode::ClosedLoop, 2, CapSchedule::constant(8_000.0));
        cfg.telemetry_deadline_s = 20.0;
        let mut cp = ControlPlane::new(&broker, cfg, trained_predictor()).unwrap();
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 9);
        let mut job = gen.trace(1).remove(0);
        job.submit_s = 0.0;
        job.nodes = 1;
        let jid = job.id;
        cp.submit(job);
        let placements = cp.tick(0.0, &[]);
        assert_eq!(placements.len(), 1, "empty machine admits the job");
        let node = placements[0].nodes[0] as usize;
        let predicted = placements[0].predicted_node_w;

        // Fresh frame: the live view uses the measurement.
        let gw = broker.connect("gw");
        gw.publish(
            &power_topic(node as u32, "node"),
            frame(999.0, 0.0, 5).encode(),
            QoS::AtMostOnce,
            false,
        )
        .unwrap();
        cp.tick(10.0, &[]);
        assert!((cp.node_power_estimate(&cp.nodes[node], 10.0) - 999.0).abs() < 1.0);
        assert_eq!(cp.report().stale_node_s, 0.0);

        // Silence past the deadline: estimate falls back to the
        // prediction and stale seconds accrue.
        cp.tick(60.0, &[]);
        let est = cp.node_power_estimate(&cp.nodes[node], 60.0);
        assert!(
            (est - predicted).abs() < 1e-9,
            "stale node reports prediction: {est} vs {predicted}"
        );
        assert!(cp.report().stale_node_s > 0.0);
        let _ = jid;
    }

    #[test]
    fn reactive_ladder_steps_down_and_publishes_command() {
        let broker = Broker::new(4096);
        let mut cfg = ControlPlaneConfig::davide(
            ControlMode::ReactiveOnly,
            1,
            CapSchedule::constant(1_000.0),
        );
        cfg.sustain_s = 10.0;
        let mut cp = ControlPlane::new(&broker, cfg, trained_predictor()).unwrap();
        let mut watch = broker.connect("watch");
        watch
            .subscribe("davide/+/ctl/speed", QoS::AtMostOnce)
            .unwrap();

        let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 9);
        let mut job = gen.trace(1).remove(0);
        job.submit_s = 0.0;
        job.nodes = 1;
        cp.submit(job);
        cp.tick(0.0, &[]);
        assert_eq!(cp.running_len(), 1);

        // Sustained 2 kW against a 1 kW budget must step the node down.
        let gw = broker.connect("gw");
        for k in 1..=6u32 {
            let t = k as f64 * 5.0;
            gw.publish(
                &power_topic(0, "node"),
                frame(2000.0, t - 5.0, 5).encode(),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
            cp.tick(t, &[]);
        }
        let r = cp.report();
        assert!(r.steps_down >= 1, "sustained overcap throttles: {r:?}");
        let msgs = watch.drain();
        assert!(
            msgs.iter().any(|m| m.topic == speed_topic(0)),
            "speed command published"
        );
    }

    #[test]
    fn open_loop_never_throttles() {
        let broker = Broker::new(4096);
        let cfg =
            ControlPlaneConfig::davide(ControlMode::OpenLoop, 1, CapSchedule::constant(500.0));
        let mut cp = ControlPlane::new(&broker, cfg, trained_predictor()).unwrap();
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 9);
        let mut job = gen.trace(1).remove(0);
        job.submit_s = 0.0;
        job.nodes = 1;
        cp.submit(job);
        cp.tick(0.0, &[]);
        let gw = broker.connect("gw");
        for k in 1..=10u32 {
            let t = k as f64 * 5.0;
            gw.publish(
                &power_topic(0, "node"),
                frame(3000.0, t - 5.0, 5).encode(),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
            cp.tick(t, &[]);
        }
        let r = cp.report();
        assert_eq!(r.steps_down, 0);
        assert_eq!(r.steps_up, 0);
    }

    #[test]
    fn completion_feeds_online_predictor() {
        let broker = Broker::new(4096);
        let cfg =
            ControlPlaneConfig::davide(ControlMode::ClosedLoop, 2, CapSchedule::constant(10_000.0));
        let mut cp = ControlPlane::new(&broker, cfg, trained_predictor()).unwrap();
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 9);
        let mut job = gen.trace(1).remove(0);
        job.submit_s = 0.0;
        job.nodes = 1;
        let jid = job.id;
        cp.submit(job);
        let p = cp.tick(0.0, &[]);
        let node = p[0].nodes[0];
        let gw = broker.connect("gw");
        for k in 1..=4u32 {
            let t = k as f64 * 5.0;
            gw.publish(
                &power_topic(node, "node"),
                frame(1700.0, t - 5.0, 5).encode(),
                QoS::AtMostOnce,
                false,
            )
            .unwrap();
            cp.tick(t, &[]);
        }
        assert_eq!(cp.predictor.updates(), 0);
        cp.tick(25.0, &[(jid, 25.0)]);
        assert_eq!(cp.predictor.updates(), 1, "measured power trains the EP");
        assert_eq!(cp.running_len(), 0);
        assert_eq!(cp.report().jobs_completed, 1);
    }

    #[test]
    fn replay_smoke_all_modes_complete_the_trace() {
        for mode in [
            ControlMode::OpenLoop,
            ControlMode::ReactiveOnly,
            ControlMode::ClosedLoop,
        ] {
            let mut cfg = ReplayConfig::e22(mode, 8, CapSchedule::constant(12_000.0));
            cfg.n_jobs = 25;
            cfg.n_history = 400;
            let r = replay(&cfg);
            assert_eq!(r.jobs_completed, 25, "{mode:?}: {r:?}");
            assert!(r.total_energy_j > 0.0);
            assert!(r.online_mape_pct > 0.0);
        }
    }

    #[test]
    fn instrumented_replay_is_bit_identical_and_populates_metrics() {
        use super::replay::{replay_instrumented, ReplayObs};
        let mk_cfg = || {
            let mut cfg =
                ReplayConfig::e22(ControlMode::ClosedLoop, 8, CapSchedule::constant(9_000.0));
            cfg.n_jobs = 15;
            cfg.n_history = 400;
            cfg
        };
        let run = || {
            let mut obs = ReplayObs::new();
            let r = replay_instrumented(&mk_cfg(), Some(&mut obs));
            (r, obs)
        };
        let (r1, o1) = run();
        let (r2, o2) = run();
        assert_eq!(r1, r2, "same seed ⇒ same report");
        assert_eq!(
            o1.hub.registry.render_text(),
            o2.hub.registry.render_text(),
            "same seed ⇒ bit-identical metrics exposition"
        );

        let reg = &o1.hub.registry;
        let counter = |n: &str| reg.find_counter(n).unwrap().get();
        assert!(counter("ctl_ticks_total") > 0);
        assert!(counter("ctl_frames_total") > 0);
        assert!(
            counter("obs_trace_completed_total") > 0,
            "frames complete the causal chain"
        );
        let e2e = reg.find_histogram("obs_trace_e2e_ns").unwrap().snapshot();
        assert!(e2e.count > 0, "control-loop latency is measured");
        assert!(
            reg.find_histogram("ctl_predictor_abs_err_w")
                .unwrap()
                .snapshot()
                .count
                > 0,
            "completions feed the predictor-error distribution"
        );

        // The self-telemetry loop round-tripped the registry through
        // the broker into a TsDb, like any node's power.
        assert!(o1.self_samples > 0);
        assert!(o1
            .self_db
            .lookup(&davide_obs::obs_topic("ctl_ticks_total"))
            .is_some());

        // Instrumentation must not change a single control decision.
        let plain = replay(&mk_cfg());
        assert_eq!(plain, r1, "instrumented and plain replays agree");
    }

    #[test]
    fn replay_blackout_accrues_stale_seconds_but_still_completes() {
        let mut cfg =
            ReplayConfig::e22(ControlMode::ClosedLoop, 8, CapSchedule::constant(12_000.0));
        cfg.n_jobs = 20;
        cfg.n_history = 400;
        cfg.drop = DropModel::Blackout {
            period_s: 300.0,
            blackout_s: 120.0,
        };
        let r = replay(&cfg);
        assert_eq!(r.jobs_completed, 20);
        assert!(
            r.stale_node_s > 0.0,
            "blackouts must surface as stale node-seconds: {r:?}"
        );
    }
}
