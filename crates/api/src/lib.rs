//! # davide-api
//!
//! The unified query front-end of the D.A.V.I.D.E. management node:
//! the one read-path surface through which accounting and monitoring
//! consumers see the cluster (§III-B of the paper describes the
//! management stack this front-end caps).
//!
//! Two layers:
//!
//! * [`service`] — [`QueryService`], a typed, versioned API over any
//!   [`davide_telemetry::SeriesRead`] store plus the scheduler's
//!   [`davide_sched::accounting::EnergyLedger`]: point/range/aggregate
//!   series queries with [`davide_telemetry::QueryCoverage`]
//!   provenance, per-user and per-job energy rollups, decimated job
//!   power profiles with phase detection, health and tier statistics.
//!   Aggregate answers are memoised in a watermark-invalidated LRU
//!   cache so repeated accounting queries never re-scan history.
//! * [`http`] — [`ApiServer`], a std-only blocking HTTP/1.1 server
//!   (thread pool over `TcpListener`, no async runtime) exposing the
//!   service at `/health`, `/metrics`, `/v1/query`,
//!   `/v1/rollup/{user,job}`, `/v1/profile/job` and the observability
//!   surface `/v1/trace/grants`, `/v1/obs/metrics`, `/v1/obs/flight`
//!   (cap-grant causal traces, the federation-wide counter rollup and
//!   the per-rack flight rings of attached
//!   [`ObsHub`](davide_obs::ObsHub)s — see
//!   [`QueryService::attach_rack_obs`]). Every JSON body is
//!   produced by the same deterministic serializer the typed layer
//!   uses, so an HTTP answer is bit-identical to the direct
//!   [`QueryService`] call it wraps — a property the differential
//!   tests in `tests/api_http.rs` enforce.
//!
//! [`types`] holds the request/response DTOs shared by both layers and
//! [`client`] a minimal keep-alive HTTP client used by the test suite
//! and the `loadgen` / `api_smoke` binaries.

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod service;
pub mod types;

pub use client::HttpClient;
pub use http::{ApiServer, ApiServerConfig, RunningServer};
pub use service::{CacheStats, JobIndex, JobRecord, QueryService, QueryServiceConfig};
pub use types::{
    ApiError, FlightEventDto, GrantEventDto, GrantSpanDto, HealthResponse, JobProfileRequest,
    JobProfileResponse, JobRollupRequest, JobRollupResponse, LatencyDto, ObsFlightResponse,
    ObsMetricsResponse, QueryOp, QueryRequest, QueryResponse, RackFlight, RackGrantTrace,
    SeriesAnswer, TraceGrantsResponse, UserRollup, UserRollupRequest, UserRollupResponse,
    API_VERSION,
};
