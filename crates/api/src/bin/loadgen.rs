//! HTTP load generator for experiment E27: boots a self-contained
//! store + [`QueryService`] + [`ApiServer`] in one process and hammers
//! it with keep-alive client threads issuing cached-aggregate queries.
//!
//! ```text
//! loadgen [--threads N] [--seconds S] [--workers W] [--ingest] [--smoke]
//! ```
//!
//! `--ingest` runs a concurrent writer appending telemetry frames to
//! the same store for the whole run, so the reported rate shows the
//! read path under ingest pressure. `--smoke` shrinks everything for
//! CI. Prints one summary line:
//!
//! ```text
//! loadgen: <total> requests in <s> s = <rate> req/s (<threads> threads, errors=<n>)
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use davide_api::{
    ApiServer, ApiServerConfig, HttpClient, QueryOp, QueryRequest, QueryService, QueryServiceConfig,
};
use davide_obs::ObsHub;
use davide_telemetry::gateway::power_topic;
use davide_telemetry::{Resolution, ShardedTsDb};

const NODES: u32 = 16;
const WINDOW_S: f64 = 60.0;

struct Args {
    threads: usize,
    seconds: f64,
    workers: usize,
    ingest: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        threads: 4,
        seconds: 5.0,
        workers: 4,
        ingest: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--threads" => a.threads = it.next().and_then(|v| v.parse().ok()).unwrap_or(a.threads),
            "--seconds" => a.seconds = it.next().and_then(|v| v.parse().ok()).unwrap_or(a.seconds),
            "--workers" => a.workers = it.next().and_then(|v| v.parse().ok()).unwrap_or(a.workers),
            "--ingest" => a.ingest = true,
            "--smoke" => {
                a.threads = 2;
                a.seconds = 1.0;
                a.workers = 2;
            }
            other => {
                eprintln!("loadgen: unknown flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    a.threads = a.threads.max(1);
    a.workers = a.workers.max(1);
    a.seconds = a.seconds.max(0.1);
    a
}

fn main() {
    let args = parse_args();
    let hub = ObsHub::monotonic();
    let svc = QueryService::over_store(
        ShardedTsDb::new(4, 1 << 16, 1 << 12),
        &hub,
        QueryServiceConfig::default(),
    );

    // Preload every node series with one minute of 1 kS/s power data.
    let watts: Vec<f32> = (0..60_000)
        .map(|i| 1500.0 + 250.0 * ((i as f32) * 0.002).sin())
        .collect();
    {
        let store = svc.store();
        let mut store = store.write();
        for node in 0..NODES {
            store.append_frame(&power_topic(node, "node"), 0.0, 1e-3, &watts);
        }
    }

    let server = ApiServer::start(
        svc.clone(),
        ApiServerConfig {
            workers: args.workers,
            ..ApiServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));

    // Optional concurrent ingest: frames appended past the preloaded
    // window so running queries keep their cached answers valid while
    // the store genuinely absorbs writes.
    let ingest_thread = args.ingest.then(|| {
        let stop = stop.clone();
        let store = svc.store();
        std::thread::spawn(move || {
            let chunk: Vec<f32> = vec![1500.0; 4096];
            let mut t = WINDOW_S;
            while !stop.load(Ordering::Relaxed) {
                {
                    let mut s = store.write();
                    for node in 0..NODES {
                        s.append_frame(&power_topic(node, "ingest"), t, 1e-3, &chunk);
                    }
                }
                t += chunk.len() as f64 * 1e-3;
            }
        })
    });

    let t_start = Instant::now();
    let deadline = t_start + Duration::from_secs_f64(args.seconds);
    let bodies: Vec<String> = (0..NODES)
        .map(|node| {
            let q = QueryRequest::series(
                QueryOp::Mean,
                &power_topic(node, "node"),
                Resolution::Raw,
                0.0,
                WINDOW_S,
            );
            serde_json::to_string(&q.to_value())
        })
        .collect();

    let mut clients = Vec::with_capacity(args.threads);
    for tid in 0..args.threads {
        let requests = requests.clone();
        let errors = errors.clone();
        let bodies = bodies.clone();
        clients.push(std::thread::spawn(move || {
            let mut c = HttpClient::connect(addr).expect("client connect");
            let mut i = tid;
            while Instant::now() < deadline {
                let body = &bodies[i % bodies.len()];
                i += 1;
                match c.request("POST", "/v1/query", body) {
                    Ok((200, _)) => {
                        requests.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) | Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        // The server closes on errors; reconnect.
                        if let Ok(nc) = HttpClient::connect(addr) {
                            c = nc;
                        }
                    }
                }
            }
        }));
    }
    for t in clients {
        let _ = t.join();
    }
    let elapsed = t_start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(t) = ingest_thread {
        let _ = t.join();
    }
    server.stop();

    let total = requests.load(Ordering::Relaxed);
    let errs = errors.load(Ordering::Relaxed);
    println!(
        "loadgen: {total} requests in {elapsed:.2} s = {:.0} req/s ({} threads, errors={errs})",
        total as f64 / elapsed,
        args.threads,
    );
    if errs > 0 {
        std::process::exit(1);
    }
}
