//! End-to-end smoke check of the query front-end, wired into CI next
//! to the e22/e24/e25/e26 smoke steps.
//!
//! Boots a sharded store + simulated accounting state behind a
//! [`QueryService`], starts the HTTP server, and exercises every
//! endpoint through the real socket — including the differential
//! property (HTTP body == direct service answer, byte for byte) and
//! the error paths. Exits nonzero on the first failed check.

use std::process::ExitCode;

use davide_api::{
    ApiServer, ApiServerConfig, HttpClient, JobProfileRequest, JobRollupRequest, QueryRequest,
    QueryService, QueryServiceConfig, UserRollupRequest,
};
use davide_obs::ObsHub;
use davide_sched::{
    simulate, Fcfs, PlacementStrategy, SimConfig, WorkloadConfig, WorkloadGenerator,
};
use davide_telemetry::gateway::power_topic;
use davide_telemetry::{Resolution, ShardedTsDb};

fn check(ok: bool, what: &str) -> bool {
    if ok {
        println!("  ok: {what}");
    } else {
        println!("  FAIL: {what}");
    }
    ok
}

fn main() -> ExitCode {
    println!("api_smoke: building store + accounting state");
    let hub = ObsHub::monotonic();
    let svc = QueryService::over_store(
        ShardedTsDb::new(4, 1 << 16, 1 << 12),
        &hub,
        QueryServiceConfig::default(),
    );

    // A small simulated campaign feeds the ledger and the job index.
    let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 0xD1CE);
    let trace = gen.trace(16);
    let outcome = simulate(
        &trace,
        &mut Fcfs,
        SimConfig::davide().with_placement(PlacementStrategy::FirstFit),
    );
    svc.ingest_outcome(&outcome, |n| power_topic(n, "node"));

    // Telemetry covering the first completed job's runtime window, so
    // measured rollups and profiles have something to integrate.
    let Some(job) = outcome
        .completed
        .iter()
        .find(|j| outcome.placements.get(&j.id).is_some_and(|p| !p.is_empty()))
    else {
        println!("  FAIL: simulation produced no placed job");
        return ExitCode::FAILURE;
    };
    let (t0, t1) = (job.start_s.unwrap_or(0.0), job.end_s.unwrap_or(0.0));
    let dt = ((t1 - t0) / 512.0).max(1e-3);
    let watts: Vec<f32> = (0..512)
        .map(|i| 1500.0 + 200.0 * ((i as f32) * 0.05).sin())
        .collect();
    {
        let store = svc.store();
        let mut store = store.write();
        for &node in &outcome.placements[&job.id] {
            store.append_frame(&power_topic(node, "node"), t0, dt, &watts);
        }
    }
    let series = power_topic(outcome.placements[&job.id][0], "node");

    let server = match ApiServer::start(svc.clone(), ApiServerConfig::default()) {
        Ok(s) => s,
        Err(e) => {
            println!("  FAIL: server did not start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("api_smoke: serving on {}", server.addr());
    let mut client = match HttpClient::connect(server.addr()) {
        Ok(c) => c,
        Err(e) => {
            println!("  FAIL: client did not connect: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ok = true;
    let run = |c: &mut HttpClient, method: &str, path: &str, body: &str| -> (u16, String) {
        c.request(method, path, body)
            .unwrap_or_else(|e| panic!("{method} {path}: transport error: {e}"))
    };

    // --- happy paths, each checked against the direct service call.
    let (status, body) = run(&mut client, "GET", "/health", "");
    ok &= check(status == 200, "GET /health is 200");
    ok &= check(
        body == serde_json::to_string(&svc.health().to_value()),
        "health body matches direct call",
    );

    let (status, body) = run(&mut client, "GET", "/metrics", "");
    ok &= check(status == 200, "GET /metrics is 200");
    ok &= check(
        body.contains("api_requests_total"),
        "metrics expose api counters",
    );

    let q = QueryRequest::series(davide_api::QueryOp::Mean, &series, Resolution::Raw, t0, t1);
    let (status, body) = run(
        &mut client,
        "POST",
        "/v1/query",
        &serde_json::to_string(&q.to_value()),
    );
    ok &= check(status == 200, "POST /v1/query is 200");
    let direct = serde_json::to_string(&svc.query(&q).expect("direct query").to_value());
    ok &= check(body == direct, "query body bit-identical to direct call");
    ok &= check(
        svc.cache_stats().hits >= 1,
        "repeated aggregate hit the rollup cache",
    );

    let filter_q = QueryRequest::filter(
        davide_api::QueryOp::Energy,
        "davide/+/power/node",
        Resolution::Raw,
        t0,
        t1,
    );
    let (status, body) = run(
        &mut client,
        "POST",
        "/v1/query",
        &serde_json::to_string(&filter_q.to_value()),
    );
    ok &= check(status == 200, "filter query is 200");
    ok &= check(
        body == serde_json::to_string(&svc.query(&filter_q).expect("filter").to_value()),
        "filter body bit-identical to direct call",
    );

    let r = UserRollupRequest { user_id: None };
    let (status, body) = run(
        &mut client,
        "POST",
        "/v1/rollup/user",
        &serde_json::to_string(&r.to_value()),
    );
    ok &= check(status == 200, "POST /v1/rollup/user is 200");
    let direct = svc.rollup_user(&r).expect("direct rollup");
    ok &= check(
        body == serde_json::to_string(&direct.to_value()),
        "user rollup bit-identical to direct call",
    );
    ok &= check(!direct.users.is_empty(), "user rollup is populated");

    let r = JobRollupRequest {
        job_id: job.id,
        measured: true,
    };
    let (status, body) = run(
        &mut client,
        "POST",
        "/v1/rollup/job",
        &serde_json::to_string(&r.to_value()),
    );
    ok &= check(status == 200, "POST /v1/rollup/job is 200");
    let direct = svc.rollup_job(&r).expect("direct job rollup");
    ok &= check(
        body == serde_json::to_string(&direct.to_value()),
        "job rollup bit-identical to direct call",
    );
    ok &= check(
        direct.measured_energy_j.unwrap_or(0.0) > 0.0,
        "measured job energy integrates to > 0",
    );

    let r = JobProfileRequest {
        job_id: job.id,
        decimate: 8,
    };
    let (status, body) = run(
        &mut client,
        "POST",
        "/v1/profile/job",
        &serde_json::to_string(&r.to_value()),
    );
    ok &= check(status == 200, "POST /v1/profile/job is 200");
    let direct = svc.profile_job(&r).expect("direct profile");
    ok &= check(
        body == serde_json::to_string(&direct.to_value()),
        "profile bit-identical to direct call",
    );
    ok &= check(
        direct.profiles.iter().all(|p| !p.watts.is_empty()),
        "profiles carry decimated samples",
    );

    // --- error paths (each answer closes the connection; reconnect).
    let (status, _) = run(&mut client, "POST", "/v1/query", "{not json");
    ok &= check(status == 400, "invalid JSON body is 400");
    let mut client = HttpClient::connect(server.addr()).expect("reconnect");
    let (status, _) = run(&mut client, "GET", "/v1/nope", "");
    ok &= check(status == 404, "unknown path is 404");
    let (status, _) = run(&mut client, "GET", "/v1/query", "");
    ok &= check(status == 405, "GET on a POST endpoint is 405");

    server.stop();
    if ok {
        println!("api_smoke: PASS");
        ExitCode::SUCCESS
    } else {
        println!("api_smoke: FAIL");
        ExitCode::FAILURE
    }
}
