//! Minimal blocking HTTP/1.1 client for tests, `api_smoke` and
//! `loadgen`.
//!
//! Speaks exactly the dialect the server emits: `Content-Length`
//! framed bodies over a keep-alive connection. Not a general HTTP
//! client — it exists so the conformance and differential tests need
//! no external tooling.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A keep-alive connection to one server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            stream,
            buf: Vec::with_capacity(1024),
        })
    }

    /// Issue one request and read the full response body.
    ///
    /// Returns `(status, body)`. The connection stays usable for the
    /// next request unless the server answered `Connection: close`.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Write raw bytes to the socket (for conformance tests that need
    /// to send malformed traffic) and attempt to read one response.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<(u16, String)> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(true)
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            if !self.fill()? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response headers",
                ));
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
        self.buf.drain(..header_end + 4);
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
        }
        while self.buf.len() < content_length {
            if !self.fill()? {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
        }
        let body = String::from_utf8_lossy(&self.buf[..content_length]).into_owned();
        self.buf.drain(..content_length);
        Ok((status, body))
    }
}

impl std::fmt::Debug for HttpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpClient").finish_non_exhaustive()
    }
}
