//! Std-only HTTP/1.1 front-end over [`QueryService`].
//!
//! No async runtime exists in `vendor/`, and none is needed: the
//! server is a blocking accept loop fanning connections out to a
//! fixed thread pool over a bounded crossbeam channel (the same
//! backpressure shape as the MQTT broker). Each worker owns a clone of
//! the service (all state is `Arc`-shared) and serves keep-alive
//! request streams until the peer closes or asks to.
//!
//! The parser is deliberately paranoid — request lines, header blocks
//! and bodies are all hard-capped, partial reads never panic, and any
//! violation maps to a definite 4xx or a silent drop:
//!
//! | violation | answer |
//! |---|---|
//! | malformed request line / headers | 400, close |
//! | header block over [`ApiServerConfig::max_header_bytes`] | 431, close |
//! | body over [`ApiServerConfig::max_body_bytes`] | 413, close |
//! | truncated body (peer died mid-request) | drop connection |
//! | unknown path | 404 |
//! | known path, wrong method | 405 + `Allow` |

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use davide_telemetry::SeriesRead;

use crate::service::QueryService;
use crate::types::{
    ApiError, JobProfileRequest, JobRollupRequest, QueryRequest, UserRollupRequest, API_VERSION,
};

/// Server limits and sizing.
#[derive(Debug, Clone)]
pub struct ApiServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Pending-connection queue depth (accept blocks the peer beyond
    /// this).
    pub queue_depth: usize,
    /// Cap on request line + headers, bytes.
    pub max_header_bytes: usize,
    /// Cap on a request body, bytes.
    pub max_body_bytes: usize,
}

impl Default for ApiServerConfig {
    fn default() -> Self {
        ApiServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 1024,
            max_header_bytes: 8192,
            max_body_bytes: 1 << 20,
        }
    }
}

/// A started server; dropping it (or calling [`RunningServer::stop`])
/// shuts the listener and joins every worker.
pub struct RunningServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal shutdown and join the accept loop and every worker.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RunningServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// The HTTP front-end: binds, spawns the pool, serves until stopped.
pub struct ApiServer;

impl ApiServer {
    /// Bind and start serving `service` on `cfg.addr`.
    pub fn start<S>(service: QueryService<S>, cfg: ApiServerConfig) -> io::Result<RunningServer>
    where
        S: SeriesRead + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(cfg.queue_depth.max(1));

        let mut threads = Vec::with_capacity(cfg.workers + 1);
        for _ in 0..cfg.workers.max(1) {
            let rx = rx.clone();
            let svc = service.clone();
            let cfg = cfg.clone();
            let stop = stop.clone();
            threads.push(std::thread::spawn(move || loop {
                match rx.recv_timeout(Duration::from_millis(50)) {
                    Ok(stream) => serve_connection(stream, &svc, &cfg),
                    Err(_) => {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }));
        }

        let stop_accept = stop.clone();
        threads.push(std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop_accept.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // send() blocks when the queue is full: backpressure
                    // lands on the unaccepted-connection backlog.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
        }));

        Ok(RunningServer {
            addr,
            stop,
            threads,
        })
    }
}

/// Why a request could not be read.
enum ReadError {
    /// Clean end of stream between requests.
    Eof,
    /// I/O failure or peer death mid-request.
    Io,
    /// Protocol violation with the status to answer before closing.
    Bad(u16),
}

struct Request {
    method: String,
    path: String,
    http11: bool,
    close: bool,
    body: Vec<u8>,
}

/// Buffered connection reader surviving across keep-alive requests.
struct ConnReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ConnReader {
    /// Pull more bytes; `Ok(false)` on clean EOF.
    fn fill(&mut self) -> io::Result<bool> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(false);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(true)
    }

    /// Read one full request (header block + body) off the stream.
    fn read_request(&mut self, cfg: &ApiServerConfig) -> Result<Request, ReadError> {
        // Accumulate until the blank line ending the header block.
        let header_end = loop {
            if let Some(pos) = find_subslice(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            if self.buf.len() > cfg.max_header_bytes {
                return Err(ReadError::Bad(431));
            }
            match self.fill() {
                Ok(true) => {}
                Ok(false) => {
                    return if self.buf.is_empty() {
                        Err(ReadError::Eof)
                    } else {
                        // Peer died mid-header: nothing sane to answer.
                        Err(ReadError::Io)
                    };
                }
                Err(_) => return Err(ReadError::Io),
            }
        };
        if header_end > cfg.max_header_bytes {
            return Err(ReadError::Bad(431));
        }
        let head = self.buf[..header_end].to_vec();
        self.buf.drain(..header_end + 4);
        let head = match std::str::from_utf8(&head) {
            Ok(s) => s,
            Err(_) => return Err(ReadError::Bad(400)),
        };
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
                (m.to_string(), p.to_string(), v)
            }
            _ => return Err(ReadError::Bad(400)),
        };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return Err(ReadError::Bad(400)),
        };

        let mut content_length: usize = 0;
        let mut close = !http11;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(ReadError::Bad(400));
            };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => return Err(ReadError::Bad(400)),
                };
            } else if name.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
        if content_length > cfg.max_body_bytes {
            return Err(ReadError::Bad(413));
        }
        while self.buf.len() < content_length {
            match self.fill() {
                Ok(true) => {}
                // Truncated body: the peer died mid-request. There is
                // no answer that helps; drop the connection.
                Ok(false) | Err(_) => return Err(ReadError::Io),
            }
        }
        let body = self.buf[..content_length].to_vec();
        self.buf.drain(..content_length);
        Ok(Request {
            method,
            path,
            http11,
            close,
            body,
        })
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

struct Reply {
    status: u16,
    body: String,
    content_type: &'static str,
    allow: Option<&'static str>,
}

impl Reply {
    fn json(status: u16, body: String) -> Self {
        Reply {
            status,
            body,
            content_type: "application/json",
            allow: None,
        }
    }

    fn error(err: &ApiError) -> Self {
        Reply::json(err.status(), serde_json::to_string(&err.to_value()))
    }

    fn method_not_allowed(allow: &'static str) -> Self {
        Reply {
            status: 405,
            body: format!(r#"{{"error":"method not allowed","version":"{API_VERSION}"}}"#),
            content_type: "application/json",
            allow: Some(allow),
        }
    }
}

fn write_reply(stream: &mut TcpStream, reply: &Reply, http11: bool, close: bool) -> io::Result<()> {
    let version = if http11 { "HTTP/1.1" } else { "HTTP/1.0" };
    let mut head = format!(
        "{version} {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        reply.status,
        reason(reply.status),
        reply.content_type,
        reply.body.len()
    );
    if let Some(allow) = reply.allow {
        head.push_str("Allow: ");
        head.push_str(allow);
        head.push_str("\r\n");
    }
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(reply.body.as_bytes())?;
    stream.flush()
}

fn serve_connection<S: SeriesRead>(
    stream: TcpStream,
    svc: &QueryService<S>,
    cfg: &ApiServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let mut reader = ConnReader {
        stream,
        buf: Vec::with_capacity(1024),
    };
    loop {
        match reader.read_request(cfg) {
            Ok(req) => {
                let reply = dispatch(svc, &req);
                let close = req.close || reply.status >= 400 && reply.status != 404;
                if write_reply(&mut reader.stream, &reply, req.http11, close).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Err(ReadError::Eof) | Err(ReadError::Io) => return,
            Err(ReadError::Bad(status)) => {
                let body = format!(
                    r#"{{"error":"{}","version":"{API_VERSION}"}}"#,
                    reason(status)
                );
                let _ = write_reply(&mut reader.stream, &Reply::json(status, body), true, true);
                return;
            }
        }
    }
}

/// Route one parsed request through the service.
fn dispatch<S: SeriesRead>(svc: &QueryService<S>, req: &Request) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/health") => Reply::json(200, serde_json::to_string(&svc.health().to_value())),
        ("GET", "/v1/trace/grants") => {
            Reply::json(200, serde_json::to_string(&svc.trace_grants().to_value()))
        }
        ("GET", "/v1/obs/metrics") => {
            Reply::json(200, serde_json::to_string(&svc.obs_metrics().to_value()))
        }
        ("GET", "/v1/obs/flight") => {
            Reply::json(200, serde_json::to_string(&svc.obs_flight().to_value()))
        }
        ("GET", "/metrics") => Reply {
            status: 200,
            body: svc.metrics_text(),
            content_type: "text/plain; version=0.0.4",
            allow: None,
        },
        ("POST", "/v1/query") => post_json(req, |v| {
            let q = QueryRequest::from_value(v)?;
            Ok(serde_json::to_string(&svc.query(&q)?.to_value()))
        }),
        ("POST", "/v1/rollup/user") => post_json(req, |v| {
            let q = UserRollupRequest::from_value(v)?;
            Ok(serde_json::to_string(&svc.rollup_user(&q)?.to_value()))
        }),
        ("POST", "/v1/rollup/job") => post_json(req, |v| {
            let q = JobRollupRequest::from_value(v)?;
            Ok(serde_json::to_string(&svc.rollup_job(&q)?.to_value()))
        }),
        ("POST", "/v1/profile/job") => post_json(req, |v| {
            let q = JobProfileRequest::from_value(v)?;
            Ok(serde_json::to_string(&svc.profile_job(&q)?.to_value()))
        }),
        (_, "/health")
        | (_, "/metrics")
        | (_, "/v1/trace/grants")
        | (_, "/v1/obs/metrics")
        | (_, "/v1/obs/flight") => Reply::method_not_allowed("GET"),
        (_, "/v1/query")
        | (_, "/v1/rollup/user")
        | (_, "/v1/rollup/job")
        | (_, "/v1/profile/job") => Reply::method_not_allowed("POST"),
        _ => Reply::json(
            404,
            format!(r#"{{"error":"no such endpoint","version":"{API_VERSION}"}}"#),
        ),
    }
}

fn post_json(
    req: &Request,
    f: impl FnOnce(&serde_json::Value) -> Result<String, ApiError>,
) -> Reply {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(_) => {
            return Reply::error(&ApiError::BadRequest("body must be UTF-8 JSON".into()));
        }
    };
    let value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Reply::error(&ApiError::BadRequest(format!("invalid JSON: {e}"))),
    };
    match f(&value) {
        Ok(body) => Reply::json(200, body),
        Err(e) => Reply::error(&e),
    }
}
