//! The versioned wire types of the `/v1` query surface.
//!
//! Every request and response is a typed struct with an explicit,
//! hand-written mapping to a [`serde_json::Value`] tree (the vendored
//! `serde` is a marker facade, so conversions are spelled out rather
//! than derived). Serialisation is **deterministic** — object members
//! sort, floats use shortest round-trip formatting — which is what lets
//! the differential tests assert an HTTP body is bit-identical to
//! serialising the same [`QueryService`](crate::QueryService) answer
//! in-process.
//!
//! Versioning policy: the version string is baked into the HTTP path
//! (`/v1/...`) and echoed in every response body. Additive changes
//! (new optional request fields, new response members) stay `v1`;
//! anything that changes the meaning or type of an existing member
//! ships as `/v2` alongside, never in place.

use davide_telemetry::tsdb::Point;
use davide_telemetry::{QueryCoverage, Resolution, TierStats};
use serde_json::{object, Value};

/// The wire-format version this module speaks, echoed in every
/// response and baked into the HTTP path.
pub const API_VERSION: &str = "v1";

/// A request the service rejected, with the HTTP status it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// Malformed body, unknown field value, missing member (HTTP 400).
    BadRequest(String),
    /// The named entity does not exist (HTTP 404).
    NotFound(String),
}

impl ApiError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) => 400,
            ApiError::NotFound(_) => 404,
        }
    }

    /// The response body for this error.
    pub fn to_value(&self) -> Value {
        let msg = match self {
            ApiError::BadRequest(m) | ApiError::NotFound(m) => m.as_str(),
        };
        object([("version", API_VERSION.into()), ("error", msg.into())])
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::BadRequest(m) => write!(f, "bad request: {m}"),
            ApiError::NotFound(m) => write!(f, "not found: {m}"),
        }
    }
}

impl std::error::Error for ApiError {}

fn bad(msg: impl Into<String>) -> ApiError {
    ApiError::BadRequest(msg.into())
}

fn req_member<'a>(v: &'a Value, key: &str) -> Result<&'a Value, ApiError> {
    v.get(key).ok_or_else(|| bad(format!("missing `{key}`")))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, ApiError> {
    req_member(v, key)?
        .as_f64()
        .ok_or_else(|| bad(format!("`{key}` must be a number")))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, ApiError> {
    req_member(v, key)?
        .as_u64()
        .ok_or_else(|| bad(format!("`{key}` must be a non-negative integer")))
}

fn opt_str(v: &Value, key: &str) -> Result<Option<String>, ApiError> {
    match v.get(key) {
        None => Ok(None),
        Some(m) if m.is_null() => Ok(None),
        Some(m) => m
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| bad(format!("`{key}` must be a string"))),
    }
}

/// Resolution as its wire name.
pub fn resolution_name(res: Resolution) -> &'static str {
    match res {
        Resolution::Raw => "raw",
        Resolution::Second => "second",
        Resolution::Minute => "minute",
    }
}

/// Parse a wire resolution name.
pub fn resolution_from_name(s: &str) -> Result<Resolution, ApiError> {
    match s {
        "raw" => Ok(Resolution::Raw),
        "second" => Ok(Resolution::Second),
        "minute" => Ok(Resolution::Minute),
        other => Err(bad(format!("unknown resolution `{other}`"))),
    }
}

/// [`QueryCoverage`] as a wire object.
pub fn coverage_to_value(c: &QueryCoverage) -> Value {
    object([
        ("hot", c.hot.into()),
        ("compressed", c.compressed.into()),
        ("disk", c.disk.into()),
        ("evicted", c.evicted.into()),
    ])
}

/// [`TierStats`] as a wire object.
pub fn tier_stats_to_value(st: &TierStats) -> Value {
    object([
        ("hot_points", st.hot_points.into()),
        ("hot_bytes", st.hot_bytes.into()),
        ("compressed_blocks", st.compressed_blocks.into()),
        ("compressed_points", st.compressed_points.into()),
        ("compressed_bytes", st.compressed_bytes.into()),
        ("disk_segments", st.disk_segments.into()),
        ("disk_blocks", st.disk_blocks.into()),
        ("disk_points", st.disk_points.into()),
        ("disk_bytes", st.disk_bytes.into()),
        ("sealed_points", st.sealed_points.into()),
        ("evicted_points", st.evicted_points.into()),
        ("io_errors", st.io_errors.into()),
    ])
}

fn points_to_value(points: &[Point]) -> Value {
    Value::Array(
        points
            .iter()
            .map(|p| Value::Array(vec![p.t.into(), p.v.into()]))
            .collect(),
    )
}

/// The aggregate a `/v1/query` request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryOp {
    /// The raw/rollup points in the window.
    Points,
    /// Mean over the window.
    Mean,
    /// Energy (rectangle rule) over the window.
    Energy,
    /// Latest observation (window ignored).
    Last,
}

impl QueryOp {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            QueryOp::Points => "points",
            QueryOp::Mean => "mean",
            QueryOp::Energy => "energy",
            QueryOp::Last => "last",
        }
    }

    /// Parse a wire name.
    pub fn from_name(s: &str) -> Result<Self, ApiError> {
        match s {
            "points" => Ok(QueryOp::Points),
            "mean" => Ok(QueryOp::Mean),
            "energy" => Ok(QueryOp::Energy),
            "last" => Ok(QueryOp::Last),
            other => Err(bad(format!("unknown op `{other}`"))),
        }
    }
}

/// `/v1/query`: one aggregate over one series or an MQTT-style filter.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// What to compute.
    pub op: QueryOp,
    /// A single series name (exactly one of `series`/`filter`).
    pub series: Option<String>,
    /// An MQTT-style filter (`davide/+/power/#`) selecting many series.
    pub filter: Option<String>,
    /// Resolution to answer at.
    pub resolution: Resolution,
    /// Window start, seconds (inclusive).
    pub t0: f64,
    /// Window end, seconds (exclusive).
    pub t1: f64,
}

impl QueryRequest {
    /// A point query for one series over a window.
    pub fn series(op: QueryOp, series: &str, res: Resolution, t0: f64, t1: f64) -> Self {
        QueryRequest {
            op,
            series: Some(series.to_string()),
            filter: None,
            resolution: res,
            t0,
            t1,
        }
    }

    /// A multi-series query for everything matching `filter`.
    pub fn filter(op: QueryOp, filter: &str, res: Resolution, t0: f64, t1: f64) -> Self {
        QueryRequest {
            op,
            series: None,
            filter: Some(filter.to_string()),
            resolution: res,
            t0,
            t1,
        }
    }

    /// Wire form.
    pub fn to_value(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        m.insert("op".to_string(), self.op.name().into());
        m.insert(
            "resolution".to_string(),
            resolution_name(self.resolution).into(),
        );
        m.insert("t0".to_string(), self.t0.into());
        m.insert("t1".to_string(), self.t1.into());
        if let Some(s) = &self.series {
            m.insert("series".to_string(), s.as_str().into());
        }
        if let Some(f) = &self.filter {
            m.insert("filter".to_string(), f.as_str().into());
        }
        Value::Object(m)
    }

    /// Parse and validate a wire request.
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        let op = QueryOp::from_name(
            req_member(v, "op")?
                .as_str()
                .ok_or_else(|| bad("`op` must be a string"))?,
        )?;
        let resolution = match v.get("resolution") {
            None => Resolution::Raw,
            Some(r) => resolution_from_name(
                r.as_str()
                    .ok_or_else(|| bad("`resolution` must be a string"))?,
            )?,
        };
        let series = opt_str(v, "series")?;
        let filter = opt_str(v, "filter")?;
        match (&series, &filter) {
            (None, None) => return Err(bad("one of `series`/`filter` is required")),
            (Some(_), Some(_)) => return Err(bad("`series` and `filter` are exclusive")),
            _ => {}
        }
        let t0 = req_f64(v, "t0")?;
        let t1 = req_f64(v, "t1")?;
        if !t0.is_finite() || !t1.is_finite() || t1 < t0 {
            return Err(bad("window must be finite with t1 >= t0"));
        }
        Ok(QueryRequest {
            op,
            series,
            filter,
            resolution,
            t0,
            t1,
        })
    }
}

/// One series' slice of a [`QueryResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesAnswer {
    /// Series name.
    pub series: String,
    /// Points (op `points`).
    pub points: Option<Vec<Point>>,
    /// Scalar aggregate (ops `mean` / `energy`).
    pub value: Option<f64>,
    /// Latest observation (op `last`).
    pub last: Option<Point>,
    /// Provenance of this series' answer.
    pub coverage: QueryCoverage,
}

impl SeriesAnswer {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(&str, Value)> = vec![
            ("series", self.series.as_str().into()),
            ("coverage", coverage_to_value(&self.coverage)),
        ];
        if let Some(p) = &self.points {
            pairs.push(("points", points_to_value(p)));
        }
        if let Some(x) = self.value {
            pairs.push(("value", x.into()));
        }
        if let Some(p) = &self.last {
            pairs.push(("last", Value::Array(vec![p.t.into(), p.v.into()])));
        }
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// `/v1/query` answer: per-series results plus merged coverage.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The op that was computed.
    pub op: QueryOp,
    /// Matching series in sorted name order.
    pub series: Vec<SeriesAnswer>,
    /// Coverage merged over every answering series
    /// ([`QueryCoverage::merge`] semantics: counts add, `evicted` ORs).
    pub coverage: QueryCoverage,
}

impl QueryResponse {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("version", API_VERSION.into()),
            ("op", self.op.name().into()),
            (
                "series",
                Value::Array(self.series.iter().map(|s| s.to_value()).collect()),
            ),
            ("coverage", coverage_to_value(&self.coverage)),
        ])
    }
}

/// `/v1/rollup/user`: one user's account, or all users ranked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserRollupRequest {
    /// Restrict to one user; `None` ranks everyone by energy.
    pub user_id: Option<u32>,
}

impl UserRollupRequest {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        match self.user_id {
            Some(u) => object([("user_id", u.into())]),
            None => object([]),
        }
    }

    /// Parse a wire request.
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        let user_id = match v.get("user_id") {
            None => None,
            Some(m) if m.is_null() => None,
            Some(m) => Some(
                m.as_u64()
                    .and_then(|u| u32::try_from(u).ok())
                    .ok_or_else(|| bad("`user_id` must be a u32"))?,
            ),
        };
        Ok(UserRollupRequest { user_id })
    }
}

/// One user's rolled-up account on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct UserRollup {
    /// User id.
    pub user_id: u32,
    /// Jobs charged.
    pub jobs: usize,
    /// Energy-to-solution total, joules.
    pub energy_j: f64,
    /// Node-seconds consumed.
    pub node_seconds: f64,
    /// Charge at the service tariff.
    pub cost: f64,
    /// Mean per-node power, watts.
    pub mean_power_w: f64,
}

impl UserRollup {
    fn to_value(&self) -> Value {
        object([
            ("user_id", self.user_id.into()),
            ("jobs", self.jobs.into()),
            ("energy_j", self.energy_j.into()),
            ("node_seconds", self.node_seconds.into()),
            ("cost", self.cost.into()),
            ("mean_power_w", self.mean_power_w.into()),
        ])
    }
}

/// `/v1/rollup/user` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct UserRollupResponse {
    /// One entry for a targeted request; everyone (descending energy)
    /// otherwise.
    pub users: Vec<UserRollup>,
}

impl UserRollupResponse {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("version", API_VERSION.into()),
            (
                "users",
                Value::Array(self.users.iter().map(|u| u.to_value()).collect()),
            ),
        ])
    }
}

/// `/v1/rollup/job`: one job's energy account.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRollupRequest {
    /// Job to roll up.
    pub job_id: u64,
    /// Also integrate the job's node power series from the store
    /// (`TsDb::energy_j_id` per series over the job's runtime window).
    pub measured: bool,
}

impl JobRollupRequest {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("job_id", self.job_id.into()),
            ("measured", self.measured.into()),
        ])
    }

    /// Parse a wire request.
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        let job_id = req_u64(v, "job_id")?;
        let measured = match v.get("measured") {
            None => false,
            Some(m) => m
                .as_bool()
                .ok_or_else(|| bad("`measured` must be a boolean"))?,
        };
        Ok(JobRollupRequest { job_id, measured })
    }
}

/// `/v1/rollup/job` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRollupResponse {
    /// Job id.
    pub job_id: u64,
    /// Submitting user.
    pub user_id: u32,
    /// Nodes the job ran on.
    pub nodes: usize,
    /// Start of the runtime window, seconds.
    pub start_s: f64,
    /// End of the runtime window, seconds.
    pub end_s: f64,
    /// Energy the accounting ledger attributes to the job, joules.
    pub ledger_energy_j: Option<f64>,
    /// Energy integrated from the job's telemetry series, joules
    /// (requested via `measured`).
    pub measured_energy_j: Option<f64>,
    /// Provenance of the measured integration (merged over the job's
    /// series) when `measured` was requested.
    pub coverage: Option<QueryCoverage>,
    /// Ledger charge at the service tariff.
    pub cost: f64,
}

impl JobRollupResponse {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(&str, Value)> = vec![
            ("version", API_VERSION.into()),
            ("job_id", self.job_id.into()),
            ("user_id", self.user_id.into()),
            ("nodes", self.nodes.into()),
            ("start_s", self.start_s.into()),
            ("end_s", self.end_s.into()),
            ("cost", self.cost.into()),
        ];
        if let Some(e) = self.ledger_energy_j {
            pairs.push(("ledger_energy_j", e.into()));
        }
        if let Some(e) = self.measured_energy_j {
            pairs.push(("measured_energy_j", e.into()));
        }
        if let Some(c) = &self.coverage {
            pairs.push(("coverage", coverage_to_value(c)));
        }
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// `/v1/profile/job`: the decimated power profile of a finished job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProfileRequest {
    /// Job to profile.
    pub job_id: u64,
    /// Decimation factor applied to each node series (boxcar means; 1
    /// keeps raw rate).
    pub decimate: usize,
}

impl JobProfileRequest {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("decimate", self.decimate.into()),
            ("job_id", self.job_id.into()),
        ])
    }

    /// Parse a wire request.
    pub fn from_value(v: &Value) -> Result<Self, ApiError> {
        let job_id = req_u64(v, "job_id")?;
        let decimate = match v.get("decimate") {
            None => 1,
            Some(m) => m
                .as_u64()
                .filter(|&d| (1..=1_000_000).contains(&d))
                .ok_or_else(|| bad("`decimate` must be in 1..=1000000"))?
                as usize,
        };
        Ok(JobProfileRequest { job_id, decimate })
    }
}

/// One detected phase on the wire (times are trace-relative seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDto {
    /// Phase start.
    pub t0: f64,
    /// Phase end.
    pub t1: f64,
    /// Mean power, watts.
    pub mean_w: f64,
    /// Phase energy, joules.
    pub energy_j: f64,
}

impl PhaseDto {
    fn to_value(&self) -> Value {
        object([
            ("t0", self.t0.into()),
            ("t1", self.t1.into()),
            ("mean_w", self.mean_w.into()),
            ("energy_j", self.energy_j.into()),
        ])
    }
}

/// One node series' decimated profile inside a [`JobProfileResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesProfile {
    /// Series name.
    pub series: String,
    /// Time of the first decimated sample, seconds.
    pub t0: f64,
    /// Decimated sample spacing, seconds.
    pub dt: f64,
    /// Decimated power samples, watts.
    pub watts: Vec<f64>,
    /// Phases detected on the decimated profile.
    pub phases: Vec<PhaseDto>,
}

impl SeriesProfile {
    fn to_value(&self) -> Value {
        object([
            ("series", self.series.as_str().into()),
            ("t0", self.t0.into()),
            ("dt", self.dt.into()),
            (
                "watts",
                Value::Array(self.watts.iter().map(|&w| w.into()).collect()),
            ),
            (
                "phases",
                Value::Array(self.phases.iter().map(|p| p.to_value()).collect()),
            ),
        ])
    }
}

/// `/v1/profile/job` answer.
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfileResponse {
    /// Job id.
    pub job_id: u64,
    /// One profile per node series, sorted by series name.
    pub profiles: Vec<SeriesProfile>,
    /// Coverage merged over every profiled series.
    pub coverage: QueryCoverage,
}

impl JobProfileResponse {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("version", API_VERSION.into()),
            ("job_id", self.job_id.into()),
            (
                "profiles",
                Value::Array(self.profiles.iter().map(|p| p.to_value()).collect()),
            ),
            ("coverage", coverage_to_value(&self.coverage)),
        ])
    }
}

/// `/health` answer: liveness plus a store summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthResponse {
    /// Always `"ok"` when the service answers at all.
    pub status: &'static str,
    /// Known series count.
    pub series: usize,
    /// Jobs indexed for rollup/profile queries.
    pub jobs: usize,
    /// Point-in-time tier occupancy of the backing store.
    pub tier: TierStats,
}

impl HealthResponse {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("version", API_VERSION.into()),
            ("status", self.status.into()),
            ("series", self.series.into()),
            ("jobs", self.jobs.into()),
            ("tier", tier_stats_to_value(&self.tier)),
        ])
    }
}

/// p50/p99 summary of one latency histogram on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyDto {
    /// Samples folded into the histogram.
    pub count: u64,
    /// Median, nanoseconds (log₂-bucket upper bound).
    pub p50_ns: u64,
    /// 99th percentile, nanoseconds (log₂-bucket upper bound).
    pub p99_ns: u64,
}

impl LatencyDto {
    fn to_value(self) -> Value {
        object([
            ("count", self.count.into()),
            ("p50_ns", self.p50_ns.into()),
            ("p99_ns", self.p99_ns.into()),
        ])
    }
}

/// One stage crossing of a cap-grant span on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct GrantEventDto {
    /// Stamp time, nanoseconds of sim time.
    pub t_ns: u64,
    /// Stage name (`fed_split` … `power_crossing`).
    pub stage: String,
    /// The grant in force at the stamp, watts.
    pub cap_w: f64,
}

impl GrantEventDto {
    fn to_value(&self) -> Value {
        object([
            ("t_ns", self.t_ns.into()),
            ("stage", self.stage.as_str().into()),
            ("cap_w", self.cap_w.into()),
        ])
    }
}

/// One cap grant's causal chain on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct GrantSpanDto {
    /// Grant sequence number (per rack).
    pub seq: u64,
    /// Stage crossings in recorder order.
    pub events: Vec<GrantEventDto>,
}

impl GrantSpanDto {
    fn to_value(&self) -> Value {
        object([
            ("seq", self.seq.into()),
            (
                "events",
                Value::Array(self.events.iter().map(|e| e.to_value()).collect()),
            ),
        ])
    }
}

/// One rack's slice of a [`TraceGrantsResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct RackGrantTrace {
    /// Attached rack name.
    pub rack: String,
    /// Recent grant spans (from the rack's flight ring), seq order.
    pub spans: Vec<GrantSpanDto>,
    /// Grant-to-actuation latency (fed split → controller command).
    pub apply: LatencyDto,
    /// End-to-end latency (fed split → observed power crossing).
    pub e2e: LatencyDto,
    /// Spans that completed the full chain.
    pub completed: u64,
    /// Spans evicted or flushed before completing.
    pub lost: u64,
}

impl RackGrantTrace {
    fn to_value(&self) -> Value {
        object([
            ("rack", self.rack.as_str().into()),
            (
                "spans",
                Value::Array(self.spans.iter().map(|s| s.to_value()).collect()),
            ),
            ("apply", self.apply.to_value()),
            ("e2e", self.e2e.to_value()),
            ("completed", self.completed.into()),
            ("lost", self.lost.into()),
        ])
    }
}

/// `/v1/trace/grants` answer: per-rack cap-grant causal traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceGrantsResponse {
    /// One entry per attached rack, attach order.
    pub racks: Vec<RackGrantTrace>,
}

impl TraceGrantsResponse {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("version", API_VERSION.into()),
            (
                "racks",
                Value::Array(self.racks.iter().map(|r| r.to_value()).collect()),
            ),
        ])
    }
}

/// `/v1/obs/metrics` answer: the federation-wide rollup — every counter
/// summed across the attached racks' registries (counters are the only
/// metric kind whose site-level value is the plain sum).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsMetricsResponse {
    /// Attached rack names, attach order.
    pub racks: Vec<String>,
    /// `(name, summed value)` in sorted name order.
    pub counters: Vec<(String, u64)>,
}

impl ObsMetricsResponse {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("version", API_VERSION.into()),
            (
                "racks",
                Value::Array(self.racks.iter().map(|r| Value::from(r.as_str())).collect()),
            ),
            (
                "counters",
                Value::Array(
                    self.counters
                        .iter()
                        .map(|(name, v)| {
                            Value::Array(vec![Value::from(name.as_str()), Value::from(*v)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One flight-recorder event on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEventDto {
    /// Logical event number (monotonic per recorder).
    pub n: u64,
    /// Event time, nanoseconds of sim time.
    pub t_ns: u64,
    /// Event kind (`fed_split`, `cap_command`, `violation`, …).
    pub kind: String,
    /// Free label (the invariant name for `violation` events).
    pub label: String,
    /// Grant sequence number, when the event belongs to a span.
    pub seq: u64,
    /// Event payload bits (IEEE-754 bits of the cap/draw value).
    pub value_bits: u64,
}

impl FlightEventDto {
    fn to_value(&self) -> Value {
        object([
            ("n", self.n.into()),
            ("t_ns", self.t_ns.into()),
            ("kind", self.kind.as_str().into()),
            ("label", self.label.as_str().into()),
            ("seq", self.seq.into()),
            ("value_bits", self.value_bits.into()),
        ])
    }
}

/// One rack's slice of an [`ObsFlightResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct RackFlight {
    /// Attached rack name.
    pub rack: String,
    /// FNV-64 digest of the recorder's deterministic text dump,
    /// `%016x`.
    pub digest: String,
    /// Ring contents, oldest surviving event first.
    pub events: Vec<FlightEventDto>,
}

impl RackFlight {
    fn to_value(&self) -> Value {
        object([
            ("rack", self.rack.as_str().into()),
            ("digest", self.digest.as_str().into()),
            (
                "events",
                Value::Array(self.events.iter().map(|e| e.to_value()).collect()),
            ),
        ])
    }
}

/// `/v1/obs/flight` answer: every attached rack's flight ring.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsFlightResponse {
    /// One entry per attached rack, attach order.
    pub racks: Vec<RackFlight>,
}

impl ObsFlightResponse {
    /// Wire form.
    pub fn to_value(&self) -> Value {
        object([
            ("version", API_VERSION.into()),
            (
                "racks",
                Value::Array(self.racks.iter().map(|r| r.to_value()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_roundtrip() {
        let req = QueryRequest::series(
            QueryOp::Mean,
            "node00/power/node",
            Resolution::Raw,
            0.0,
            10.0,
        );
        let v = req.to_value();
        let back = QueryRequest::from_value(&v).unwrap();
        assert_eq!(back, req);
        let filt = QueryRequest::filter(
            QueryOp::Points,
            "davide/+/power/#",
            Resolution::Second,
            1.0,
            2.0,
        );
        assert_eq!(QueryRequest::from_value(&filt.to_value()).unwrap(), filt);
    }

    #[test]
    fn query_request_validation() {
        let bad_cases = [
            r#"{"op":"mean","t0":0,"t1":1}"#,
            r#"{"op":"mean","series":"s","filter":"f","t0":0,"t1":1}"#,
            r#"{"op":"nope","series":"s","t0":0,"t1":1}"#,
            r#"{"op":"mean","series":"s","t0":5,"t1":1}"#,
            r#"{"op":"mean","series":"s","resolution":"hourly","t0":0,"t1":1}"#,
            r#"{"op":"mean","series":7,"t0":0,"t1":1}"#,
        ];
        for body in bad_cases {
            let v = serde_json::from_str(body).unwrap();
            let err = QueryRequest::from_value(&v).unwrap_err();
            assert_eq!(err.status(), 400, "{body}");
        }
    }

    #[test]
    fn responses_serialise_deterministically() {
        let resp = QueryResponse {
            op: QueryOp::Points,
            series: vec![SeriesAnswer {
                series: "s".into(),
                points: Some(vec![Point { t: 1.0, v: 2.5 }]),
                value: None,
                last: None,
                coverage: QueryCoverage {
                    hot: 1,
                    ..QueryCoverage::default()
                },
            }],
            coverage: QueryCoverage {
                hot: 1,
                ..QueryCoverage::default()
            },
        };
        let a = serde_json::to_string(&resp.to_value());
        let b = serde_json::to_string(&resp.clone().to_value());
        assert_eq!(a, b);
        assert!(a.contains("\"version\":\"v1\""));
        assert!(a.contains("\"points\":[[1,2.5]]"));
    }

    #[test]
    fn rollup_requests_parse() {
        let v = serde_json::from_str(r#"{"user_id":10}"#).unwrap();
        assert_eq!(UserRollupRequest::from_value(&v).unwrap().user_id, Some(10));
        let v = serde_json::from_str("{}").unwrap();
        assert_eq!(UserRollupRequest::from_value(&v).unwrap().user_id, None);
        let v = serde_json::from_str(r#"{"job_id":3,"measured":true}"#).unwrap();
        let r = JobRollupRequest::from_value(&v).unwrap();
        assert_eq!((r.job_id, r.measured), (3, true));
        let v = serde_json::from_str(r#"{"job_id":-1}"#).unwrap();
        assert!(JobRollupRequest::from_value(&v).is_err());
        let v = serde_json::from_str(r#"{"job_id":1,"decimate":0}"#).unwrap();
        assert!(JobProfileRequest::from_value(&v).is_err());
    }

    #[test]
    fn error_bodies_carry_status() {
        let e = ApiError::NotFound("job 9".into());
        assert_eq!(e.status(), 404);
        let s = serde_json::to_string(&e.to_value());
        assert_eq!(s, r#"{"error":"job 9","version":"v1"}"#);
    }
}
