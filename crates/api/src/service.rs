//! The typed query-service layer: one versioned read path over the
//! telemetry store, the accounting ledger and the job index.
//!
//! [`QueryService`] is generic over [`SeriesRead`], so the same service
//! fronts a flat [`TsDb`](davide_telemetry::TsDb) or a sharded store
//! without caring which. It owns:
//!
//! * the **rollup cache** — an LRU keyed on
//!   `(op, series, window, resolution)` holding scalar aggregates
//!   (means, energies, job integrations). Entries are validated against
//!   the per-series **ingest watermark** ([`SeriesRead::series_watermark`],
//!   the monotonic absorbed-sample count): a hit is served only if every
//!   watermark recorded at fill time still matches, so new ingest
//!   invalidates exactly the windows it could have changed;
//! * the **job index** — runtime windows, users and node series of
//!   finished jobs, built from [`SimOutcome`]s, backing the
//!   rollup/profile endpoints together with the
//!   [`EnergyLedger`];
//! * its **instruments** — request/hit/miss/error counters and a
//!   latency histogram registered in the shared
//!   [`ObsHub`], like every other subsystem.

use std::collections::HashMap;
use std::sync::Arc;

use davide_core::power::PowerTrace;
use davide_core::time::SimTime;
use davide_obs::{
    rollup_counters, Counter, FlightRecorder, Histogram, MetricsRegistry, ObsHub, GRANT_STAGE_NAMES,
};
use davide_sched::accounting::{EnergyLedger, Tariff};
use davide_sched::simulator::SimOutcome;
use davide_telemetry::{
    detect_phases, Decimator, ProfilerConfig, QueryCoverage, Resolution, SeriesRead,
};
use parking_lot::{Mutex, RwLock};

use crate::types::{
    ApiError, FlightEventDto, GrantEventDto, GrantSpanDto, HealthResponse, JobProfileRequest,
    JobProfileResponse, JobRollupRequest, JobRollupResponse, LatencyDto, ObsFlightResponse,
    ObsMetricsResponse, PhaseDto, QueryOp, QueryRequest, QueryResponse, RackFlight, RackGrantTrace,
    SeriesAnswer, SeriesProfile, TraceGrantsResponse, UserRollup, UserRollupRequest,
    UserRollupResponse,
};

/// One finished job's accounting/profiling record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Submitting user.
    pub user_id: u32,
    /// Nodes the job ran on.
    pub nodes: Vec<u32>,
    /// Runtime window start, seconds.
    pub start_s: f64,
    /// Runtime window end, seconds.
    pub end_s: f64,
    /// Telemetry series carrying the job's node power.
    pub series: Vec<String>,
}

/// Jobs the service can answer rollup and profile queries for.
#[derive(Debug, Clone, Default)]
pub struct JobIndex {
    jobs: HashMap<u64, JobRecord>,
}

impl JobIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a job record.
    pub fn insert(&mut self, rec: JobRecord) {
        self.jobs.insert(rec.id, rec);
    }

    /// Look up a job.
    pub fn get(&self, id: u64) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// Jobs indexed.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Index every completed job of a simulation outcome, mapping each
    /// placed node through `series_for_node` (e.g.
    /// `|n| power_topic(n, "node")`). Jobs without placement data get
    /// no series (rollups still answer from the ledger).
    pub fn ingest_outcome(&mut self, out: &SimOutcome, series_for_node: impl Fn(u32) -> String) {
        for job in &out.completed {
            let nodes = out.placements.get(&job.id).cloned().unwrap_or_default();
            let mut series: Vec<String> = nodes.iter().map(|&n| series_for_node(n)).collect();
            series.sort();
            self.insert(JobRecord {
                id: job.id,
                user_id: job.user_id,
                nodes,
                start_s: job.start_s.unwrap_or(0.0),
                end_s: job.end_s.unwrap_or(0.0),
                series,
            });
        }
    }
}

/// Cached scalar aggregate plus the provenance it was computed with.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CachedAgg {
    value: Option<f64>,
    coverage: QueryCoverage,
}

/// A filled cache slot: the answer and the per-series watermarks it
/// was computed at.
#[derive(Debug, Clone)]
struct CacheEntry {
    series: String,
    watermark: u64,
    agg: CachedAgg,
    tick: u64,
}

/// Fixed (hashable) part of a cache key; the series name is matched by
/// linear scan inside the bucket so lookups never allocate.
type AggKey = (u8, u8, u64, u64);

fn agg_key(op: QueryOp, res: Resolution, t0: f64, t1: f64) -> AggKey {
    let op = match op {
        QueryOp::Mean => 0u8,
        QueryOp::Energy => 1,
        _ => 255,
    };
    let res = match res {
        Resolution::Raw => 0u8,
        Resolution::Second => 1,
        Resolution::Minute => 2,
    };
    (op, res, t0.to_bits(), t1.to_bits())
}

/// Watermark-validated LRU for scalar aggregates.
#[derive(Debug)]
struct RollupCache {
    buckets: HashMap<AggKey, Vec<CacheEntry>>,
    len: usize,
    cap: usize,
    tick: u64,
}

impl RollupCache {
    fn new(cap: usize) -> Self {
        RollupCache {
            buckets: HashMap::new(),
            len: 0,
            cap,
            tick: 0,
        }
    }

    /// A valid entry for `(key, series)` at the given current
    /// watermark, bumping its recency.
    fn get(&mut self, key: AggKey, series: &str, watermark: u64) -> Option<CachedAgg> {
        self.tick += 1;
        let tick = self.tick;
        let bucket = self.buckets.get_mut(&key)?;
        let e = bucket.iter_mut().find(|e| e.series == series)?;
        if e.watermark != watermark {
            return None; // stale: ingest moved the series forward
        }
        e.tick = tick;
        Some(e.agg)
    }

    fn insert(&mut self, key: AggKey, series: &str, watermark: u64, agg: CachedAgg) {
        self.tick += 1;
        let tick = self.tick;
        let bucket = self.buckets.entry(key).or_default();
        if let Some(e) = bucket.iter_mut().find(|e| e.series == series) {
            e.watermark = watermark;
            e.agg = agg;
            e.tick = tick;
            return;
        }
        bucket.push(CacheEntry {
            series: series.to_string(),
            watermark,
            agg,
            tick,
        });
        self.len += 1;
        if self.len > self.cap {
            self.evict_oldest();
        }
    }

    /// Drop the least-recently-used entry (O(n), runs only on overflow
    /// of a bounded cache — not on the hit path).
    fn evict_oldest(&mut self) {
        let mut oldest: Option<(AggKey, usize, u64)> = None;
        for (k, bucket) in &self.buckets {
            for (i, e) in bucket.iter().enumerate() {
                if oldest.is_none_or(|(_, _, t)| e.tick < t) {
                    oldest = Some((*k, i, e.tick));
                }
            }
        }
        if let Some((k, i, _)) = oldest {
            let bucket = self.buckets.get_mut(&k).expect("key just seen");
            bucket.remove(i);
            self.len -= 1;
            if bucket.is_empty() {
                self.buckets.remove(&k);
            }
        }
    }
}

/// Service instruments, registered in the shared [`ObsHub`].
struct ApiObs {
    hub: ObsHub,
    requests: Counter,
    errors: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    latency_ns: Histogram,
}

impl ApiObs {
    fn new(hub: &ObsHub) -> Self {
        let r = &hub.registry;
        ApiObs {
            hub: hub.clone(),
            requests: r.counter("api_requests_total"),
            errors: r.counter("api_errors_total"),
            cache_hits: r.counter("api_cache_hits_total"),
            cache_misses: r.counter("api_cache_misses_total"),
            latency_ns: r.histogram("api_request_ns"),
        }
    }
}

/// One attached rack observability source: live handles onto the
/// rack's registry and flight recorder (shared `Arc`s, so the service
/// always reads current state).
struct RackObsSource {
    name: String,
    registry: Arc<MetricsRegistry>,
    flight: Arc<FlightRecorder>,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct QueryServiceConfig {
    /// Rollup-cache capacity (entries). 0 disables caching.
    pub cache_capacity: usize,
    /// Tariff used to price energy.
    pub tariff: Tariff,
    /// Profiler settings for `/v1/profile/job` phase detection.
    pub profiler: ProfilerConfig,
}

impl Default for QueryServiceConfig {
    fn default() -> Self {
        QueryServiceConfig {
            cache_capacity: 4096,
            tariff: Tariff::default(),
            profiler: ProfilerConfig::default(),
        }
    }
}

/// Cache effectiveness counters (mirrors the obs instruments, readable
/// without a registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Aggregate queries answered from the cache.
    pub hits: u64,
    /// Aggregate queries that had to recompute.
    pub misses: u64,
}

/// The typed query service: every read endpoint in one place.
///
/// Cloning is cheap (all state is shared behind `Arc`s); the HTTP
/// worker pool clones one service per thread.
pub struct QueryService<S: SeriesRead> {
    store: Arc<RwLock<S>>,
    ledger: Arc<RwLock<EnergyLedger>>,
    jobs: Arc<RwLock<JobIndex>>,
    cache: Arc<Mutex<RollupCache>>,
    stats: Arc<Mutex<CacheStats>>,
    cfg: QueryServiceConfig,
    obs: Arc<ApiObs>,
    rack_obs: Arc<RwLock<Vec<RackObsSource>>>,
}

impl<S: SeriesRead> Clone for QueryService<S> {
    fn clone(&self) -> Self {
        QueryService {
            store: self.store.clone(),
            ledger: self.ledger.clone(),
            jobs: self.jobs.clone(),
            cache: self.cache.clone(),
            stats: self.stats.clone(),
            cfg: self.cfg.clone(),
            obs: self.obs.clone(),
            rack_obs: self.rack_obs.clone(),
        }
    }
}

impl<S: SeriesRead> QueryService<S> {
    /// A service over shared store/ledger/job-index handles.
    pub fn new(
        store: Arc<RwLock<S>>,
        ledger: Arc<RwLock<EnergyLedger>>,
        jobs: Arc<RwLock<JobIndex>>,
        hub: &ObsHub,
        cfg: QueryServiceConfig,
    ) -> Self {
        QueryService {
            store,
            ledger,
            jobs,
            cache: Arc::new(Mutex::new(RollupCache::new(cfg.cache_capacity))),
            stats: Arc::new(Mutex::new(CacheStats::default())),
            cfg,
            obs: Arc::new(ApiObs::new(hub)),
            rack_obs: Arc::new(RwLock::new(Vec::new())),
        }
    }

    /// A service that owns fresh ledger and job-index state over a
    /// store (the common wiring for tests and bins).
    pub fn over_store(store: S, hub: &ObsHub, cfg: QueryServiceConfig) -> Self {
        Self::new(
            Arc::new(RwLock::new(store)),
            Arc::new(RwLock::new(EnergyLedger::new())),
            Arc::new(RwLock::new(JobIndex::new())),
            hub,
            cfg,
        )
    }

    /// The shared store handle (writers keep ingesting through this
    /// while the service reads).
    pub fn store(&self) -> Arc<RwLock<S>> {
        self.store.clone()
    }

    /// The shared ledger handle.
    pub fn ledger(&self) -> Arc<RwLock<EnergyLedger>> {
        self.ledger.clone()
    }

    /// The shared job index handle.
    pub fn jobs(&self) -> Arc<RwLock<JobIndex>> {
        self.jobs.clone()
    }

    /// Cache hit/miss counts so far.
    pub fn cache_stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Ingest an accounting source: the ledger absorbs the outcome and
    /// the job index records runtime windows/series for each completed
    /// job.
    pub fn ingest_outcome(&self, out: &SimOutcome, series_for_node: impl Fn(u32) -> String) {
        self.ledger.write().ingest(out);
        self.jobs.write().ingest_outcome(out, series_for_node);
    }

    fn observe(&self, t_start: f64, err: bool) {
        self.obs.requests.add(1);
        if err {
            self.obs.errors.add(1);
        }
        let dt = self.obs.hub.clock.now_s() - t_start;
        if dt >= 0.0 {
            self.obs.latency_ns.record((dt * 1e9).round() as u64);
        }
    }

    /// `/health`: liveness and store occupancy.
    pub fn health(&self) -> HealthResponse {
        let t = self.obs.hub.clock.now_s();
        let store = self.store.read();
        let resp = HealthResponse {
            status: "ok",
            series: store.series_names().len(),
            jobs: self.jobs.read().len(),
            tier: store.store_tier_stats(),
        };
        drop(store);
        self.observe(t, false);
        resp
    }

    /// `/metrics`: the shared registry's Prometheus text exposition.
    pub fn metrics_text(&self) -> String {
        self.obs.hub.registry.render_text()
    }

    /// Attach one rack's observability surface (its registry and
    /// flight recorder) under `name`. The grant-trace, metrics-rollup
    /// and flight endpoints answer from the attached set — and *only*
    /// from it, so their bodies are a pure function of the racks'
    /// state, never of the service's own request counters.
    pub fn attach_rack_obs(&self, name: &str, hub: &ObsHub) {
        self.rack_obs.write().push(RackObsSource {
            name: name.to_string(),
            registry: hub.registry.clone(),
            flight: hub.flight.clone(),
        });
    }

    /// `/v1/trace/grants`: every attached rack's cap-grant causal
    /// traces — recent spans reassembled from the flight ring, plus
    /// the grant-to-actuation and end-to-end latency summaries.
    pub fn trace_grants(&self) -> TraceGrantsResponse {
        let t = self.obs.hub.clock.now_s();
        let racks = self
            .rack_obs
            .read()
            .iter()
            .map(|src| {
                let mut spans: std::collections::BTreeMap<u64, Vec<GrantEventDto>> =
                    std::collections::BTreeMap::new();
                for (_, e) in src.flight.snapshot() {
                    if GRANT_STAGE_NAMES.contains(&e.kind) {
                        spans.entry(e.seq).or_default().push(GrantEventDto {
                            t_ns: e.t_ns,
                            stage: e.kind.to_string(),
                            cap_w: f64::from_bits(e.value_bits),
                        });
                    }
                }
                let lat = |name: &str| {
                    src.registry
                        .find_histogram(name)
                        .map(|h| {
                            let snap = h.snapshot();
                            LatencyDto {
                                count: snap.count,
                                p50_ns: snap.quantile(0.50),
                                p99_ns: snap.quantile(0.99),
                            }
                        })
                        .unwrap_or(LatencyDto {
                            count: 0,
                            p50_ns: 0,
                            p99_ns: 0,
                        })
                };
                // `obs_grant_lost_total{last=..}` is one counter per
                // terminal stage; the wire carries the sum.
                let lost: u64 = rollup_counters([&*src.registry])
                    .into_iter()
                    .filter(|(n, _)| n.starts_with("obs_grant_lost_total"))
                    .map(|(_, v)| v)
                    .sum();
                RackGrantTrace {
                    rack: src.name.clone(),
                    spans: spans
                        .into_iter()
                        .map(|(seq, events)| GrantSpanDto { seq, events })
                        .collect(),
                    apply: lat("obs_grant_apply_ns"),
                    e2e: lat("obs_grant_e2e_ns"),
                    completed: src
                        .registry
                        .find_counter("obs_grant_completed_total")
                        .map(|c| c.get())
                        .unwrap_or(0),
                    lost,
                }
            })
            .collect();
        self.observe(t, false);
        TraceGrantsResponse { racks }
    }

    /// `/v1/obs/metrics`: the federation-wide rollup — every counter
    /// summed across the attached racks' registries.
    pub fn obs_metrics(&self) -> ObsMetricsResponse {
        let t = self.obs.hub.clock.now_s();
        let sources = self.rack_obs.read();
        let resp = ObsMetricsResponse {
            racks: sources.iter().map(|s| s.name.clone()).collect(),
            counters: rollup_counters(sources.iter().map(|s| &*s.registry)),
        };
        drop(sources);
        self.observe(t, false);
        resp
    }

    /// `/v1/obs/flight`: every attached rack's flight ring, with the
    /// digest of its deterministic text dump.
    pub fn obs_flight(&self) -> ObsFlightResponse {
        let t = self.obs.hub.clock.now_s();
        let racks = self
            .rack_obs
            .read()
            .iter()
            .map(|src| RackFlight {
                rack: src.name.clone(),
                digest: format!("{:016x}", src.flight.digest()),
                events: src
                    .flight
                    .snapshot()
                    .into_iter()
                    .map(|(n, e)| FlightEventDto {
                        n,
                        t_ns: e.t_ns,
                        kind: e.kind.to_string(),
                        label: e.label.to_string(),
                        seq: e.seq,
                        value_bits: e.value_bits,
                    })
                    .collect(),
            })
            .collect();
        self.observe(t, false);
        ObsFlightResponse { racks }
    }

    /// `/v1/query`: one aggregate over one series or a filter.
    pub fn query(&self, req: &QueryRequest) -> Result<QueryResponse, ApiError> {
        let t = self.obs.hub.clock.now_s();
        let out = self.query_inner(req);
        self.observe(t, out.is_err());
        out
    }

    fn query_inner(&self, req: &QueryRequest) -> Result<QueryResponse, ApiError> {
        let names: Vec<String> = match (&req.series, &req.filter) {
            (Some(s), None) => vec![s.clone()],
            (None, Some(f)) => {
                let store = self.store.read();
                store
                    .series_names()
                    .into_iter()
                    .filter(|n| davide_mqtt_filter(f, n))
                    .collect()
            }
            _ => {
                return Err(ApiError::BadRequest(
                    "exactly one of `series`/`filter` is required".into(),
                ))
            }
        };
        let mut answers = Vec::with_capacity(names.len());
        let mut merged = QueryCoverage::default();
        for name in names {
            let ans = match req.op {
                QueryOp::Points => {
                    let rq = self
                        .store
                        .read()
                        .series_range(&name, req.resolution, req.t0, req.t1);
                    SeriesAnswer {
                        series: name,
                        points: Some(rq.points),
                        value: None,
                        last: None,
                        coverage: rq.coverage,
                    }
                }
                QueryOp::Last => {
                    let last = self.store.read().series_last(&name);
                    let coverage = QueryCoverage {
                        hot: usize::from(last.is_some()),
                        ..QueryCoverage::default()
                    };
                    SeriesAnswer {
                        series: name,
                        points: None,
                        value: None,
                        last,
                        coverage,
                    }
                }
                QueryOp::Mean | QueryOp::Energy => {
                    let agg = self.cached_agg(req.op, &name, req.resolution, req.t0, req.t1);
                    SeriesAnswer {
                        series: name,
                        points: None,
                        value: agg.value,
                        last: None,
                        coverage: agg.coverage,
                    }
                }
            };
            merged.merge(&ans.coverage);
            answers.push(ans);
        }
        Ok(QueryResponse {
            op: req.op,
            series: answers,
            coverage: merged,
        })
    }

    /// A mean/energy aggregate through the watermark-validated cache.
    fn cached_agg(
        &self,
        op: QueryOp,
        series: &str,
        res: Resolution,
        t0: f64,
        t1: f64,
    ) -> CachedAgg {
        let key = agg_key(op, res, t0, t1);
        let watermark = self.store.read().series_watermark(series);
        if self.cfg.cache_capacity > 0 {
            if let Some(hit) = self.cache.lock().get(key, series, watermark) {
                self.obs.cache_hits.add(1);
                self.stats.lock().hits += 1;
                return hit;
            }
        }
        let store = self.store.read();
        let agg = match op {
            QueryOp::Mean => {
                let (value, coverage) = store.series_mean(series, res, t0, t1);
                CachedAgg { value, coverage }
            }
            _ => {
                let (e, coverage) = store.series_energy_j(series, t0, t1);
                CachedAgg {
                    value: Some(e),
                    coverage,
                }
            }
        };
        drop(store);
        if self.cfg.cache_capacity > 0 {
            self.obs.cache_misses.add(1);
            self.stats.lock().misses += 1;
            self.cache.lock().insert(key, series, watermark, agg);
        }
        agg
    }

    /// `/v1/rollup/user`: one user's account, or everyone ranked by
    /// energy.
    pub fn rollup_user(&self, req: &UserRollupRequest) -> Result<UserRollupResponse, ApiError> {
        let t = self.obs.hub.clock.now_s();
        let out = self.rollup_user_inner(req);
        self.observe(t, out.is_err());
        out
    }

    fn rollup_user_inner(&self, req: &UserRollupRequest) -> Result<UserRollupResponse, ApiError> {
        let ledger = self.ledger.read();
        let tariff = self.cfg.tariff;
        let mk = |user_id: u32, acct: &davide_sched::accounting::UserAccount| UserRollup {
            user_id,
            jobs: acct.jobs,
            energy_j: acct.energy_j,
            node_seconds: acct.node_seconds,
            cost: acct.cost(tariff),
            mean_power_w: acct.mean_power_per_node(),
        };
        let users = match req.user_id {
            Some(u) => {
                let acct = ledger
                    .user(u)
                    .ok_or_else(|| ApiError::NotFound(format!("user {u}")))?;
                vec![mk(u, acct)]
            }
            None => ledger
                .users_by_energy()
                .into_iter()
                .map(|(u, acct)| mk(u, &acct))
                .collect(),
        };
        Ok(UserRollupResponse { users })
    }

    /// `/v1/rollup/job`: ledger energy (and optionally the
    /// telemetry-integrated energy with provenance) for one job.
    pub fn rollup_job(&self, req: &JobRollupRequest) -> Result<JobRollupResponse, ApiError> {
        let t = self.obs.hub.clock.now_s();
        let out = self.rollup_job_inner(req);
        self.observe(t, out.is_err());
        out
    }

    fn rollup_job_inner(&self, req: &JobRollupRequest) -> Result<JobRollupResponse, ApiError> {
        let jobs = self.jobs.read();
        let rec = jobs
            .get(req.job_id)
            .ok_or_else(|| ApiError::NotFound(format!("job {}", req.job_id)))?
            .clone();
        drop(jobs);
        let ledger_energy_j = self.ledger.read().job_energy_j(req.job_id);
        let (measured_energy_j, coverage) = if req.measured {
            let mut total = 0.0;
            let mut cov = QueryCoverage::default();
            for key in &rec.series {
                let agg = self.cached_agg(
                    QueryOp::Energy,
                    key,
                    Resolution::Raw,
                    rec.start_s,
                    rec.end_s,
                );
                total += agg.value.unwrap_or(0.0);
                cov.merge(&agg.coverage);
            }
            (Some(total), Some(cov))
        } else {
            (None, None)
        };
        let cost = ledger_energy_j.unwrap_or(0.0) / 3.6e6 * self.cfg.tariff.per_kwh;
        Ok(JobRollupResponse {
            job_id: rec.id,
            user_id: rec.user_id,
            nodes: rec.nodes.len(),
            start_s: rec.start_s,
            end_s: rec.end_s,
            ledger_energy_j,
            measured_energy_j,
            coverage,
            cost,
        })
    }

    /// `/v1/profile/job`: the job's node power series over its runtime
    /// window, boxcar-decimated through [`Decimator`], with phases
    /// detected on each decimated profile.
    pub fn profile_job(&self, req: &JobProfileRequest) -> Result<JobProfileResponse, ApiError> {
        let t = self.obs.hub.clock.now_s();
        let out = self.profile_job_inner(req);
        self.observe(t, out.is_err());
        out
    }

    fn profile_job_inner(&self, req: &JobProfileRequest) -> Result<JobProfileResponse, ApiError> {
        let jobs = self.jobs.read();
        let rec = jobs
            .get(req.job_id)
            .ok_or_else(|| ApiError::NotFound(format!("job {}", req.job_id)))?
            .clone();
        drop(jobs);
        let mut profiles = Vec::with_capacity(rec.series.len());
        let mut merged = QueryCoverage::default();
        for key in &rec.series {
            let rq = self
                .store
                .read()
                .series_range(key, Resolution::Raw, rec.start_s, rec.end_s);
            merged.merge(&rq.coverage);
            let m = req.decimate.max(1);
            let (t0, dt_raw) = match rq.points.as_slice() {
                [] => (rec.start_s, 0.0),
                [p] => (p.t, 0.0),
                [a, b, ..] => (a.t, b.t - a.t),
            };
            let mut watts = Vec::with_capacity(rq.points.len() / m + 1);
            if m == 1 {
                watts.extend(rq.points.iter().map(|p| p.v));
            } else {
                let mut dec = Decimator::boxcar(m);
                let vals: Vec<f64> = rq.points.iter().map(|p| p.v).collect();
                dec.push(&vals, &mut watts);
                dec.finish(&mut watts);
            }
            let dt = dt_raw * m as f64;
            let phases = if watts.len() >= 2 && dt > 0.0 {
                let trace = PowerTrace::new(SimTime::from_secs_f64(t0), dt, watts.clone());
                detect_phases(&trace, self.cfg.profiler)
                    .into_iter()
                    .map(|p| PhaseDto {
                        t0: p.t0,
                        t1: p.t1,
                        mean_w: p.mean.0,
                        energy_j: p.energy.0,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            profiles.push(SeriesProfile {
                series: key.clone(),
                t0,
                dt,
                watts,
                phases,
            });
        }
        Ok(JobProfileResponse {
            job_id: rec.id,
            profiles,
            coverage: merged,
        })
    }
}

impl<S: SeriesRead> std::fmt::Debug for QueryService<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService").finish_non_exhaustive()
    }
}

/// MQTT-style filter match (thin alias so the service reads clearly).
fn davide_mqtt_filter(filter: &str, topic: &str) -> bool {
    davide_mqtt::topic::filter_matches(filter, topic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use davide_telemetry::TsDb;

    fn service_with(points: &[(f64, f64)]) -> QueryService<TsDb> {
        let mut db = TsDb::new();
        let id = db.resolve("node00/power");
        for &(t, v) in points {
            db.append_id(id, t, v);
        }
        QueryService::over_store(db, &ObsHub::monotonic(), QueryServiceConfig::default())
    }

    fn mean_req(t0: f64, t1: f64) -> QueryRequest {
        QueryRequest::series(QueryOp::Mean, "node00/power", Resolution::Raw, t0, t1)
    }

    #[test]
    fn cache_serves_repeats_and_invalidates_on_ingest() {
        let svc = service_with(&[(0.0, 100.0), (1.0, 200.0), (2.0, 300.0)]);
        let a = svc.query(&mean_req(0.0, 10.0)).unwrap();
        assert_eq!(svc.cache_stats(), CacheStats { hits: 0, misses: 1 });
        let b = svc.query(&mean_req(0.0, 10.0)).unwrap();
        assert_eq!(svc.cache_stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(a.series[0].value, b.series[0].value);

        // New ingest moves the watermark: the cached answer is stale
        // and the recompute sees the new point.
        {
            let store = svc.store();
            let mut store = store.write();
            let id = store.resolve("node00/power");
            store.append_id(id, 3.0, 400.0);
        }
        let c = svc.query(&mean_req(0.0, 10.0)).unwrap();
        assert_eq!(svc.cache_stats(), CacheStats { hits: 1, misses: 2 });
        assert_eq!(c.series[0].value, Some(250.0));
        assert!(b.series[0].value != c.series[0].value);
    }

    #[test]
    fn distinct_windows_cache_separately() {
        let svc = service_with(&[(0.0, 100.0), (1.0, 200.0)]);
        svc.query(&mean_req(0.0, 10.0)).unwrap();
        svc.query(&mean_req(0.0, 5.0)).unwrap();
        svc.query(&mean_req(0.0, 10.0)).unwrap();
        assert_eq!(svc.cache_stats(), CacheStats { hits: 1, misses: 2 });
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut db = TsDb::new();
        let id = db.resolve("node00/power");
        db.append_id(id, 0.0, 50.0);
        let svc = QueryService::over_store(
            db,
            &ObsHub::monotonic(),
            QueryServiceConfig {
                cache_capacity: 0,
                ..QueryServiceConfig::default()
            },
        );
        svc.query(&mean_req(0.0, 1.0)).unwrap();
        svc.query(&mean_req(0.0, 1.0)).unwrap();
        assert_eq!(svc.cache_stats(), CacheStats::default());
    }

    #[test]
    fn lru_evicts_oldest_entry_at_capacity() {
        let mut cache = RollupCache::new(2);
        let agg = CachedAgg {
            value: Some(1.0),
            coverage: QueryCoverage::default(),
        };
        let k = |t1: f64| agg_key(QueryOp::Mean, Resolution::Raw, 0.0, t1);
        cache.insert(k(1.0), "a", 1, agg);
        cache.insert(k(2.0), "b", 1, agg);
        // Touch "a" so "b" is the LRU victim when "c" arrives.
        assert!(cache.get(k(1.0), "a", 1).is_some());
        cache.insert(k(3.0), "c", 1, agg);
        assert!(cache.get(k(1.0), "a", 1).is_some());
        assert!(cache.get(k(2.0), "b", 1).is_none());
        assert!(cache.get(k(3.0), "c", 1).is_some());
        assert_eq!(cache.len, 2);
    }

    #[test]
    fn unknown_entities_answer_not_found() {
        let svc = service_with(&[(0.0, 1.0)]);
        let err = svc
            .rollup_job(&JobRollupRequest {
                job_id: 7,
                measured: false,
            })
            .unwrap_err();
        assert_eq!(err.status(), 404);
        let err = svc
            .profile_job(&JobProfileRequest {
                job_id: 7,
                decimate: 1,
            })
            .unwrap_err();
        assert_eq!(err.status(), 404);
        let err = svc
            .rollup_user(&UserRollupRequest { user_id: Some(9) })
            .unwrap_err();
        assert_eq!(err.status(), 404);
    }

    #[test]
    fn requests_are_instrumented() {
        let svc = service_with(&[(0.0, 1.0)]);
        svc.health();
        let _ = svc.query(&mean_req(0.0, 1.0));
        let _ = svc.rollup_job(&JobRollupRequest {
            job_id: 1,
            measured: false,
        });
        let text = svc.metrics_text();
        assert!(text.contains("api_requests_total 3"), "{text}");
        assert!(text.contains("api_errors_total 1"), "{text}");
    }
}
