//! 4-D lattice operators with even/odd preconditioning — the BQCD proxy.
//!
//! §IV-D: BQCD computes "on a four-dimensional regular grid with periodic
//! boundary conditions" and its CG kernel uses even/odd preconditioning.
//! The proxy operator is the 4-D lattice Laplacian plus a mass term
//! (`D = (8 + m²)·I − Σ_μ (T₊μ + T₋μ)` for scalar fields): it has the same
//! nearest-neighbour sparsity, the same even/odd structure and the same
//! memory-access pattern as the Wilson operator, without the spinor
//! algebra.

use crate::cg::LinearOp;
use rayon::prelude::*;

/// A periodic 4-D lattice (site indexing and parity).
#[derive(Debug, Clone, PartialEq)]
pub struct Lattice4 {
    /// Extents `[nx, ny, nz, nt]`.
    pub dims: [usize; 4],
}

impl Lattice4 {
    /// New lattice; every extent must be even (for even/odd splitting)
    /// and ≥ 2.
    pub fn new(dims: [usize; 4]) -> Self {
        for d in dims {
            assert!(d >= 2 && d % 2 == 0, "extents must be even and ≥ 2");
        }
        Lattice4 { dims }
    }

    /// Total sites.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Half the sites (each parity class).
    pub fn half_volume(&self) -> usize {
        self.volume() / 2
    }

    /// Linear index of coordinates.
    pub fn index(&self, c: [usize; 4]) -> usize {
        let [nx, ny, nz, _] = self.dims;
        c[0] + nx * (c[1] + ny * (c[2] + nz * c[3]))
    }

    /// Coordinates of a linear index.
    pub fn coords(&self, mut i: usize) -> [usize; 4] {
        let [nx, ny, nz, _] = self.dims;
        let x = i % nx;
        i /= nx;
        let y = i % ny;
        i /= ny;
        let z = i % nz;
        i /= nz;
        [x, y, z, i]
    }

    /// Parity of a site (0 = even, 1 = odd).
    pub fn parity(&self, i: usize) -> usize {
        let c = self.coords(i);
        (c[0] + c[1] + c[2] + c[3]) % 2
    }

    /// Neighbour index in direction `mu` (0..4), displacement ±1 with
    /// periodic wrapping.
    pub fn neighbour(&self, i: usize, mu: usize, forward: bool) -> usize {
        let mut c = self.coords(i);
        let n = self.dims[mu];
        c[mu] = if forward {
            (c[mu] + 1) % n
        } else {
            (c[mu] + n - 1) % n
        };
        self.index(c)
    }

    /// All sites of one parity, in index order.
    pub fn sites_of_parity(&self, parity: usize) -> Vec<usize> {
        (0..self.volume())
            .filter(|&i| self.parity(i) == parity)
            .collect()
    }
}

/// The full lattice operator `D x = (8 + m²)·x − Σ_μ (x₊μ + x₋μ)`,
/// symmetric positive-definite for `m² > 0`.
#[derive(Debug, Clone)]
pub struct LatticeOp {
    /// The lattice geometry.
    pub lattice: Lattice4,
    /// Mass-squared shift.
    pub mass2: f64,
    neighbours: Vec<[usize; 8]>,
}

impl LatticeOp {
    /// Build the operator, precomputing the neighbour table (what a real
    /// lattice code does for its gather lists).
    pub fn new(lattice: Lattice4, mass2: f64) -> Self {
        assert!(mass2 > 0.0, "m² must be positive for an SPD operator");
        let neighbours = (0..lattice.volume())
            .map(|i| {
                let mut nb = [0usize; 8];
                for mu in 0..4 {
                    nb[2 * mu] = lattice.neighbour(i, mu, true);
                    nb[2 * mu + 1] = lattice.neighbour(i, mu, false);
                }
                nb
            })
            .collect();
        LatticeOp {
            lattice,
            mass2,
            neighbours,
        }
    }

    /// Diagonal value `8 + m²`.
    pub fn diagonal(&self) -> f64 {
        8.0 + self.mass2
    }

    /// Hopping application restricted by parity: `y[e] = Σ x[neighbours
    /// of e]` for each site of `out_parity` (neighbours have the other
    /// parity by construction).
    fn hop_into(&self, sites: &[usize], x_full: &[f64], y: &mut [f64]) {
        y.par_iter_mut().zip(sites.par_iter()).for_each(|(yi, &s)| {
            let nb = &self.neighbours[s];
            *yi = nb.iter().map(|&j| x_full[j]).sum();
        });
    }
}

impl LinearOp for LatticeOp {
    fn dim(&self) -> usize {
        self.lattice.volume()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let d = self.diagonal();
        y.par_iter_mut().enumerate().for_each(|(i, yi)| {
            let nb = &self.neighbours[i];
            let hop: f64 = nb.iter().map(|&j| x[j]).sum();
            *yi = d * x[i] - hop;
        });
    }
}

/// The even/odd-preconditioned (Schur complement) operator acting on
/// even sites only: `M x_e = a·x_e − (1/a)·H_eo H_oe x_e` with `a = 8+m²`.
/// Same solution on even sites as the full system, half the vector
/// length and a better condition number — the standard LQCD trick.
#[derive(Debug, Clone)]
pub struct EvenOddOp {
    /// The underlying full operator.
    pub full: LatticeOp,
    even_sites: Vec<usize>,
    odd_sites: Vec<usize>,
}

impl EvenOddOp {
    /// Build from a full operator.
    pub fn new(full: LatticeOp) -> Self {
        let even_sites = full.lattice.sites_of_parity(0);
        let odd_sites = full.lattice.sites_of_parity(1);
        EvenOddOp {
            full,
            even_sites,
            odd_sites,
        }
    }

    /// Even-site list (defines the ordering of the half vectors).
    pub fn even_sites(&self) -> &[usize] {
        &self.even_sites
    }

    /// Scatter a half vector (even ordering) into a full-volume vector.
    fn scatter(&self, half: &[f64], sites: &[usize], full_vec: &mut [f64]) {
        full_vec.iter_mut().for_each(|v| *v = 0.0);
        for (k, &s) in sites.iter().enumerate() {
            full_vec[s] = half[k];
        }
    }

    /// Reduce the full-system RHS `b` to the even-site Schur RHS:
    /// `b'_e = b_e + (1/a)·H_eo b_o`.
    pub fn reduce_rhs(&self, b: &[f64]) -> Vec<f64> {
        let a = self.full.diagonal();
        let mut b_odd_full = vec![0.0; b.len()];
        for &s in &self.odd_sites {
            b_odd_full[s] = b[s];
        }
        let mut hop = vec![0.0; self.even_sites.len()];
        self.full.hop_into(&self.even_sites, &b_odd_full, &mut hop);
        self.even_sites
            .iter()
            .enumerate()
            .map(|(k, &s)| b[s] + hop[k] / a)
            .collect()
    }

    /// Reconstruct odd-site values from the even solution:
    /// `x_o = (b_o + H_oe x_e) / a`.
    pub fn reconstruct_odd(&self, b: &[f64], x_even: &[f64]) -> Vec<f64> {
        let a = self.full.diagonal();
        let mut x_even_full = vec![0.0; b.len()];
        self.scatter(x_even, &self.even_sites, &mut x_even_full);
        let mut hop = vec![0.0; self.odd_sites.len()];
        self.full.hop_into(&self.odd_sites, &x_even_full, &mut hop);
        let mut x_full = x_even_full;
        for (k, &s) in self.odd_sites.iter().enumerate() {
            x_full[s] = (b[s] + hop[k]) / a;
        }
        x_full
    }
}

impl LinearOp for EvenOddOp {
    fn dim(&self) -> usize {
        self.even_sites.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let a = self.full.diagonal();
        let vol = self.full.lattice.volume();
        // x_e scattered to full volume.
        let mut x_full = vec![0.0; vol];
        self.scatter(x, &self.even_sites, &mut x_full);
        // t_o = H_oe x_e
        let mut t_odd = vec![0.0; self.odd_sites.len()];
        self.full.hop_into(&self.odd_sites, &x_full, &mut t_odd);
        // scatter t_o, then h_e = H_eo t_o
        let mut t_full = vec![0.0; vol];
        self.scatter(&t_odd, &self.odd_sites, &mut t_full);
        let mut h_even = vec![0.0; self.even_sites.len()];
        self.full.hop_into(&self.even_sites, &t_full, &mut h_even);
        for k in 0..y.len() {
            y[k] = a * x[k] - h_even[k] / a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{conjugate_gradient, dot};
    use davide_core::rng::Rng;

    fn small() -> Lattice4 {
        Lattice4::new([4, 4, 4, 4])
    }

    #[test]
    fn lattice_indexing_roundtrip() {
        let l = small();
        assert_eq!(l.volume(), 256);
        assert_eq!(l.half_volume(), 128);
        for i in 0..l.volume() {
            assert_eq!(l.index(l.coords(i)), i);
        }
    }

    #[test]
    fn neighbours_have_opposite_parity_and_wrap() {
        let l = small();
        for i in (0..l.volume()).step_by(7) {
            for mu in 0..4 {
                for fwd in [true, false] {
                    let j = l.neighbour(i, mu, fwd);
                    assert_ne!(l.parity(i), l.parity(j));
                    // Moving forward then back returns home.
                    let back = l.neighbour(j, mu, !fwd);
                    assert_eq!(back, i);
                }
            }
        }
        // Periodic wrap: site at x=3 moves forward to x=0.
        let edge = l.index([3, 0, 0, 0]);
        assert_eq!(l.neighbour(edge, 0, true), l.index([0, 0, 0, 0]));
    }

    #[test]
    fn parity_classes_are_balanced() {
        let l = small();
        assert_eq!(l.sites_of_parity(0).len(), 128);
        assert_eq!(l.sites_of_parity(1).len(), 128);
    }

    #[test]
    fn operator_is_symmetric_positive_definite() {
        let op = LatticeOp::new(small(), 0.5);
        let mut rng = Rng::seed_from(3);
        let n = op.dim();
        for _ in 0..5 {
            let x: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
            let mut ax = vec![0.0; n];
            let mut ay = vec![0.0; n];
            op.apply(&x, &mut ax);
            op.apply(&y, &mut ay);
            // Symmetry: ⟨Ax, y⟩ = ⟨x, Ay⟩.
            assert!((dot(&ax, &y) - dot(&x, &ay)).abs() < 1e-9);
            // Positive definiteness.
            assert!(dot(&ax, &x) > 0.0);
        }
    }

    #[test]
    fn constant_vector_eigenpair() {
        // D·1 = (8+m²)·1 − 8·1 = m²·1.
        let op = LatticeOp::new(small(), 0.25);
        let x = vec![1.0; op.dim()];
        let mut y = vec![0.0; op.dim()];
        op.apply(&x, &mut y);
        for v in &y {
            assert!((v - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn even_odd_solution_matches_full_solve() {
        let mass2 = 0.3;
        let full = LatticeOp::new(small(), mass2);
        let n = full.dim();
        let mut rng = Rng::seed_from(11);
        let b: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();

        // Full-system solve.
        let mut x_full = vec![0.0; n];
        let r1 = conjugate_gradient(&full, &b, &mut x_full, 1e-12, 10_000);
        assert!(r1.converged);

        // Even/odd-preconditioned solve.
        let eo = EvenOddOp::new(LatticeOp::new(small(), mass2));
        let b_e = eo.reduce_rhs(&b);
        let mut x_e = vec![0.0; eo.dim()];
        let r2 = conjugate_gradient(&eo, &b_e, &mut x_e, 1e-12, 10_000);
        assert!(r2.converged);
        let x_reco = eo.reconstruct_odd(&b, &x_e);

        for (a, c) in x_full.iter().zip(&x_reco) {
            assert!((a - c).abs() < 1e-7, "{a} vs {c}");
        }
        // The preconditioned system is half the size and converges in
        // fewer iterations — the reason BQCD does this.
        assert_eq!(eo.dim(), n / 2);
        assert!(
            r2.iterations <= r1.iterations,
            "eo {} > full {}",
            r2.iterations,
            r1.iterations
        );
    }

    #[test]
    fn even_odd_operator_is_spd_too() {
        let eo = EvenOddOp::new(LatticeOp::new(small(), 0.2));
        let mut rng = Rng::seed_from(5);
        let n = eo.dim();
        let x: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let y: Vec<f64> = (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        eo.apply(&x, &mut ax);
        eo.apply(&y, &mut ay);
        assert!((dot(&ax, &y) - dot(&x, &ay)).abs() < 1e-9);
        assert!(dot(&ax, &x) > 0.0);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_extent_rejected() {
        Lattice4::new([3, 4, 4, 4]);
    }
}
